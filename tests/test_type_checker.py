"""Tests for the type checker and the ordered type-and-effect system."""

import pytest

from repro.errors import OrderError, TypeError_
from repro.frontend import check_program

PRELUDE = """
const int SIZE = 16;
global a0 = new Array<<32>>(SIZE);
global a1 = new Array<<32>>(SIZE);
global a2 = new Array<<32>>(SIZE);
memop plus(int stored, int x) { return stored + x; }
memop keep(int stored, int x) { return stored; }
memop overwrite(int stored, int x) { return x; }
"""


def check(body, extra_decls=""):
    return check_program(PRELUDE + extra_decls + body)


# -- ordinary typing ------------------------------------------------------------
def test_simple_handler_checks():
    cp = check("event e(int x); handle e(int x) { int y = x + 1; Array.set(a0, y, plus, 1); }")
    assert "e" in cp.handler_results


def test_undefined_variable_rejected():
    with pytest.raises(TypeError_, match="undefined variable"):
        check("event e(int x); handle e(int x) { int y = z + 1; }")


def test_assignment_to_undeclared_rejected():
    with pytest.raises(TypeError_, match="undeclared"):
        check("event e(int x); handle e(int x) { y = 3; }")


def test_assignment_to_global_rejected():
    with pytest.raises(TypeError_, match="Array.set"):
        check("event e(int x); handle e(int x) { a0 = 3; }")


def test_event_arity_checked():
    with pytest.raises(TypeError_, match="expects 2 arguments"):
        check("event e(int x); event f(int a, int b); handle e(int x) { generate f(x); }")


def test_handler_without_event_rejected():
    with pytest.raises(TypeError_, match="no matching event"):
        check("handle orphan(int x) { drop(); }")


def test_handler_event_arity_mismatch_rejected():
    with pytest.raises(TypeError_, match="parameters"):
        check("event e(int x, int y); handle e(int x) { drop(); }")


def test_generate_requires_event_value():
    with pytest.raises(TypeError_, match="expects an event"):
        check("event e(int x); handle e(int x) { generate x + 1; }")


def test_handlers_cannot_return_values():
    with pytest.raises(TypeError_, match="do not return"):
        check("event e(int x); handle e(int x) { return x; }")


def test_memop_cannot_be_called_directly():
    with pytest.raises(TypeError_, match="Array method"):
        check("event e(int x); handle e(int x) { int y = plus(x, 1); }")


def test_array_method_needs_global_first_argument():
    with pytest.raises(TypeError_, match="global array"):
        check("event e(int x); handle e(int x) { int y = Array.get(x, 0); }")


def test_array_method_memop_argument_must_be_memop():
    with pytest.raises(TypeError_, match="memop"):
        check("event e(int x); handle e(int x) { int y = Array.get(a0, 0, x, 1); }")


def test_event_combinator_argument_types():
    with pytest.raises(TypeError_, match="must be an event"):
        check("event e(int x); handle e(int x) { generate Event.delay(x, 5); }")


def test_unknown_function_rejected():
    with pytest.raises(TypeError_, match="undefined function"):
        check("event e(int x); handle e(int x) { int y = mystery(x); }")


def test_recursive_function_rejected():
    with pytest.raises(TypeError_, match="recursive"):
        check(
            "event e(int x); handle e(int x) { int y = f(x); }",
            extra_decls="fun int f(int n) { return f(n); }",
        )


def test_duplicate_event_rejected():
    with pytest.raises(TypeError_, match="declared twice"):
        check("event e(int x); event e(int x); handle e(int x) { drop(); }")


def test_extern_call_is_typed():
    cp = check(
        "event e(int x); handle e(int x) { int y = report(x); }",
        extra_decls="extern fun int report(int value);",
    )
    assert cp is not None


def test_symbolic_sizes_can_be_bound():
    source = "symbolic size N = 4; global t = new Array<<32>>(N); event e(int i); handle e(int i) { Array.set(t, i, 1); }"
    cp = check_program(source, symbolic_bindings={"N": 128})
    assert cp.info.globals["t"].size == 128


def test_group_constants_are_recorded():
    cp = check(
        "const group PEERS = {7, 8}; event e(int x); handle e(int x) { mgenerate Event.locate(e(x), PEERS); }"
    )
    assert cp.info.consts.groups["PEERS"] == [7, 8]


# -- the ordered effect system -----------------------------------------------------
def test_in_order_accesses_accepted():
    cp = check(
        "event e(int x); handle e(int x) {"
        " int v = Array.get(a0, x); int w = Array.get(a1, v); Array.set(a2, w, plus, 1); }"
    )
    trace = cp.handler_results["e"].trace
    assert [a.global_name for a in trace] == ["a0", "a1", "a2"]
    assert [a.stage for a in trace] == [0, 1, 2]


def test_out_of_order_access_rejected():
    with pytest.raises(OrderError, match="declaration order"):
        check(
            "event e(int x); handle e(int x) {"
            " int v = Array.get(a1, x); Array.set(a0, v, plus, 1); }"
        )


def test_figure5_disordered_program_rejected():
    source = """
    const int SIZE = 16;
    global arr1 = new Array<<32>>(SIZE);
    global arr2 = new Array<<32>>(SIZE);
    event setArr1(int idx, int data);
    event setArr2(int idx, int data);
    handle setArr1(int idx, int data) {
      int x = Array.get(arr2, idx);
      Array.set(arr1, idx, x);
    }
    handle setArr2(int idx, int data) {
      int x = Array.get(arr1, idx);
      Array.set(arr2, idx, x);
    }
    """
    with pytest.raises(OrderError):
        check_program(source)


def test_double_access_to_same_array_rejected():
    with pytest.raises(OrderError, match="twice"):
        check(
            "event e(int x); handle e(int x) {"
            " int v = Array.get(a0, x); Array.set(a0, x, plus, v); }"
        )


def test_update_is_single_access():
    cp = check(
        "event e(int x); handle e(int x) { int v = Array.update(a0, x, keep, 0, plus, 1); }"
    )
    assert len(cp.handler_results["e"].trace) == 1


def test_branches_may_access_same_array():
    cp = check(
        "event e(int x); handle e(int x) {"
        " if (x == 0) { Array.set(a0, x, plus, 1); } else { Array.set(a0, x, plus, 2); } }"
    )
    assert cp.handler_results["e"].end_stage == 1


def test_branch_then_later_array_is_ordered():
    cp = check(
        "event e(int x); handle e(int x) {"
        " if (x == 0) { Array.set(a0, x, plus, 1); } else { Array.set(a1, x, plus, 1); }"
        " Array.set(a2, x, plus, 1); }"
    )
    assert cp.handler_results["e"].end_stage == 3


def test_branch_then_earlier_array_rejected():
    with pytest.raises(OrderError):
        check(
            "event e(int x); handle e(int x) {"
            " if (x == 0) { Array.set(a1, x, plus, 1); } else { Array.set(a2, x, plus, 1); }"
            " Array.set(a0, x, plus, 1); }"
        )


def test_error_message_names_both_accesses():
    with pytest.raises(OrderError) as err:
        check(
            "event e(int x); handle e(int x) {"
            " int v = Array.get(a2, x); Array.set(a1, v, plus, 1); }"
        )
    message = err.value.render()
    assert "a1" in message and "a2" in message and "note" in message


# -- effect polymorphism through functions ------------------------------------------
def test_function_accessing_global_checked_at_call_site():
    cp = check(
        "event e(int x); handle e(int x) { int v = lookup(x); Array.set(a1, v, plus, 1); }",
        extra_decls="fun int lookup(int i) { return Array.get(a0, i); }",
    )
    assert [a.global_name for a in cp.handler_results["e"].trace] == ["a0", "a1"]


def test_function_call_order_violation_detected():
    with pytest.raises(OrderError):
        check(
            "event e(int x); handle e(int x) { int v = Array.get(a1, x); int w = lookup(v); }",
            extra_decls="fun int lookup(int i) { return Array.get(a0, i); }",
        )


def test_polymorphic_array_parameter_reused_at_different_stages():
    cp = check(
        "event e(int x); handle e(int x) { int v = bump(a0, x); int w = bump(a1, v); }",
        extra_decls="fun int bump(Array<<32>> arr, int i) { return Array.get(arr, i, plus, 1); }",
    )
    assert [a.global_name for a in cp.handler_results["e"].trace] == ["a0", "a1"]


def test_polymorphic_array_parameters_wrong_order_rejected():
    with pytest.raises(OrderError):
        check(
            "event e(int x); handle e(int x) { int v = bump(a1, x); int w = bump(a0, v); }",
            extra_decls="fun int bump(Array<<32>> arr, int i) { return Array.get(arr, i, plus, 1); }",
        )


def test_function_with_disordered_body_rejected_at_definition():
    with pytest.raises(OrderError):
        check(
            "event e(int x); handle e(int x) { drop(); }",
            extra_decls=(
                "fun int broken(int i) { int v = Array.get(a1, i); return Array.get(a0, v); }"
            ),
        )


def test_nested_function_calls_compose_effects():
    cp = check(
        "event e(int x); handle e(int x) { int v = outer(x); Array.set(a2, v, plus, 1); }",
        extra_decls=(
            "fun int inner(int i) { return Array.get(a0, i); }"
            "fun int outer(int i) { int v = inner(i); return Array.get(a1, v); }"
        ),
    )
    assert [a.global_name for a in cp.handler_results["e"].trace] == ["a0", "a1", "a2"]
