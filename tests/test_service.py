"""Service-mode tests: snapshot/restore determinism, the replayable traffic
cursor, the on-disk checkpoint store, streaming invariants, telemetry, and
the serve loop (including resume and SIGTERM shutdown).

The load-bearing contract: a run interrupted *anywhere* — any engine, any
scenario, mid-stream, with the checkpoint pushed through the JSON on-disk
format — and resumed into freshly built objects must be byte-identical to
the uninterrupted run in every deterministic observable."""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import SimulationError
from repro.interp.engine import ENGINE_NAMES
from repro.interp.events import EventInstance
from repro.interp.network import CONTROL, Network, SNAPSHOT_VERSION
from repro.scenarios import SCENARIOS, run_scenario
from repro.scenarios.invariants import (
    Invariant,
    capture_invariant_states,
    evaluate,
    restore_invariant_states,
)
from repro.scenarios.runner import network_array_digest
from repro.service.checkpoint import CheckpointStore, load_checkpoint
from repro.service.server import (
    ScenarioService,
    ServiceConfig,
    run_scenario_interrupted,
    soak_compare,
)
from repro.service.source import ReplayableSource
from repro.service.telemetry import TELEMETRY_SCHEMA_VERSION, TelemetryEmitter

RELAY = """
global hits = new Array<<32>>(8);
memop plus(int stored, int x) { return stored + x; }
event pkt(int idx, int hops);
handle pkt(int idx, int hops) {
  Array.set(hits, idx, plus, 1);
  if (hops > 0) {
    generate Event.locate(pkt(idx, hops - 1), (SELF + 1) % 3);
  }
}
"""


def _result_fingerprint(result):
    """Every deterministic field of a ScenarioResult (wall-clock excluded)."""
    return (
        result.verdict_signature(),
        result.events_injected,
        result.events_handled,
        result.sim_ns,
        result.switch_stats,
    )


# ---------------------------------------------------------------------------
# the determinism contract, across the whole catalogue
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_interrupted_run_matches_straight_run(name):
    """Checkpoint mid-run (JSON round-trip), restore into a fresh network +
    traffic stream + invariants, resume — identical result."""
    straight = run_scenario(SCENARIOS[name], 700, 3, engine="compiled")
    resumed = run_scenario_interrupted(
        SCENARIOS[name], 700, 3, engine="compiled", checkpoint_after=300
    )
    assert _result_fingerprint(resumed) == _result_fingerprint(straight)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize(
    "name", ["heavy-hitter-single", "rip-line-convergence", "reroute-leafspine-linkfail"]
)
def test_interrupted_run_matches_on_every_engine(name, engine):
    """Engine heterogeneity of the snapshot itself: the PISA engine carries
    extra queue/stage accounting, the interpreters none — all three must
    round-trip.  (Scenarios with delayed events, link-failure CONTROL
    actions, and self-perpetuating advertisement loops included.)"""
    cmp = soak_compare(SCENARIOS[name], 700, 3, engine=engine, checkpoint_after=250)
    assert cmp["match"], cmp["mismatches"]


def test_checkpoint_at_stream_exhaustion_resumes_cleanly():
    """A checkpoint taken exactly when the source runs dry must not send the
    resumed run into a full drain (self-perpetuating control loops would
    never return); it goes straight to the settle phase."""
    name = "rip-line-convergence"
    straight = run_scenario(SCENARIOS[name], 300, 3, engine="compiled")
    resumed = run_scenario_interrupted(
        SCENARIOS[name], 300, 3, engine="compiled", checkpoint_after=10**9
    )
    assert _result_fingerprint(resumed) == _result_fingerprint(straight)


# ---------------------------------------------------------------------------
# Network.snapshot / Network.restore
# ---------------------------------------------------------------------------
def _relay_network():
    network = Network()
    for sid, engine in enumerate(["reference", "compiled", "pisa"]):
        network.add_switch(sid, RELAY, engine=engine)
    for sid in range(3):
        network.add_link(sid, (sid + 1) % 3)
    for i in range(30):
        network.inject(i % 3, EventInstance("pkt", (i % 8, 5)), at_ns=i * 1_000)
    return network


def test_heterogeneous_network_snapshot_roundtrip_mid_run():
    """A mixed reference/compiled/pisa network checkpointed mid-run (pending
    heap events, engine-side queue accounting) restores into a fresh mixed
    network and finishes identically to the uninterrupted original."""
    interrupted = _relay_network()
    interrupted.run(max_events=40)
    assert interrupted.pending_events() > 0
    state = json.loads(json.dumps(interrupted.snapshot()))

    fresh = _relay_network()
    fresh._queue.clear()  # restore replaces the pre-injected queue anyway
    fresh.restore(state)
    fresh.run()

    straight = _relay_network()
    straight.run()
    assert network_array_digest(fresh) == network_array_digest(straight)
    assert fresh.now_ns == straight.now_ns
    for sid in range(3):
        assert fresh.switches[sid].stats == straight.switches[sid].stats
    assert fresh.stats() == straight.stats()


def test_codegen_snapshot_roundtrip_byte_identical():
    """Checkpoint/restore on the codegen engine: the generated modules bind
    array cell lists by identity, so an in-place restore must leave the
    running handlers reading the restored state — the resumed run's snapshot
    must be byte-identical to the uninterrupted run's."""
    def build():
        network = Network(engine="codegen")
        for sid in range(3):
            network.add_switch(sid, RELAY)
            network.add_link(sid, (sid + 1) % 3)
        for i in range(30):
            network.inject(i % 3, EventInstance("pkt", (i % 8, 5)), at_ns=i * 1_000)
        return network

    interrupted = build()
    interrupted.run(max_events=40)
    assert interrupted.pending_events() > 0
    state = json.loads(json.dumps(interrupted.snapshot()))

    fresh = build()
    fresh._queue.clear()
    fresh.restore(state)
    fresh.run()

    straight = build()
    straight.run()
    assert json.dumps(fresh.snapshot(), sort_keys=True) == json.dumps(
        straight.snapshot(), sort_keys=True
    )
    assert network_array_digest(fresh) == network_array_digest(straight)


def test_snapshot_refuses_control_actions_in_heap():
    network = _relay_network()
    network._push(50, CONTROL, lambda net: None)
    with pytest.raises(SimulationError, match="CONTROL"):
        network.snapshot()


def test_restore_validates_before_mutating():
    network = _relay_network()
    network.run(max_events=10)
    good = network.snapshot()

    with pytest.raises(SimulationError, match="not a network snapshot"):
        network.restore({"format": "something-else"})
    with pytest.raises(SimulationError, match="version"):
        network.restore({**good, "version": SNAPSHOT_VERSION + 1})

    missing_switch = json.loads(json.dumps(good))
    del missing_switch["switches"]["2"]
    with pytest.raises(SimulationError, match="switch set"):
        network.restore(missing_switch)

    wrong_engine = json.loads(json.dumps(good))
    wrong_engine["switches"]["0"]["engine"] = "pisa"
    with pytest.raises(SimulationError, match="engine"):
        network.restore(wrong_engine)

    wrong_shape = json.loads(json.dumps(good))
    wrong_shape["switches"]["1"]["arrays"]["hits"]["cells"] = [0, 0]
    with pytest.raises(SimulationError, match="cells"):
        network.restore(wrong_shape)

    # none of the failed restores touched the network
    assert network.snapshot() == good


def test_interpreter_engines_refuse_foreign_engine_state():
    network = Network(engine="compiled")
    network.add_switch(0, RELAY)
    with pytest.raises(SimulationError):
        network.switches[0].engine.restore_state({"events": 3})


# ---------------------------------------------------------------------------
# Network.reset vs partially consumed streaming sources
# ---------------------------------------------------------------------------
def _plain_stream(n=100):
    for i in range(n):
        yield (i * 1_000, 0, EventInstance("pkt", (i % 8, 0)))


def test_reset_refuses_partially_consumed_source():
    network = Network()
    network.add_switch(0, RELAY)
    network.run(source=_plain_stream(), max_events=5)
    with pytest.raises(SimulationError, match="partially consumed"):
        network.reset()
    # the refusal is not sticky: drop the cursor explicitly and reset works
    network.run(source=_plain_stream(), max_events=5)
    network.reset(drop_source=True)
    assert network.now_ns == 0 and network.pending_events() == 0


def test_reset_rewinds_replayable_source():
    network = Network()
    network.add_switch(0, RELAY)
    source = ReplayableSource(lambda: _plain_stream(40))
    network.run(source=source, max_events=5)
    network.reset()  # rewind() hook: no error, cursor back to zero
    assert source.consumed == 0
    handled = network.run(source=source)
    assert handled == 40  # the full stream again, not the remainder


def test_exhausted_source_does_not_block_reset():
    network = Network()
    network.add_switch(0, RELAY)
    network.run(source=_plain_stream(10))
    network.reset()  # fully consumed: nothing to guard


# ---------------------------------------------------------------------------
# ReplayableSource
# ---------------------------------------------------------------------------
def test_replayable_source_counts_and_skips():
    items = lambda: _plain_stream(20)  # noqa: E731
    a = ReplayableSource(items)
    consumed = [next(a) for _ in range(7)]
    assert a.consumed == 7 and a.injected == 7 and a.last_ns == 6_000
    cursor = a.cursor()

    b = ReplayableSource(items).skip(cursor["consumed"])
    assert b.cursor() == cursor
    assert next(b) == next(a)  # identical remainders


def test_replayable_source_push_back_excluded_from_cursor():
    a = ReplayableSource(lambda: _plain_stream(5))
    next(a)
    held = next(a)
    a.push_back(held)
    assert a.cursor()["consumed"] == 1  # the held item is not yet delivered
    assert next(a) is held  # re-delivered, not re-counted
    assert a.cursor()["consumed"] == 2
    assert a.peek() is not None and not a.exhausted


def test_replayable_source_control_items_not_injected():
    def stream():
        yield (0, 0, EventInstance("pkt", (0, 0)))
        yield (5, CONTROL, lambda net: None)
        yield (9, 0, EventInstance("pkt", (1, 0)))

    src = ReplayableSource(stream)
    list(src)
    assert src.consumed == 3 and src.injected == 2 and src.last_ns == 9
    assert src.exhausted


def test_replayable_source_errors():
    bare = ReplayableSource(_plain_stream(3))
    with pytest.raises(SimulationError, match="cannot rewind"):
        bare.rewind()
    with pytest.raises(SimulationError, match="ended after"):
        ReplayableSource(lambda: _plain_stream(3)).skip(10)
    used = ReplayableSource(lambda: _plain_stream(3))
    next(used)
    with pytest.raises(SimulationError, match="freshly built"):
        used.skip(1)


# ---------------------------------------------------------------------------
# CheckpointStore
# ---------------------------------------------------------------------------
def _dummy_checkpoint(handled):
    return {
        "format": "repro-service-checkpoint",
        "version": 1,
        "scenario": "s",
        "engine": "compiled",
        "seed": 1,
        "events": 100,
        "handled": handled,
        "cursor": {"consumed": handled, "injected": handled, "last_ns": handled},
        "network": {},
        "invariants": [],
    }


def test_checkpoint_store_rolls_and_prunes(tmp_path):
    store = CheckpointStore(tmp_path / "ck", keep=2)
    assert store.latest() is None
    for handled in (10, 200, 35, 4000):
        store.save(_dummy_checkpoint(handled))
    names = [p.name for p in store.paths()]
    assert len(names) == 2  # pruned to keep=2
    assert store.latest().name.endswith(f"{4000:015d}.json")
    assert store.load()["handled"] == 4000
    assert not list((tmp_path / "ck").glob("*.tmp"))  # atomic writes


def test_checkpoint_store_validates(tmp_path):
    store = CheckpointStore(tmp_path, keep=1)
    with pytest.raises(SimulationError, match="not a service checkpoint"):
        store.save({"format": "nope"})
    bad = tmp_path / "checkpoint-bad.json"
    bad.write_text(json.dumps({"format": "repro-service-checkpoint", "version": 99}))
    with pytest.raises(SimulationError, match="version"):
        load_checkpoint(bad)
    incomplete = dict(_dummy_checkpoint(1))
    del incomplete["cursor"]
    with pytest.raises(SimulationError, match="missing"):
        store.save(incomplete)


# ---------------------------------------------------------------------------
# streaming invariants
# ---------------------------------------------------------------------------
def test_streaming_only_evaluation_skips_settle_invariants():
    scenario = SCENARIOS["rip-line-convergence"]
    setup = scenario.build(200, 1)
    # rip-converged is settle-only: mid-run distances are legitimately in flux
    assert any(not inv.streaming for inv in setup.invariants)
    network = setup.make_network("compiled")
    if setup.prepare is not None:
        setup.prepare(network)
    for inv in setup.invariants:
        inv.reset(network, setup.topology)
    streaming = evaluate(setup.invariants, network, streaming_only=True)
    full = evaluate(setup.invariants, network)
    assert len(streaming) < len(full)


def test_observing_invariant_without_snapshot_support_is_refused():
    class Watcher(Invariant):
        name = "watcher"

        def observe(self, entry):
            pass

    with pytest.raises(SimulationError, match="snapshot_state"):
        capture_invariant_states([Watcher()])


def test_restore_invariant_states_length_checked():
    with pytest.raises(SimulationError, match="invariant states"):
        restore_invariant_states([Invariant()], [None, None])


def test_legacy_on_handle_subclasses_still_observe():
    class Legacy(Invariant):
        name = "legacy"

        def __init__(self):
            self.seen = 0

        def on_handle(self, entry):  # pre-service-mode hook name
            self.seen += 1

    inv = Legacy()
    assert inv.observes()
    network = Network()
    network.add_switch(0, RELAY)
    network.on_handle = inv.on_handle
    network.inject(0, EventInstance("pkt", (0, 0)), at_ns=0)
    network.run()
    assert inv.seen == 1


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------
def test_telemetry_emitter_schema():
    network = Network(engine="pisa")
    network.add_switch(0, RELAY)
    network.inject(0, EventInstance("pkt", (0, 3)), at_ns=0)
    network.run()
    out = io.StringIO()
    emitter = TelemetryEmitter(out, "relay", "pisa", seed=1)
    emitter.emit(network, handled_total=4, injected_total=1, phase="run")
    emitter.emit(network, handled_total=4, injected_total=1, phase="final",
                 invariants=[], extra={"ok": True})
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(lines) == 2
    for record in lines:
        assert record["schema_version"] == TELEMETRY_SCHEMA_VERSION == 2
        assert record["scenario"] == "relay"
        assert record["events_handled"] == 4
        # schema v2: the generate-statement total rides along
        assert record["events_generated"] == network.total_stats().events_generated
        # the pisa switch reports queue depths
        assert "peak_queue_depth" in record
    assert lines[0]["phase"] == "run"
    assert lines[1]["phase"] == "final" and lines[1]["ok"] is True


def test_serve_flushes_buffered_telemetry_before_final_checkpoint(tmp_path, monkeypatch):
    """Regression: with ``telemetry_flush_every`` > 1 the signal-stop path
    used to write the final checkpoint while run records were still sitting
    in the emitter's buffer — a SIGTERM lost up to flush_every-1 records.
    The buffered lines must be in the sink *before* the final save."""
    scenario = SCENARIOS["nat-churn"]
    stream = io.StringIO()
    config = ServiceConfig(
        engine="compiled", seed=5, events=2_000,
        checkpoint_dir=str(tmp_path / "ck"), checkpoint_every=10**9,
        telemetry_every=200, chunk_events=100, max_events=900,
        telemetry_stream=stream, telemetry_flush_every=50,
    )
    lines_at_save = []
    real_save = CheckpointStore.save

    def spy_save(self, payload):
        lines_at_save.append(stream.getvalue().count("\n"))
        return real_save(self, payload)

    monkeypatch.setattr(CheckpointStore, "save", spy_save)
    outcome = ScenarioService(scenario, config).run()
    assert outcome.stopped
    # 900 handled / telemetry_every=200 -> 4 run records, all buffered
    # (the 50-record flush window never fills); the stop path must flush
    # them before the one and only (final) checkpoint save
    assert lines_at_save == [4]
    # ... and the stopped-path record itself is flushed before returning
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert len(records) == 5
    assert records[-1]["phase"] == "checkpoint" and records[-1]["stopped"] is True


def test_serve_metrics_dump_request(capsys):
    """``request_metrics_dump`` (the SIGUSR1 handler) makes the serve loop
    print the telemetry registry's Prometheus exposition to stderr."""
    scenario = SCENARIOS["heavy-hitter-single"]
    config = ServiceConfig(
        engine="compiled", seed=1, events=2_000, telemetry_every=500,
        chunk_events=250, max_events=1_000, telemetry_stream=io.StringIO(),
    )
    service = ScenarioService(scenario, config)
    service.request_metrics_dump()
    outcome = service.run()
    assert outcome.stopped
    err = capsys.readouterr().err
    assert "# TYPE repro_telemetry_events_handled gauge" in err
    assert not service.metrics_dump_requested


# ---------------------------------------------------------------------------
# the serve loop
# ---------------------------------------------------------------------------
def test_service_stop_resume_matches_batch_run(tmp_path):
    """A service stopped mid-stream (max_events), then a second service
    resuming from its on-disk checkpoint, must finish with the exact result
    of the one-shot batch runner."""
    scenario = SCENARIOS["nat-churn"]
    ck = str(tmp_path / "ck")

    def config(**overrides):
        return ServiceConfig(
            engine="compiled", seed=5, events=2_000, checkpoint_dir=ck,
            checkpoint_every=600, telemetry_every=500, chunk_events=150,
            telemetry_stream=io.StringIO(), **overrides,
        )

    first = ScenarioService(scenario, config(max_events=900)).run()
    assert first.stopped and first.checkpoint_path is not None
    assert first.result is None

    second = ScenarioService(scenario, config()).run()
    assert not second.stopped
    assert second.resumed_from is not None
    straight = run_scenario(scenario, 2_000, 5, engine="compiled")
    assert _result_fingerprint(second.result) == _result_fingerprint(straight)


def test_service_telemetry_and_rolling_checkpoints(tmp_path):
    scenario = SCENARIOS["heavy-hitter-single"]
    telemetry = io.StringIO()
    config = ServiceConfig(
        engine="compiled", seed=1, events=3_000, checkpoint_dir=str(tmp_path),
        checkpoint_every=800, keep_checkpoints=2, telemetry_every=600,
        chunk_events=200, telemetry_stream=telemetry,
    )
    outcome = ScenarioService(scenario, config).run()
    assert outcome.result is not None and outcome.result.ok
    records = [json.loads(line) for line in telemetry.getvalue().splitlines()]
    phases = {r["phase"] for r in records}
    assert {"run", "checkpoint", "settle", "final"} <= phases
    assert all(r["schema_version"] == TELEMETRY_SCHEMA_VERSION for r in records)
    # mid-run records carry streaming invariant verdicts
    assert any("invariants" in r for r in records if r["phase"] == "run")
    # rolling: pruned to keep=2
    assert len(list(tmp_path.glob("checkpoint-*.json"))) == 2


def test_service_refuses_mismatched_checkpoint(tmp_path):
    scenario = SCENARIOS["heavy-hitter-single"]
    base = dict(
        engine="compiled", events=1_000, checkpoint_dir=str(tmp_path),
        checkpoint_every=300, chunk_events=100, telemetry_stream=io.StringIO(),
    )
    ScenarioService(scenario, ServiceConfig(seed=1, max_events=400, **base)).run()
    with pytest.raises(SimulationError, match="seed"):
        ScenarioService(scenario, ServiceConfig(seed=2, **base)).run()


def test_service_request_stop_checkpoints_mid_stream(tmp_path):
    """request_stop() (the SIGTERM handler) ends the loop at the next chunk
    boundary with a valid, loadable checkpoint."""
    scenario = SCENARIOS["heavy-hitter-single"]
    config = ServiceConfig(
        engine="compiled", seed=1, events=50_000, checkpoint_dir=str(tmp_path),
        checkpoint_every=10**9, chunk_events=100, telemetry_stream=io.StringIO(),
    )
    service = ScenarioService(scenario, config)
    original_run = Network.run
    calls = []

    def counting_run(self, *args, **kwargs):
        calls.append(1)
        if len(calls) == 4:
            service.request_stop()  # as the signal handler would
        return original_run(self, *args, **kwargs)

    Network.run = counting_run
    try:
        outcome = service.run()
    finally:
        Network.run = original_run
    assert outcome.stopped
    state = load_checkpoint(outcome.checkpoint_path)
    assert state["handled"] == outcome.handled > 0


@pytest.mark.skipif(not hasattr(signal, "SIGTERM"), reason="needs SIGTERM")
def test_serve_cli_sigterm_writes_checkpoint_and_resumes(tmp_path):
    """End to end through the CLI and a real signal: serve an unbounded
    stream, SIGTERM it, assert clean exit + checkpoint, then resume."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ, PYTHONPATH=os.path.join(repo, "src"))
    ck = str(tmp_path / "ck")
    cmd = [
        sys.executable, "-m", "repro.scenarios", "serve", "heavy-hitter-single",
        "--unbounded", "--checkpoint-dir", ck, "--chunk", "500",
        "--checkpoint-every", "2000", "--telemetry-every", "2000",
    ]
    proc = subprocess.Popen(
        cmd, env=env, cwd=repo,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    time.sleep(2.0)
    proc.send_signal(signal.SIGTERM)
    stdout, _ = proc.communicate(timeout=60)
    assert proc.returncode == 0, stdout
    assert "stopped after" in stdout
    checkpoints = sorted(os.listdir(ck))
    assert checkpoints, "no checkpoint written on SIGTERM"
    state = load_checkpoint(os.path.join(ck, checkpoints[-1]))
    assert state["scenario"] == "heavy-hitter-single"

    resume = subprocess.run(
        cmd + ["--max-events", str(state["handled"] + 1_000)],
        env=env, cwd=repo, capture_output=True, text=True, timeout=60,
    )
    assert resume.returncode == 0, resume.stdout + resume.stderr
    assert "resumed from" in resume.stdout
