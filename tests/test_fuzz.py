"""Tests for the differential fuzzer itself: generator validity and
determinism, unparse round-tripping, the differential runner's observables,
the shrinker's contract, and the ``python -m repro.fuzz`` CLI."""

import warnings

import pytest

from repro.frontend.parser import parse_program
from repro.frontend.type_checker import check_program
from repro.frontend.unparse import unparse
from repro.fuzz.case import FuzzCase, load_case, save_case
from repro.fuzz.diff import run_case, run_differential
from repro.fuzz.gen import CaseGenerator
from repro.fuzz.shrink import shrink_case
from repro.interp.network import Network, single_switch_network


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------
def test_generator_is_deterministic():
    a = CaseGenerator(seed=7).generate(3)
    b = CaseGenerator(seed=7).generate(3)
    assert a.source == b.source
    assert a.events == b.events
    assert a.switches == b.switches
    assert a.links == b.links


def test_generator_seeds_differ():
    sources = {CaseGenerator(seed=s).generate(0).source for s in range(4)}
    assert len(sources) > 1


def test_generated_programs_type_check_and_round_trip():
    generator = CaseGenerator(seed=1)
    for index in range(8):
        case = generator.generate(index)
        check_program(case.source)  # the generator's validity oracle held
        # unparse(parse(.)) is a fixpoint on generated sources
        reprinted = unparse(parse_program(case.source))
        assert reprinted == unparse(parse_program(reprinted))


def test_generated_traffic_targets_declared_switches():
    generator = CaseGenerator(seed=2)
    for index in range(8):
        case = generator.generate(index)
        assert case.events, "cases must carry traffic"
        for _t, switch_id, _name, _args in case.events:
            assert 0 <= switch_id < case.switches


# ---------------------------------------------------------------------------
# differential runner
# ---------------------------------------------------------------------------
COUNTER = """
global tally = new Array<<32>>(4);
event tick(int slot, int hops);
handle tick(int slot, int hops) {
  Array.setm(tally, slot, incr, 1);
  if ((hops > 0)) {
    generate tick(slot, (hops - 1));
  }
}
memop incr(int stored, int x) {
  return (stored + x);
}
"""


def test_run_case_collects_observables():
    case = FuzzCase(source=COUNTER, events=[(0, 0, "tick", (1, 2))])
    result = run_case(case, "reference")
    assert result.error is None
    assert len(result.trace) == 3  # injected event + 2 hops
    assert result.digest is not None
    assert result.stats[0]["events_handled"] == 3
    assert result.stats[0]["events_generated"] == 2


def test_run_differential_agreement():
    case = FuzzCase(source=COUNTER, events=[(0, 0, "tick", (2, 1))])
    outcome = run_differential(case)
    assert outcome.ok, outcome.summary()
    digests = {r.digest for r in outcome.results.values()}
    assert len(digests) == 1


def test_run_differential_flags_crashes():
    # an event name the program does not declare is harmless (unknown events
    # are ignored), but a broken source must be reported, not raised
    case = FuzzCase(source="event e(); handle e() { }", events=[(0, 0, "e", ())])
    bad = FuzzCase(source="event e(; handle", events=[])
    assert run_differential(case).ok
    outcome = run_differential(bad)
    assert not outcome.ok
    assert "frontend rejects" in outcome.divergences[0]


def test_small_fuzz_batch_has_no_divergence():
    generator = CaseGenerator(seed=3)
    for index in range(6):
        case = generator.generate(index)
        outcome = run_differential(case)
        assert outcome.ok, outcome.summary()


def test_checkpoint_differential_agrees_on_generated_cases():
    """The checkpoint/restore mutation: interrupt each case mid-run, JSON
    round-trip the snapshot, restore into a fresh network, resume — every
    observable must still match the straight-through run on all engines."""
    from repro.fuzz.diff import run_case_checkpointed, run_checkpoint_differential

    generator = CaseGenerator(seed=6)
    for index in range(4):
        case = generator.generate(index)
        straight = run_differential(case)
        assert straight.ok, straight.summary()
        handled = len(next(iter(straight.results.values())).trace)
        split = max(1, handled // 2)
        outcome = run_checkpoint_differential(case, split, straight=straight)
        assert outcome.ok, outcome.summary()
        # checkpointed observables equal the straight run's, engine by engine
        for engine, base in straight.results.items():
            ck = outcome.results[f"{engine}+checkpoint"]
            assert ck.error is None
            assert ck.digest == base.digest
            assert ck.trace == base.trace


def test_checkpoint_differential_split_positions_are_all_safe():
    """Any split point — 0, mid, past the end — must be a no-op mutation."""
    from repro.fuzz.diff import run_case, run_case_checkpointed

    case = FuzzCase(source=COUNTER, events=[(0, 0, "tick", (1, 4))])
    base = run_case(case, "compiled")
    for split in (0, 1, 3, 10_000):
        ck = run_case_checkpointed(case, "compiled", split=split)
        assert ck.error is None, ck.error
        assert ck.digest == base.digest
        assert ck.trace == base.trace
        assert ck.stats == base.stats


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------
def test_shrinker_minimises_while_predicate_holds():
    generator = CaseGenerator(seed=4)
    case = generator.generate(0)

    # synthetic "bug": the program mentions Array.setm/set at all; the
    # shrinker should strip everything not needed to keep one array write
    def still_fails(candidate: FuzzCase) -> bool:
        return "Array.set" in candidate.source

    if not still_fails(case):  # make the predicate initially true
        case = FuzzCase(source=COUNTER, events=[(0, 0, "tick", (0, 0))])
    shrunk = shrink_case(case, still_fails, max_evaluations=250)
    assert "Array.set" in shrunk.source
    assert len(shrunk.source) <= len(case.source)
    check_program(shrunk.source)  # shrunk cases stay well-typed
    assert len(shrunk.events) <= len(case.events)


def test_shrink_preserves_real_divergence_semantics(tmp_path):
    # round-trip a case through JSON and keep behaviour identical
    case = FuzzCase(source=COUNTER, events=[(1000, 0, "tick", (3, 0))], name="rt")
    path = tmp_path / "rt.json"
    save_case(case, str(path))
    loaded = load_case(str(path))
    assert loaded.source == case.source
    assert loaded.events == case.events
    before = run_case(case, "compiled")
    after = run_case(loaded, "compiled")
    assert before.digest == after.digest
    assert before.trace == after.trace


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_smoke_and_replay(tmp_path, capsys):
    from repro.fuzz.__main__ import main

    assert main(["--count", "3", "--seed", "5", "--out", ""]) == 0
    out = capsys.readouterr().out
    assert "zero divergences" in out

    case = FuzzCase(source=COUNTER, events=[(0, 0, "tick", (0, 1))], name="cli-case")
    save_case(case, str(tmp_path / "cli-case.json"))
    assert main(["--replay", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "[ok] cli-case" in out


# ---------------------------------------------------------------------------
# division/modulo parity (regression: raw '/' and '%' on event data paths)
# ---------------------------------------------------------------------------
DIV_PROGRAM = """
global quo = new Array<<32>>(1);
global rem = new Array<<32>>(1);
event div(int a, int b, int hops);
handle div(int a, int b, int hops) {
  int q = (a / b);
  int r = (a % b);
  Array.set(quo, 0, q);
  Array.set(rem, 0, r);
}
"""


@pytest.mark.parametrize("engine", ["reference", "compiled", "pisa"])
@pytest.mark.parametrize("a,b", [(10, 3), (10, 0), (0, 0), (0xFFFFFFFF, 7)])
def test_division_by_zero_is_total_on_every_engine(engine, a, b):
    from repro.interp.events import EventInstance
    from repro.ops import div32, mod32

    network, switch = single_switch_network(DIV_PROGRAM, engine=engine)
    network.inject(0, EventInstance(name="div", args=(a, b, 0)))
    network.run()
    assert switch.array("quo").cells[0] == div32(a, b)
    assert switch.array("rem").cells[0] == mod32(a, b)


def test_no_raw_division_in_engine_value_paths():
    """Audit: engine execution must route '/' and '%' through div32/mod32.

    Tokenises the two value-path modules and rejects any '//' operator and
    any '%' operator that is not string formatting (a '%' whose left operand
    is a string literal)."""
    import io
    import os
    import tokenize

    import repro.interp.compiled as compiled_mod
    import repro.pisa.pipeline as pipeline_mod

    for module in (compiled_mod, pipeline_mod):
        path = module.__file__
        with open(path, "rb") as fh:
            tokens = list(tokenize.tokenize(fh.readline))
        for i, tok in enumerate(tokens):
            if tok.type != tokenize.OP:
                continue
            assert tok.string not in ("//", "//="), (
                f"raw floor division in {os.path.basename(path)}:{tok.start[0]}"
            )
            if tok.string in ("%", "%="):
                prev = tokens[i - 1]
                assert prev.type == tokenize.STRING, (
                    f"raw modulo in {os.path.basename(path)}:{tok.start[0]}"
                )


# ---------------------------------------------------------------------------
# fast_path= deprecation contract (one warning per call site, exact mapping)
# ---------------------------------------------------------------------------
def test_fast_path_alias_warns_exactly_once_per_call_site():
    source = "event e(); handle e() {}"
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        network = Network(fast_path=True)
    assert [w for w in record if w.category is DeprecationWarning]
    assert len(record) == 1
    assert network.engine == "compiled"

    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        switch = network.add_switch(0, source, fast_path=False)
    assert len(record) == 1
    assert record[0].category is DeprecationWarning
    assert switch.engine_name == "reference"

    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        network2, switch2 = single_switch_network(source, fast_path=True)
    assert len(record) == 1
    assert record[0].category is DeprecationWarning
    assert network2.engine == "compiled"
    assert switch2.engine_name == "compiled"

    # the non-deprecated path emits no warning at all
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        Network(engine="pisa")
        network.add_switch(1, source, engine="reference")
    assert record == []
