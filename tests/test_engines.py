"""Engine-abstraction tests: three-way scenario parity (reference vs
compiled vs PISA pipeline), the engine/fast_path parameter plumbing,
heterogeneous-engine networks, PISA recirculation-queue accounting (and its
``recirc_drops`` overflow counter), and the pausable delay queue /
recirculation port driven by streaming scenario traffic rather than the
synthetic Figure 14/16 micro-inputs."""

import pytest

from repro.errors import SimulationError
from repro.interp.engine import (
    ENGINE_NAMES,
    CompiledEngine,
    PisaEngine,
    ReferenceEngine,
    make_engine,
    resolve_engine_name,
)
from repro.interp.events import EventInstance
from repro.interp.network import Network, single_switch_network
from repro.pisa import DelayedEvent, PausableDelayQueue, RecirculationPort
from repro.scenarios import SCENARIOS, run_scenario, run_scenario_all_engines
from repro.scenarios import traffic as tm
from repro.scenarios.runner import network_array_digest


# ---------------------------------------------------------------------------
# three-way engine parity over the bundled scenario catalogue
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_three_way_engine_parity(name):
    """Every bundled scenario must produce identical invariant verdicts and
    final array digests on the reference interpreter, the compiled fast
    path, AND the compiled-layout PISA pipeline executor."""
    results = run_scenario_all_engines(SCENARIOS[name], 800, 3)
    assert [r.engine for r in results] == list(ENGINE_NAMES)
    assert all(r.ok for r in results), [r.to_dict() for r in results if not r.ok]
    assert len({r.array_digest for r in results}) == 1


def test_pisa_result_reports_pipeline_stats():
    (result,) = [run_scenario(SCENARIOS["nat-churn"], 1500, 1, engine="pisa")]
    totals = result.pipeline_totals
    assert totals["stages"] >= 1
    assert totals["events"] == result.events_handled
    # the NAT retry path delays and recirculates events, so the pausable
    # queue and the recirculation port must both have been charged
    assert totals["recirculated_events"] > 0
    assert totals["peak_queue_depth"] > 0
    assert totals["recirc_passes"] >= totals["recirculated_events"]
    assert totals["recirc_bytes"] >= 64 * totals["recirc_passes"]
    assert totals["recirc_drops"] == 0
    # per-switch stats carry the engine name and the nested pipeline dict
    sw = result.switch_stats[0]
    assert sw["engine"] == "pisa"
    assert sw["pipeline"]["events"] == result.events_handled


def test_interpreter_result_has_no_pipeline_stats():
    result = run_scenario(SCENARIOS["nat-churn"], 300, 1, engine="compiled")
    assert result.pipeline_totals == {}
    assert "pipeline" not in result.switch_stats[0]


# ---------------------------------------------------------------------------
# parameter plumbing: engine names and the deprecated fast_path alias
# ---------------------------------------------------------------------------
def test_resolve_engine_name_aliases():
    assert resolve_engine_name() == "compiled"
    with pytest.deprecated_call():
        assert resolve_engine_name(fast_path=True) == "compiled"
    with pytest.deprecated_call():
        assert resolve_engine_name(fast_path=False) == "reference"
    assert resolve_engine_name("pisa") == "pisa"
    assert resolve_engine_name(None, None, default="reference") == "reference"
    with pytest.raises(SimulationError):
        resolve_engine_name("tofino2")
    with pytest.raises(SimulationError), pytest.deprecated_call():
        resolve_engine_name("pisa", fast_path=True)  # conflicting selection
    # agreeing alias is accepted (but still warns)
    with pytest.deprecated_call():
        assert resolve_engine_name("reference", fast_path=False) == "reference"


def test_make_engine_unknown_name_raises():
    network, switch = single_switch_network("event e(); handle e() {}")
    with pytest.raises(SimulationError):
        make_engine("nope", switch.runtime)


def test_network_engine_parameter_and_alias():
    assert Network().engine == "compiled"
    assert Network(engine="pisa").engine == "pisa"
    with pytest.deprecated_call():
        assert Network(fast_path=False).engine == "reference"
    with pytest.deprecated_call():
        assert Network(fast_path=False).fast_path is False
    assert Network(engine="pisa").fast_path is True  # anything but reference


def test_switch_engine_classes_and_interpreter_alias():
    source = "event e(int x); handle e(int x) {}"
    for name, cls in (
        ("reference", ReferenceEngine),
        ("compiled", CompiledEngine),
        ("pisa", PisaEngine),
    ):
        network, switch = single_switch_network(source, engine=name)
        assert switch.engine_name == name
        assert isinstance(switch.engine, cls)
        assert switch.interpreter is switch.engine.executor
        assert switch.fast_path is (name != "reference")


def test_pisa_layout_is_compiled_once_per_checked_program():
    from repro.frontend.type_checker import check_program

    checked = check_program("event e(); handle e() {}")
    network = Network(engine="pisa")
    a = network.add_switch(0, checked)
    b = network.add_switch(1, checked)
    assert a.engine.pipeline.compiled is b.engine.pipeline.compiled


# ---------------------------------------------------------------------------
# heterogeneous engines in one network
# ---------------------------------------------------------------------------
RELAY = """
global hits = new Array<<32>>(8);
memop plus(int stored, int x) { return stored + x; }
event pkt(int idx, int hops);
handle pkt(int idx, int hops) {
  Array.set(hits, idx, plus, 1);
  if (hops > 0) {
    generate Event.locate(pkt(idx, hops - 1), (SELF + 1) % 3);
  }
}
"""


def _run_relay(engines):
    network = Network()
    for sid, engine in enumerate(engines):
        network.add_switch(sid, RELAY, engine=engine)
    for sid in range(3):
        network.add_link(sid, (sid + 1) % 3)
    for i in range(30):
        network.inject(i % 3, EventInstance("pkt", (i % 8, 5)), at_ns=i * 1_000)
    network.run()
    return network


def test_heterogeneous_engines_agree_with_homogeneous_run():
    mixed = _run_relay(["reference", "compiled", "pisa"])
    uniform = _run_relay(["compiled", "compiled", "compiled"])
    assert network_array_digest(mixed) == network_array_digest(uniform)
    # per-switch reporting keeps each engine's own view
    stats = mixed.stats()
    assert [stats[sid]["engine"] for sid in range(3)] == [
        "reference",
        "compiled",
        "pisa",
    ]
    assert "pipeline" in stats[2] and "pipeline" not in stats[0]
    # network totals aggregate across different engines without double counting
    total = mixed.total_stats()
    assert total.events_handled == sum(
        stats[sid]["events_handled"] for sid in range(3)
    )
    assert total.recirc_drops == 0


def test_heterogeneous_network_mixing_codegen_agrees():
    """Codegen switches interoperate with every other engine in one network:
    relayed events cross engine boundaries and the final array state matches
    a homogeneous codegen run."""
    mixed = _run_relay(["codegen", "reference", "pisa"])
    uniform = _run_relay(["codegen", "codegen", "codegen"])
    baseline = _run_relay(["compiled", "compiled", "compiled"])
    assert network_array_digest(mixed) == network_array_digest(baseline)
    assert network_array_digest(uniform) == network_array_digest(baseline)
    stats = mixed.stats()
    assert [stats[sid]["engine"] for sid in range(3)] == [
        "codegen",
        "reference",
        "pisa",
    ]
    # the generated handlers ran natively — nothing fell back to the walker
    assert mixed.switches[0].engine.executor.fallback_handler_names == []


def test_heterogeneous_network_reset_clears_engine_accounting():
    network = _run_relay(["pisa", "compiled", "pisa"])
    assert network.stats()[0]["pipeline"]["events"] > 0
    digest_before = network_array_digest(network)
    network.reset()
    stats = network.stats()
    assert stats[0]["pipeline"]["events"] == 0
    assert stats[0]["pipeline"]["recirc_passes"] == 0
    assert stats[0]["pipeline"]["peak_queue_depth"] == 0
    # a rerun from time zero reproduces the original digest exactly
    for i in range(30):
        network.inject(i % 3, EventInstance("pkt", (i % 8, 5)), at_ns=i * 1_000)
    network.run()
    assert network_array_digest(network) == digest_before


# ---------------------------------------------------------------------------
# PISA recirculation queue: overflow drops and depth accounting
# ---------------------------------------------------------------------------
BURST = """
global count = new Array<<32>>(4);
memop plus(int stored, int x) { return stored + x; }
event burst();
event sub();
handle burst() {
  generate sub(); generate sub(); generate sub(); generate sub(); generate sub();
}
handle sub() { Array.set(count, 0, plus, 1); }
"""


def test_pisa_recirc_queue_overflow_counts_recirc_drops():
    network, switch = single_switch_network(BURST, engine="pisa")
    switch.engine.recirc_queue_capacity = 2
    network.inject(0, EventInstance("burst", ()))
    network.run()
    assert switch.stats.recirc_drops == 3
    assert switch.array("count").cells[0] == 2  # only the admitted events ran
    assert network.total_stats().recirc_drops == 3
    assert switch.engine.peak_queue_depth == 2


def test_pisa_unbounded_queue_never_drops():
    network, switch = single_switch_network(BURST, engine="pisa")
    network.inject(0, EventInstance("burst", ()))
    network.run()
    assert switch.stats.recirc_drops == 0
    assert switch.array("count").cells[0] == 5
    assert switch.engine.peak_queue_depth == 5
    assert switch.engine.queue_depth == 0  # all arrivals released their slot


def test_pisa_delayed_events_charge_pausable_queue_passes():
    source = """
    event tick(int n);
    event noop();
    handle tick(int n) { generate Event.delay(noop(), 350000); }
    """
    network, switch = single_switch_network(source, engine="pisa")
    network.inject(0, EventInstance("tick", (1,)))
    network.run()
    # 350 us against the 100 us release interval: the parked packet makes
    # ceil(350/100) = 4 recirculation passes (PausableDelayQueue semantics)
    assert switch.engine.port.packets == 4
    assert switch.engine.recirculated_events == 1


# ---------------------------------------------------------------------------
# pausable delay queue / recirculation port under streaming scenario traffic
# ---------------------------------------------------------------------------
def test_pausable_queue_under_streaming_scenario_traffic():
    """Feed the delay queue from a streaming traffic model (arrival times and
    payload mix from the Zipf scenario generator) instead of the synthetic
    constant-delay batch of the Figure 14 tests."""
    traffic = tm.ZipfPacketTraffic(event_name="pkt", hosts=64, alpha=1.2)
    queue = PausableDelayQueue(release_interval_ns=100_000)
    events = []
    for i, (t_ns, _sid, ev) in enumerate(traffic.events([0], 400, seed=11)):
        delay = 50_000 + (i % 7) * 60_000  # heterogeneous requested delays
        event = DelayedEvent(
            event_id=i,
            requested_delay_ns=delay,
            enqueued_at_ns=t_ns,
            size_bytes=ev.payload_bytes(),
        )
        queue.enqueue(event)
        events.append(event)
    queue.run_until_empty()
    assert len(queue.delivered) == 400
    # every released event waited at least its requested delay, with error
    # bounded by one release interval (the Figure 14 accuracy property, now
    # under irregular streaming arrivals)
    assert all(0 <= e.delay_error_ns <= 100_000 for e in events)
    # each event pays ceil(delay_to_next_release) passes; with these delays
    # every event loops at least once and the port sees at least one frame
    # per event
    assert queue.recirculation_passes >= 400
    assert queue.recirculated_bytes >= sum(e.size_bytes for e in events)
    assert queue.buffer_bytes_peak > 0


def test_recirculation_port_accounts_streaming_run():
    """The recirculation port totals of a PISA-engine scenario run must be
    consistent: bandwidth = bytes over duration, utilisation in [0, 1]."""
    result = run_scenario(SCENARIOS["nat-churn"], 1500, 1, engine="pisa")
    totals = result.pipeline_totals
    port = RecirculationPort()
    port.recirculate(packet_bytes=64, passes=totals["recirc_passes"])
    assert port.bytes == totals["recirc_bytes"]  # all NAT events are min-size
    duration = result.sim_ns
    assert port.bandwidth_bps(duration) == pytest.approx(
        totals["recirc_bytes"] * 8 / (duration * 1e-9)
    )
    assert 0.0 < port.utilisation(duration) <= 1.0


def test_scenario_cli_all_engines(capsys):
    from repro.scenarios.__main__ import main

    code = main(["run", "nat-churn", "--events", "400", "--all-engines", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "engines agree" in out
    assert "[pisa]" in out and "[reference]" in out and "[compiled]" in out
    assert "pipeline:" in out  # recirculation/queue stats in the summary
