"""Differential conformance suite for the compiled-handler fast path.

Every bundled application (the ten Figure 9 programs) and the quickstart
example program are driven through both execution engines — the tree-walking
:class:`HandlerInterpreter` and the closure-compiling
:class:`CompiledSwitchRuntime` — on identical deterministic event sequences,
and the suite asserts the engines are observationally identical:

* the full network trace (time, switch, event, and the complete
  :class:`ExecutionResult` — generated events, prints, drop/forward/flood);
* the final state of every runtime array, including read/write counters;
* per-switch statistics and printf logs.

A second family of property-style tests sweeps 32-bit boundary operands
(0, 1, 2^31, 2^32-1, ...) through every binary/unary operator and through
``hash<<w>>``, asserting both engines agree and stay masked to 32 bits.
"""

import importlib.util
import pathlib

import pytest

from repro.errors import InterpError
from repro.frontend import ast, check_program
from repro.interp import (
    CompiledSwitchRuntime,
    EventInstance,
    HandlerInterpreter,
    Network,
    SwitchRuntime,
    lucid_hash,
)
from repro.interp.interpreter import _apply_binop
from repro.apps import ALL_APPLICATIONS


# ---------------------------------------------------------------------------
# deterministic synthetic workloads
# ---------------------------------------------------------------------------
def _lcg(seed):
    state = (seed & 0x7FFFFFFF) or 1
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def build_events(checked, count=60, seed=0xC0FFEE):
    """A deterministic event sequence that exercises every handler of the
    program, mixing small argument values (which hit equality/branch logic)
    with full-range 31-bit words."""
    rng = _lcg(seed)
    names = sorted(checked.info.handlers)
    events = []
    for i in range(count):
        name = names[i % len(names)]
        params = checked.info.events[name].params
        args = tuple(
            next(rng) % 16 if (i + j) % 2 == 0 else next(rng)
            for j in range(len(params))
        )
        events.append((EventInstance(name, args), i * 731))
    return events


def run_engine(checked, fast_path, events, nswitches=1, max_events=400):
    """Run one engine over the event sequence; return everything observable."""
    network = Network(engine="compiled" if fast_path else "reference")
    for sid in range(nswitches):
        network.add_switch(sid, checked)
    for a in range(nswitches):
        for b in range(a + 1, nswitches):
            network.add_link(a, b)
    for i, (event, at_ns) in enumerate(events):
        network.inject(i % nswitches, event, at_ns=at_ns)
    # max_events bounds self-perpetuating control loops (e.g. periodic scans)
    network.run(max_events=max_events)
    trace = [(t.time_ns, t.switch_id, t.event, t.result) for t in network.trace]
    arrays = {
        sid: {
            name: (arr.snapshot(), arr.reads, arr.writes)
            for name, arr in sw.runtime.arrays.items()
        }
        for sid, sw in network.switches.items()
    }
    stats = {sid: sw.stats for sid, sw in network.switches.items()}
    logs = {sid: list(sw.log) for sid, sw in network.switches.items()}
    return trace, arrays, stats, logs


def assert_engines_agree(checked, events, nswitches=1, max_events=400):
    slow = run_engine(checked, False, events, nswitches, max_events)
    fast = run_engine(checked, True, events, nswitches, max_events)
    s_trace, s_arrays, s_stats, s_logs = slow
    f_trace, f_arrays, f_stats, f_logs = fast
    assert len(s_trace) == len(f_trace)
    for i, (s, f) in enumerate(zip(s_trace, f_trace)):
        assert s == f, f"trace diverges at event #{i}: {s} != {f}"
    assert s_arrays == f_arrays
    assert s_stats == f_stats
    assert s_logs == f_logs


# ---------------------------------------------------------------------------
# every bundled application, single switch
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(ALL_APPLICATIONS))
def test_engines_agree_on_application(key):
    app = ALL_APPLICATIONS[key]
    checked = check_program(app.source, name=key)
    events = build_events(checked)
    assert_engines_agree(checked, events)


@pytest.mark.parametrize("key", sorted(ALL_APPLICATIONS))
def test_every_application_handler_actually_compiles(key):
    """Guards against the differential suite passing vacuously: if the
    compiler regressed into its silent tree-walker fallback, both 'engines'
    would be the tree walker and the agreement tests above would prove
    nothing."""
    app = ALL_APPLICATIONS[key]
    checked = check_program(app.source, name=key)
    engine = CompiledSwitchRuntime(SwitchRuntime(checked))
    assert engine.fallback_handler_names == []


# ---------------------------------------------------------------------------
# the example programs
# ---------------------------------------------------------------------------
def _load_example_program(filename, attr="PROGRAM"):
    path = pathlib.Path(__file__).resolve().parent.parent / "examples" / filename
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, attr)


def test_engines_agree_on_quickstart_example():
    source = _load_example_program("quickstart.py")
    checked = check_program(source, name="quickstart")
    events = build_events(checked, count=80)
    assert_engines_agree(checked, events)


# ---------------------------------------------------------------------------
# multi-switch topologies (remote events, multicast, links)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("key", ["DFW", "DFW(a)", "RIP", "RR"])
def test_engines_agree_on_multi_switch_network(key):
    app = ALL_APPLICATIONS[key]
    checked = check_program(app.source, name=key)
    events = build_events(checked, count=45, seed=0xBEEF)
    assert_engines_agree(checked, events, nswitches=3, max_events=500)


def test_engines_agree_on_firewall_heavy_traffic():
    """The Figure 17 workload shape: many pkt_out/pkt_in pairs, cuckoo
    installs and timeout scans recirculating between them."""
    app = ALL_APPLICATIONS["SFW"]
    checked = check_program(app.source, name="SFW", symbolic_bindings={"TBL_SLOTS": 64})
    rng = _lcg(7)
    events = []
    for i in range(120):
        src, dst = next(rng) % 32, next(rng) % 32
        events.append((EventInstance("pkt_out", (src, dst)), i * 211))
        events.append((EventInstance("pkt_in", (dst, src)), i * 211 + 97))
    events.append((EventInstance("scan_timeouts", (0,)), 300))
    assert_engines_agree(checked, events, max_events=700)


# ---------------------------------------------------------------------------
# 32-bit semantics: boundary sweeps through every operator
# ---------------------------------------------------------------------------
BOUNDARY = [0, 1, 2, 3, 31, 32, 2**31 - 1, 2**31, 2**32 - 2, 2**32 - 1]

_BINOP_SRC = [
    ("+", ast.BinOp.ADD),
    ("-", ast.BinOp.SUB),
    ("*", ast.BinOp.MUL),
    ("/", ast.BinOp.DIV),
    ("%", ast.BinOp.MOD),
    ("&", ast.BinOp.BITAND),
    ("|", ast.BinOp.BITOR),
    ("^", ast.BinOp.BITXOR),
    ("<<", ast.BinOp.SHL),
    (">>", ast.BinOp.SHR),
    ("==", ast.BinOp.EQ),
    ("!=", ast.BinOp.NEQ),
    ("<", ast.BinOp.LT),
    (">", ast.BinOp.GT),
    ("<=", ast.BinOp.LE),
    (">=", ast.BinOp.GE),
    ("&&", ast.BinOp.AND),
    ("||", ast.BinOp.OR),
]

_OPS_PROGRAM = (
    "event e(int a, int b);\n"
    "handle e(int a, int b) {\n"
    + "".join(f"  printf(a {op} b);\n" for op, _ in _BINOP_SRC)
    + "  printf(-a);\n  printf(~a);\n  printf(!a);\n}\n"
)


def _expected_op_results(a, b):
    results = []
    for _, op in _BINOP_SRC:
        if op is ast.BinOp.AND:
            results.append(int(bool(a) and bool(b)))
        elif op is ast.BinOp.OR:
            results.append(int(bool(a) or bool(b)))
        else:
            results.append(_apply_binop(op, a, b))
    results.append((-a) & 0xFFFFFFFF)
    results.append(~a & 0xFFFFFFFF)
    results.append(0 if a else 1)
    return [str(r) for r in results]


def _run_ops_program(fast_path, pairs):
    network = Network(engine="compiled" if fast_path else "reference")
    switch = network.add_switch(0, check_program(_OPS_PROGRAM))
    for i, (a, b) in enumerate(pairs):
        network.inject(0, EventInstance("e", (a, b)), at_ns=i)
    network.run()
    return switch.log


def test_binop_boundary_semantics_engines_agree():
    pairs = [(a, b) for a in BOUNDARY for b in BOUNDARY]
    slow = _run_ops_program(False, pairs)
    fast = _run_ops_program(True, pairs)
    assert slow == fast
    # and both match the reference semantics, masked to 32 bits
    per_event = len(_BINOP_SRC) + 3
    for i, (a, b) in enumerate(pairs):
        got = slow[i * per_event : (i + 1) * per_event]
        assert got == _expected_op_results(a, b), f"operands {(a, b)}"
        for printed in got:
            assert 0 <= int(printed) < 2**32


def test_apply_binop_stays_masked_on_boundaries():
    for _, op in _BINOP_SRC:
        for a in BOUNDARY:
            for b in BOUNDARY:
                result = _apply_binop(op, a, b)
                assert 0 <= result < 2**32, (op, a, b, result)


_HASH_PROGRAM = """
event e(int a, int b);
handle e(int a, int b) {
  printf(hash<<8>>(a, b));
  printf(hash<<16>>(a, b));
  printf(hash<<32>>(a, b));
  printf(hash<<32>>(a));
  printf(hash<<32>>(a, b, a, b));
}
"""


def test_hash_boundary_semantics_engines_agree():
    pairs = [(a, b) for a in BOUNDARY for b in BOUNDARY]

    def run(fast_path):
        network = Network(engine="compiled" if fast_path else "reference")
        switch = network.add_switch(0, check_program(_HASH_PROGRAM))
        for i, (a, b) in enumerate(pairs):
            network.inject(0, EventInstance("e", (a, b)), at_ns=i)
        network.run()
        return switch.log

    slow, fast = run(False), run(True)
    assert slow == fast
    for i, (a, b) in enumerate(pairs):
        w8, w16, w32, w32a, w32r = slow[i * 5 : (i + 1) * 5]
        assert int(w8) == lucid_hash(8, [a, b]) < 2**8
        assert int(w16) == lucid_hash(16, [a, b]) < 2**16
        assert int(w32) == lucid_hash(32, [a, b]) < 2**32
        assert int(w32a) == lucid_hash(32, [a])
        assert int(w32r) == lucid_hash(32, [a, b, a, b])


def test_hash_masks_oversized_arguments():
    # arguments beyond 32 bits hash like their masked value, in both engines
    assert lucid_hash(32, [2**40 + 5]) == lucid_hash(32, [5])
    assert lucid_hash(16, [2**32]) == lucid_hash(16, [0])


# ---------------------------------------------------------------------------
# function-inlining parity
# ---------------------------------------------------------------------------
def test_inlined_fun_locals_reset_between_call_sites():
    """A fun inlined at two call sites shares mangled frame slots; every
    call must reset the callee's branch-locals so the second call cannot
    observe values left behind by the first (regression test: the tree
    walker gives each call a fresh environment, so a branch-local that
    shadows a const must fall back to the const when the branch is not
    taken)."""
    source = """
    const int C = 7;
    global t = new Array<<32>>(4);
    fun int f(int a) {
      if (a == 1) { int C = 99; }
      return C;
    }
    event e();
    handle e() {
      int x = f(1);
      int y = f(0);
      Array.set(t, 0, x + y);
      printf(x); printf(y);
    }
    """
    checked = check_program(source)
    assert_engines_agree(checked, [(EventInstance("e", ()), 0)])
    network = Network(engine="compiled")
    switch = network.add_switch(0, checked)
    network.inject(0, EventInstance("e", ()))
    network.run()
    assert switch.log == ["99", "7"]
    assert switch.array("t").get(0) == 106


def test_inlined_fun_repeated_calls_with_branch_locals():
    """Same fun, same call site, invoked by consecutive events: stale
    locals must not leak across handler invocations either."""
    source = """
    const int D = 3;
    global t = new Array<<32>>(4);
    fun int g(int a) {
      if (a > 10) { int D = 50; }
      return D + a;
    }
    event e(int a);
    handle e(int a) { Array.set(t, 0, g(a)); }
    """
    checked = check_program(source)
    events = [(EventInstance("e", (20,)), 0), (EventInstance("e", (1,)), 10)]
    assert_engines_agree(checked, events)


# ---------------------------------------------------------------------------
# engine-level parity details
# ---------------------------------------------------------------------------
def test_compiled_engine_is_drop_in_for_handler_interpreter():
    source = """
    global t = new Array<<32>>(4);
    memop plus(int stored, int x) { return stored + x; }
    fun int double(int v) { return v + v; }
    event e(int v);
    handle e(int v) { Array.set(t, 0, plus, double(v)); }
    """
    checked = check_program(source)
    slow_rt, fast_rt = SwitchRuntime(checked), SwitchRuntime(checked)
    slow, fast = HandlerInterpreter(slow_rt), CompiledSwitchRuntime(fast_rt)
    for engine, rt in ((slow, slow_rt), (fast, fast_rt)):
        result = engine.run(EventInstance("e", (21,)))
        assert result.generated == [] and not result.dropped
        assert rt.array("t").get(0) == 42
        assert engine.call_function("double", [10]) == 20


def test_compiled_engine_rejects_wrong_arity_like_tree_walker():
    checked = check_program("event e(int a); handle e(int a) { drop(); }")
    fast = CompiledSwitchRuntime(SwitchRuntime(checked))
    slow = HandlerInterpreter(SwitchRuntime(checked))
    for engine in (fast, slow):
        with pytest.raises(InterpError):
            engine.run(EventInstance("e", (1, 2)))


def test_compiled_engine_ignores_events_without_handlers():
    checked = check_program("event e(int a); handle e(int a) { drop(); }")
    fast = CompiledSwitchRuntime(SwitchRuntime(checked))
    result = fast.run(EventInstance("unknown", (1,)))
    assert result.generated == [] and not result.dropped


def test_compiled_engine_sees_late_bound_externs():
    source = "extern fun int probe(int v); event e(int v); handle e(int v) { int x = probe(v); printf(x); }"
    network = Network(engine="compiled")
    switch = network.add_switch(0, source)
    # bind AFTER the handlers were compiled: the fast path must pick it up
    switch.bind_extern("probe", lambda v: v * 3)
    network.inject(0, EventInstance("e", (14,)))
    network.run()
    assert switch.log == ["42"]


def test_event_equality_ignores_allocation_serial():
    a = EventInstance("x", (1, 2))
    b = EventInstance("x", (1, 2))
    assert a.serial != b.serial and a == b
    assert a.delay(5) != a  # but the event value itself still matters
