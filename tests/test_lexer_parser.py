"""Tests for the lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.frontend import ast, parse_expression, parse_program, tokenize
from repro.frontend.tokens import TokenKind


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------
def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def test_lex_integers_decimal():
    toks = tokenize("42")
    assert toks[0].kind is TokenKind.INT and toks[0].value == 42


def test_lex_integers_hex():
    assert tokenize("0xff")[0].value == 255


def test_lex_integers_binary():
    assert tokenize("0b1010")[0].value == 10


@pytest.mark.parametrize(
    "literal,expected_ns",
    [("5ns", 5), ("3us", 3_000), ("10ms", 10_000_000), ("2s", 2_000_000_000)],
)
def test_lex_time_suffixes_normalise_to_ns(literal, expected_ns):
    assert tokenize(literal)[0].value == expected_ns


def test_lex_unknown_suffix_rejected():
    with pytest.raises(LexError):
        tokenize("10parsecs")


def test_lex_keywords_vs_identifiers():
    assert kinds("handle handler") == [TokenKind.KW_HANDLE, TokenKind.IDENT]


def test_lex_two_char_operators():
    assert kinds("== != <= >= && ||") == [
        TokenKind.EQ,
        TokenKind.NEQ,
        TokenKind.LE,
        TokenKind.GE,
        TokenKind.AND,
        TokenKind.OR,
    ]


def test_lex_size_brackets():
    assert kinds("Array<<32>>") == [TokenKind.IDENT, TokenKind.LSHIFT_SIZE, TokenKind.INT, TokenKind.RSHIFT_SIZE]


def test_lex_line_comments_skipped():
    assert kinds("1 // two three\n4") == [TokenKind.INT, TokenKind.INT]


def test_lex_block_comments_skipped():
    assert kinds("1 /* 2\n 3 */ 4") == [TokenKind.INT, TokenKind.INT]


def test_lex_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_lex_unexpected_character():
    with pytest.raises(LexError):
        tokenize("int x = $1;")


def test_lex_positions_are_tracked():
    toks = tokenize("a\n  b")
    assert toks[1].span.line == 2 and toks[1].span.column == 3


# ---------------------------------------------------------------------------
# parser: expressions
# ---------------------------------------------------------------------------
def test_parse_precedence_mul_over_add():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, ast.EBinary) and expr.op is ast.BinOp.ADD
    assert isinstance(expr.right, ast.EBinary) and expr.right.op is ast.BinOp.MUL


def test_parse_precedence_cmp_over_and():
    expr = parse_expression("a == 1 && b == 2")
    assert expr.op is ast.BinOp.AND
    assert expr.left.op is ast.BinOp.EQ and expr.right.op is ast.BinOp.EQ


def test_parse_parentheses_override_precedence():
    expr = parse_expression("(1 + 2) * 3")
    assert expr.op is ast.BinOp.MUL and expr.left.op is ast.BinOp.ADD


def test_parse_unary_operators():
    expr = parse_expression("!x")
    assert isinstance(expr, ast.EUnary) and expr.op is ast.UnOp.NOT


def test_parse_dotted_call():
    expr = parse_expression("Array.get(tbl, 3)")
    assert isinstance(expr, ast.ECall) and expr.func == "Array.get" and len(expr.args) == 2


def test_parse_hash_with_size_args():
    expr = parse_expression("hash<<16>>(a, b)")
    assert isinstance(expr, ast.ECall) and expr.size_args == [16]


def test_parse_shift_still_works_outside_calls():
    expr = parse_expression("a << 2")
    assert isinstance(expr, ast.EBinary) and expr.op is ast.BinOp.SHL


def test_parse_nested_event_combinators():
    expr = parse_expression("Event.delay(Event.locate(ping(1), 3), 10ms)")
    assert expr.func == "Event.delay"
    inner = expr.args[0]
    assert inner.func == "Event.locate" and inner.args[0].func == "ping"


def test_parse_dotted_name_must_be_called():
    with pytest.raises(ParseError):
        parse_expression("Array.get")


# ---------------------------------------------------------------------------
# parser: declarations and statements
# ---------------------------------------------------------------------------
FULL_PROGRAM = """
const int SIZE = 16;
const group PEERS = {1, 2, 3};
symbolic size COLS = 512;
global tbl = new Array<<32>>(SIZE);
extern fun int report(int value);
memop plus(int stored, int x) { return stored + x; }
fun int bump(int idx) { return Array.get(tbl, idx, plus, 1); }
event pkt(int src, int dst);
handle pkt(int src, int dst) {
  int x = bump(src);
  if (x > 10) {
    generate Event.locate(pkt(src, dst), PEERS);
  } else {
    drop();
  }
}
"""


def test_parse_full_program_declaration_counts():
    program = parse_program(FULL_PROGRAM)
    assert len(program.consts()) == 2
    assert len(program.symbolics()) == 1
    assert len(program.globals()) == 1
    assert len(program.externs()) == 1
    assert len(program.memops()) == 1
    assert len(program.functions()) == 1
    assert len(program.events()) == 1
    assert len(program.handlers()) == 1


def test_parse_global_declaration_width_and_size_expr():
    program = parse_program("global t = new Array<<16>>(4 * 8);")
    g = program.globals()[0]
    assert g.cell_width == 16
    assert isinstance(g.size_expr, ast.EBinary)


def test_parse_array_shorthand_without_global_keyword():
    program = parse_program("Array nexthops = new Array<<32>>(8);")
    assert program.globals()[0].name == "nexthops"


def test_parse_group_constant():
    program = parse_program("const group G = {4, 5};")
    const = program.consts()[0]
    assert isinstance(const.value, ast.EGroup) and len(const.value.members) == 2


def test_parse_if_else_chain():
    program = parse_program(
        "event e(int a); handle e(int a) { if (a == 1) { drop(); } else if (a == 2) { drop(); } else { drop(); } }"
    )
    handler = program.handlers()[0]
    outer = handler.body[0]
    assert isinstance(outer, ast.SIf)
    assert isinstance(outer.else_body[0], ast.SIf)


def test_parse_match_statement():
    program = parse_program(
        "event e(int a, int b); handle e(int a, int b) { match (a, b) with | 1, _ -> { drop(); } | _, 2 -> { flood(1); } }"
    )
    stmt = program.handlers()[0].body[0]
    assert isinstance(stmt, ast.SMatch)
    assert stmt.branches[0][0] == [1, None]
    assert stmt.branches[1][0] == [None, 2]


def test_parse_generate_and_mgenerate():
    program = parse_program(
        "event a(); event b(); handle a() { generate b(); mgenerate Event.locate(b(), {1,2}); }"
    )
    body = program.handlers()[0].body
    assert isinstance(body[0], ast.SGenerate) and not body[0].multicast
    assert isinstance(body[1], ast.SGenerate) and body[1].multicast


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as err:
        parse_program("event e(int a) handle e(int a) {}")
    assert "expected" in str(err.value)


def test_parse_error_on_missing_semicolon():
    with pytest.raises(ParseError):
        parse_program("const int X = 3")


def test_parse_error_on_unclosed_block():
    with pytest.raises(ParseError):
        parse_program("event e(); handle e() { drop();")


def test_parser_spans_cover_declarations():
    program = parse_program(FULL_PROGRAM, name="prog.lucid")
    handler = program.handlers()[0]
    assert handler.span.source.name == "prog.lucid"
    assert "handle pkt" in handler.span.text
