"""Tests for the scenario engine: topology generators, per-switch group
binding, the streaming network drain, link failures, ``Network.reset``, the
invariant machinery, the bundled scenario catalogue (on both engines), and
the CLI.
"""

import itertools

import pytest

from repro.frontend import check_program
from repro.interp import EventInstance, Network
from repro.scenarios import (
    SCENARIOS,
    fat_tree,
    invariant_names,
    leaf_spine,
    line,
    make_invariant,
    network_array_digest,
    ring,
    run_scenario,
    run_scenario_both,
    single_switch,
)
from repro.scenarios import traffic as tm
from repro.scenarios.__main__ import main as cli_main
from repro.apps import ALL_APPLICATIONS


# ---------------------------------------------------------------------------
# topology generators
# ---------------------------------------------------------------------------
class TestTopologies:
    def test_line(self):
        topo = line(4)
        assert topo.num_switches == 4
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(1) == [0, 2]
        assert topo.neighbors(3) == [2]

    def test_ring(self):
        topo = ring(5)
        assert topo.num_switches == 5
        for sid in range(5):
            assert len(topo.neighbors(sid)) == 2
        assert topo.neighbors(0) == [1, 4]

    def test_leaf_spine(self):
        topo = leaf_spine(4, 2)
        assert topo.num_switches == 6
        assert topo.edge == [0, 1, 2, 3]
        for leaf in range(4):
            assert topo.neighbors(leaf) == [4, 5]
        for spine in (4, 5):
            assert topo.neighbors(spine) == [0, 1, 2, 3]

    def test_fat_tree_k4_shape(self):
        topo = fat_tree(4)
        # k=4: 8 edge + 8 aggregation + 4 core switches
        assert topo.num_switches == 20
        assert topo.edge == list(range(8))
        for edge_sw in range(8):
            assert len(topo.neighbors(edge_sw)) == 2  # k/2 uplinks
        for agg in range(8, 16):
            assert len(topo.neighbors(agg)) == 4  # k/2 down + k/2 up
        for core in range(16, 20):
            assert len(topo.neighbors(core)) == 4  # one aggregation per pod

    def test_fat_tree_rejects_odd_arity(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_fat_tree_all_pairs_reachable(self):
        topo = fat_tree(4)
        hops = topo.hop_distances_from(0)
        assert len(hops) == topo.num_switches
        # same pod through aggregation: 2 hops; across pods through core: 4
        assert hops[1] == 2
        assert max(hops.values()) == 4

    def test_shortest_path_ports_decrease_distance(self):
        topo = leaf_spine(3, 2)
        ports = topo.shortest_path_ports()
        for (node, dst), hop in ports.items():
            assert hop in topo.neighbors(node)
            dist = topo.distances_from(dst)
            assert dist[hop] < dist[node]

    def test_line_port_map(self):
        topo = line(4)
        ports = topo.shortest_path_ports()
        assert ports[(0, 3)] == 1
        assert ports[(3, 0)] == 2
        assert ports[(1, 0)] == 0


# ---------------------------------------------------------------------------
# per-switch group binding
# ---------------------------------------------------------------------------
GROUP_PROGRAM = """
const group NEIGHBORS = {1, 2, 3};
event ping();
event pong(int sender_id);
handle ping() {
  mgenerate Event.locate(pong(SELF), NEIGHBORS);
}
handle pong(int sender_id) {
  printf(sender_id);
}
"""


class TestGroupBindings:
    def test_check_program_accepts_group_bindings(self):
        checked = check_program(GROUP_PROGRAM, group_bindings={"NEIGHBORS": [5, 9]})
        assert checked.info.consts.groups["NEIGHBORS"] == [5, 9]

    def test_default_literal_still_used(self):
        checked = check_program(GROUP_PROGRAM)
        assert checked.info.consts.groups["NEIGHBORS"] == [1, 2, 3]

    def test_build_network_binds_neighbor_groups_per_switch(self):
        topo = line(3)
        network = topo.build_network(GROUP_PROGRAM)
        assert network.switch(0).runtime.info.consts.groups["NEIGHBORS"] == [1]
        assert network.switch(1).runtime.info.consts.groups["NEIGHBORS"] == [0, 2]
        assert network.switch(2).runtime.info.consts.groups["NEIGHBORS"] == [1]

    def test_bound_groups_drive_multicast(self):
        topo = line(3)
        network = topo.build_network(GROUP_PROGRAM)
        network.inject(1, EventInstance("ping", ()))
        network.run()
        # switch 1 pinged its topological neighbours 0 and 2: each of them
        # handled a pong naming the sender
        assert network.switch(1).stats.remote_sends == 2
        assert network.switch(0).log == ["1"]
        assert network.switch(2).log == ["1"]


# ---------------------------------------------------------------------------
# streaming drain
# ---------------------------------------------------------------------------
COUNTER_PROGRAM = """
global total = new Array<<32>>(4);
memop plus(int stored, int x) { return stored + x; }
event bump(int x);
handle bump(int x) { Array.set(total, 0, plus, x); }
"""


def _bump_stream(count, gap_ns=10):
    for i in range(count):
        yield (i * gap_ns, 0, EventInstance("bump", (1,)))


class TestStreamingRun:
    def test_streaming_matches_materialised_injection(self):
        app = ALL_APPLICATIONS["CM"]
        events = [
            (i * 100, 0, EventInstance("pkt", (i % 7, (i * 3) % 11)))
            for i in range(500)
        ]
        checked = check_program(app.source, name="CM")

        streamed = Network()
        streamed.trace_enabled = False
        streamed.add_switch(0, checked)
        handled_streaming = streamed.run(source=iter(events))

        materialised = Network()
        materialised.trace_enabled = False
        materialised.add_switch(0, checked)
        for t, sid, event in events:
            materialised.inject(sid, event, at_ns=t)
        handled_materialised = materialised.run()

        assert handled_streaming == handled_materialised == 500
        assert network_array_digest(streamed) == network_array_digest(materialised)
        assert streamed.switch(0).stats == materialised.switch(0).stats

    def test_streaming_queue_stays_bounded(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        peak = 0

        def tracking_stream(count):
            nonlocal peak
            for item in _bump_stream(count):
                peak = max(peak, network.pending_events())
                yield item

        network.run(source=tracking_stream(20_000))
        assert network.switch(0).array("total").cells[0] == 20_000
        # the merge holds at most a handful of events, never the whole stream
        assert peak <= 4

    def test_streaming_respects_max_events(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        handled = network.run(source=_bump_stream(100), max_events=30)
        assert handled == 30

    def test_streaming_control_actions_run_at_their_time(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        seen = []

        def action(net):
            seen.append((net.now_ns, net.switch(0).array("total").cells[0]))

        source = itertools.chain(
            _bump_stream(10),  # t = 0..90
            [tm.control_action(95, action)],
            ((100 + i * 10, 0, EventInstance("bump", (1,))) for i in range(5)),
        )
        network.run(source=source)
        assert seen == [(95, 10)]
        assert network.switch(0).array("total").cells[0] == 15

    def test_streaming_with_tracing_enabled_records_entries(self):
        network = Network()
        network.add_switch(0, COUNTER_PROGRAM)
        network.run(source=_bump_stream(5))
        assert len(network.trace) == 5
        assert [t.event.name for t in network.trace] == ["bump"] * 5

    def test_empty_source_drains_queued_events_like_plain_run(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        network.inject(0, EventInstance("bump", (1,)), at_ns=10)
        network.inject(0, EventInstance("bump", (1,)), at_ns=20)
        handled = network.run(source=iter([]))
        assert handled == 2
        assert network.pending_events() == 0
        assert network.switch(0).array("total").cells[0] == 2


# ---------------------------------------------------------------------------
# traffic model combinators
# ---------------------------------------------------------------------------
class TestTrafficModels:
    def test_diurnal_ramp_preserves_order_and_sequence(self):
        inner = tm.ZipfPacketTraffic(event_name="pkt", hosts=64)
        ramp = tm.DiurnalRampTraffic(inner=inner, period_ns=1_000_000, depth=0.9)
        items = list(ramp.events([0], 2_000, seed=4))
        times = [t for t, _, _ in items]
        assert times == sorted(times)
        # the warp stretches time, never the event sequence itself
        plain = list(tm.ZipfPacketTraffic(event_name="pkt", hosts=64).events([0], 2_000, seed=4))
        assert [e for _, _, e in items] == [e for _, _, e in plain]

    def test_diurnal_ramp_rejects_non_monotone_depth(self):
        ramp = tm.DiurnalRampTraffic(inner=tm.ZipfPacketTraffic(), depth=1.5)
        with pytest.raises(ValueError):
            next(ramp.events([0], 1, seed=1))

    def test_event_mix_round_robins_templates(self):
        mix = tm.EventMixTraffic(
            templates=[("bump", [4]), ("bump", [2])], mean_gap_ns=100
        )
        items = list(mix.events([0], 40, seed=6))
        assert len(items) == 40
        times = [t for t, _, _ in items]
        assert times == sorted(times)
        assert all(event.name == "bump" and event.args[0] < 4 for _, _, event in items)

    def test_link_failure_actions_fail_and_recover(self):
        from repro.workloads import LinkFailure

        network = Network()
        network.trace_enabled = False
        network.add_switch(0, REMOTE_PROGRAM)
        network.add_switch(1, REMOTE_PROGRAM)
        network.add_link(0, 1)
        observed = []
        actions = tm.link_failure_actions(
            [LinkFailure(link=(0, 1), fail_at_ns=100, recover_at_ns=300)],
            on_fail=lambda net, f: observed.append(("down", net.now_ns, f.link)),
            on_recover=lambda net, f: observed.append(("up", net.now_ns, f.link)),
        )
        pings = [
            (50, 0, EventInstance("ping", ())),    # link up: delivered
            (150, 0, EventInstance("ping", ())),   # link down: dropped
            (350, 0, EventInstance("ping", ())),   # recovered: delivered
        ]
        network.run(source=tm.merge(iter(pings), actions))
        network.run()  # drain the in-flight pongs (due after the last source item)
        assert observed == [("down", 100, (0, 1)), ("up", 300, (0, 1))]
        assert network.switch(0).stats.link_drops == 1
        assert network.switch(1).log == ["1", "1"]


# ---------------------------------------------------------------------------
# link failures
# ---------------------------------------------------------------------------
REMOTE_PROGRAM = """
event ping();
event pong();
handle ping() {
  generate Event.locate(pong(), 1);
}
handle pong() {
  printf(1);
}
"""


class TestLinkFailureSimulation:
    def _network(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, REMOTE_PROGRAM)
        network.add_switch(1, REMOTE_PROGRAM)
        network.add_link(0, 1)
        return network

    def test_events_cross_live_links(self):
        network = self._network()
        network.inject(0, EventInstance("ping", ()))
        network.run()
        assert network.switch(1).log == ["1"]
        assert network.switch(0).stats.link_drops == 0

    def test_failed_link_drops_remote_events(self):
        network = self._network()
        network.fail_link(0, 1)
        network.inject(0, EventInstance("ping", ()))
        network.run()
        assert network.switch(1).log == []
        assert network.switch(0).stats.link_drops == 1
        assert network.total_stats().link_drops == 1

    def test_restore_link_resumes_delivery(self):
        network = self._network()
        network.fail_link(0, 1)
        assert network.link_is_down(1, 0)
        network.restore_link(0, 1)
        network.inject(0, EventInstance("ping", ()))
        network.run()
        assert network.switch(1).log == ["1"]

    def test_overlapping_failures_keep_link_down_until_all_recover(self):
        network = self._network()
        network.fail_link(0, 1)  # failure A
        network.fail_link(0, 1)  # overlapping failure B
        network.restore_link(0, 1)  # A recovers first
        assert network.link_is_down(0, 1)  # B still active
        network.restore_link(0, 1)
        assert not network.link_is_down(0, 1)
        # an extra restore of a healthy link is a no-op
        network.restore_link(0, 1)
        assert not network.link_is_down(0, 1)


# ---------------------------------------------------------------------------
# Network.reset
# ---------------------------------------------------------------------------
class TestNetworkReset:
    def _run_once(self, network):
        for i in range(50):
            network.inject(0, EventInstance("bump", (1,)), at_ns=i * 10)
        network.run()

    def test_reset_restores_fresh_state(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        self._run_once(network)
        first_stats = network.switch(0).stats
        first_digest = network_array_digest(network)
        assert network.switch(0).array("total").cells[0] == 50

        network.reset()
        assert network.now_ns == 0
        assert network.pending_events() == 0
        assert network.switch(0).array("total").cells[0] == 0
        assert network.switch(0).array("total").reads == 0

        self._run_once(network)
        assert network.switch(0).stats == first_stats
        assert network_array_digest(network) == first_digest

    def test_without_reset_runs_accumulate(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        self._run_once(network)
        self._run_once(network)
        # documented accumulate semantics: state and stats carry over
        assert network.switch(0).array("total").cells[0] == 100
        assert network.switch(0).stats.events_handled == 100

    def test_reset_works_on_both_engines(self):
        for fast_path in (True, False):
            network = Network(engine="compiled" if fast_path else "reference")
            network.trace_enabled = False
            network.add_switch(0, COUNTER_PROGRAM)
            self._run_once(network)
            network.reset()
            self._run_once(network)
            assert network.switch(0).array("total").cells[0] == 50

    def test_reset_keeping_arrays(self):
        network = Network()
        network.trace_enabled = False
        network.add_switch(0, COUNTER_PROGRAM)
        self._run_once(network)
        network.reset(arrays=False)
        assert network.switch(0).array("total").cells[0] == 50
        assert network.switch(0).stats.events_handled == 0


# ---------------------------------------------------------------------------
# invariant machinery
# ---------------------------------------------------------------------------
class TestInvariantRegistry:
    def test_every_registered_name_instantiates(self):
        for name in invariant_names():
            inv = make_invariant(name)
            assert inv.name == name or inv.name  # fresh instance with a name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_invariant("no-such-invariant")

    def test_fresh_instance_per_call(self):
        assert make_invariant("nat-bijective") is not make_invariant("nat-bijective")

    def test_every_application_declares_resolvable_invariants(self):
        for app in ALL_APPLICATIONS.values():
            instances = app.make_invariants()
            assert len(instances) == len(app.invariants)


# ---------------------------------------------------------------------------
# the bundled scenarios
# ---------------------------------------------------------------------------
#: events per scenario for the differential smoke run: enough to make the
#: invariants non-vacuous, small enough to keep the suite fast
SMOKE_EVENTS = {
    "heavy-hitter-single": 2_000,
    "heavy-hitter-fattree": 2_000,
    "heavy-hitter-fattree8": 2_000,
    "sfw-scan-burst": 1_500,
    "sfw-install-latency": 1_000,
    "dns-reflection": 1_500,
    "nat-churn": 1_500,
    "rip-line-convergence": 800,
    "reroute-leafspine-linkfail": 1_200,
    "sro-replicated-writes": 1_000,
    "dfw-ring-roaming": 1_200,
}


def test_every_scenario_is_covered_by_the_smoke_table():
    assert set(SMOKE_EVENTS) == set(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_holds_and_engines_agree(name):
    """Every bundled scenario passes its invariants, and the compiled and
    reference engines produce identical verdicts and final array states."""
    fast, reference = run_scenario_both(SCENARIOS[name], SMOKE_EVENTS[name], seed=1)
    assert fast.ok, [r for r in fast.invariants if not r.ok]
    assert reference.ok
    assert fast.engine == "compiled" and reference.engine == "reference"
    assert fast.events_injected == reference.events_injected
    assert fast.array_digest == reference.array_digest


def test_scenario_results_are_seed_deterministic():
    a = run_scenario(SCENARIOS["nat-churn"], 800, seed=5)
    b = run_scenario(SCENARIOS["nat-churn"], 800, seed=5)
    assert a.array_digest == b.array_digest
    assert a.events_injected == b.events_injected


def test_scenario_traffic_factories_are_lazy():
    """Traffic models must stream: the factory returns an iterator, never a
    materialised list."""
    for name, scenario in SCENARIOS.items():
        setup = scenario.build(10**9, 1)
        source = setup.traffic()
        assert not isinstance(source, (list, tuple)), name
        first = list(itertools.islice(iter(source), 3))
        assert len(first) == 3, name


def test_scan_burst_is_detected_as_unsolicited():
    """The firewall invariant actually fires: feed the scan straight into a
    permissive program that forwards everything to the trusted port."""
    permissive = """
    event pkt_out(int src, int dst);
    event pkt_in(int src, int dst);
    handle pkt_out(int src, int dst) { forward(2); }
    handle pkt_in(int src, int dst) { forward(1); }
    """
    topo = single_switch()
    network = topo.build_network(permissive)
    inv = make_invariant("firewall-solicited-only")
    inv.reset(network, topo)
    network.trace_enabled = False
    network.on_handle = inv.on_handle
    scan = tm.ScanBurstTraffic()
    network.run(source=scan.events([0], 50, seed=2))
    violations = inv.check(network)
    assert violations, "permissive firewall must violate solicited-only"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_run_unknown_scenario(self, capsys):
        assert cli_main(["run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_run_both_engines(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        code = cli_main(
            ["run", "nat-churn", "--events", "600", "--both", "--quiet",
             "--json", str(json_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engines agree" in out
        import json as json_module

        payload = json_module.loads(json_path.read_text())
        assert isinstance(payload, list) and len(payload) == 2
        assert payload[0]["engine"] == "compiled"
        assert payload[0]["ok"] is True
        assert payload[0]["array_digest"] == payload[1]["array_digest"]

    def test_run_reference_engine(self, capsys):
        code = cli_main(["run", "heavy-hitter-single", "--events", "500", "--reference"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[reference]" in out
