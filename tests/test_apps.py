"""Tests for the ten Figure 9 applications: they compile, fit sensible layouts,
and behave correctly when executed in the interpreter."""

import pytest

from repro.apps import ALL_APPLICATIONS
from repro.apps.stateful_firewall import FirewallExperiment
from repro.core import EventInstance, Network, single_switch_network
from repro.workloads import FlowWorkload

APP_KEYS = list(ALL_APPLICATIONS)


@pytest.fixture(scope="module")
def compiled_apps():
    return {key: app.compile() for key, app in ALL_APPLICATIONS.items()}


# ---------------------------------------------------------------------------
# compilation properties (Figure 9 shape)
# ---------------------------------------------------------------------------
def test_all_ten_applications_present():
    assert set(APP_KEYS) == {
        "SFW", "RR", "DNS", "*Flow", "SRO", "DFW", "DFW(a)", "RIP", "NAT", "CM",
    }


@pytest.mark.parametrize("key", APP_KEYS)
def test_application_compiles(compiled_apps, key):
    compiled = compiled_apps[key]
    assert compiled.stages() > 0
    assert compiled.layout.total_atomic_tables() > 0


@pytest.mark.parametrize("key", APP_KEYS)
def test_lucid_is_much_shorter_than_p4(compiled_apps, key):
    compiled = compiled_apps[key]
    ratio = compiled.naive_p4_loc() / compiled.lucid_loc()
    assert ratio >= 5, f"{key}: expected >=5x P4 expansion, got {ratio:.1f}"


@pytest.mark.parametrize("key", APP_KEYS)
def test_optimisation_never_increases_stages(compiled_apps, key):
    compiled = compiled_apps[key]
    assert compiled.stages() <= compiled.unoptimized_stages()


@pytest.mark.parametrize("key", APP_KEYS)
def test_every_handler_has_an_event(compiled_apps, key):
    info = compiled_apps[key].checked.info
    assert set(info.handlers) <= set(info.events)


@pytest.mark.parametrize("key", APP_KEYS)
def test_generated_p4_mentions_every_global(compiled_apps, key):
    compiled = compiled_apps[key]
    text = compiled.p4.full_text()
    for name in compiled.checked.info.globals:
        assert f"reg_{name}" in text


def test_stage_counts_are_in_the_papers_ballpark(compiled_apps):
    stages = [c.stages() for c in compiled_apps.values()]
    assert min(stages) >= 2
    assert max(stages) <= 16  # the paper's apps use 5-12 Tofino stages


def test_control_events_exist_in_every_app(compiled_apps):
    # every application has at least one handler that generates an event
    for key, compiled in compiled_apps.items():
        generates = [g for h in compiled.normalized.values() for g in h.generates()]
        assert generates, f"{key} has no control events"


# ---------------------------------------------------------------------------
# stateful firewall behaviour
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def firewall_network():
    from repro.apps.stateful_firewall import SOURCE
    from repro.frontend import check_program

    return single_switch_network(check_program(SOURCE, name="SFW"))


def test_firewall_blocks_unsolicited_inbound(firewall_network):
    network, switch = firewall_network
    before = switch.stats.drops
    network.inject(0, EventInstance("pkt_in", (999, 1)))
    network.run()
    assert switch.stats.drops == before + 1


def test_firewall_allows_return_traffic_after_outbound():
    from repro.apps.stateful_firewall import SOURCE
    from repro.frontend import check_program

    network, switch = single_switch_network(check_program(SOURCE, name="SFW"))
    network.inject(0, EventInstance("pkt_out", (10, 20)), at_ns=0)
    network.run()
    network.inject(0, EventInstance("pkt_in", (20, 10)), at_ns=1_000_000)
    network.run()
    inbound = [t for t in network.trace if t.event.name == "pkt_in"][0]
    assert not inbound.result.dropped
    assert inbound.result.forwarded_port == 1  # TRUSTED_PORT


def test_firewall_install_latency_distribution():
    experiment = FirewallExperiment(table_slots=1024)
    workload = FlowWorkload.generate(num_flows=200, flow_rate_per_s=50_000, seed=5)
    data_plane = experiment.run_data_plane(workload)
    remote = experiment.run_remote_control(workload)
    dp_mean = sum(m.latency_ns for m in data_plane) / len(data_plane)
    rc_mean = sum(m.latency_ns for m in remote) / len(remote)
    assert dp_mean < 1_000  # nanoseconds
    assert rc_mean >= 12_000  # the Mantis lower bound
    assert rc_mean / max(dp_mean, 1) > 100  # the paper reports >300x


def test_firewall_timeout_scan_evicts_idle_flows():
    from repro.apps.stateful_firewall import SOURCE
    from repro.frontend import check_program

    network, switch = single_switch_network(check_program(SOURCE, name="SFW"))
    # inject at a non-zero time so the stored timestamp is distinguishable
    # from an empty slot
    network.inject(0, EventInstance("pkt_out", (1, 2)), at_ns=1_000)
    network.run()
    installed = switch.array("keys1").nonzero_entries() + switch.array("keys2").nonzero_entries()
    assert installed == 1
    # run the scan long after the timeout (100 ms); it should evict the entry
    network.inject(0, EventInstance("scan_timeouts", (0,)), at_ns=200_000_000)
    network.run(until_ns=400_000_000)
    remaining = switch.array("keys1").nonzero_entries() + switch.array("keys2").nonzero_entries()
    assert remaining == 0


# ---------------------------------------------------------------------------
# distributed applications
# ---------------------------------------------------------------------------
def test_dfw_synchronises_across_borders():
    compiled = ALL_APPLICATIONS["DFW"].compile()
    network = Network()
    for sid in (1, 2, 3):
        network.add_switch(sid, compiled.checked)
    network.inject(1, EventInstance("pkt_out", (5, 6)))
    network.run()
    # every border switch now has the flow marked in both filters
    for sid in (1, 2, 3):
        assert network.switch(sid).array("bloom_a").nonzero_entries() == 1
        assert network.switch(sid).array("bloom_b").nonzero_entries() == 1


def test_rip_converges_to_shortest_path():
    compiled = ALL_APPLICATIONS["RIP"].compile()
    network = Network()
    for sid in (0, 1, 2, 3):
        network.add_switch(sid, compiled.checked)
    # switch 3 is the destination (distance 0); others start at infinity
    for sid in (0, 1, 2):
        network.switch(sid).array("dist").set(0, value=1_048_576)
    network.switch(3).array("dist").set(0, value=0)
    # neighbour relationships are encoded by each switch advertising to all,
    # so just run a few advertisement rounds from every switch
    for round_start in (0, 3_000_000, 6_000_000):
        for sid in (0, 1, 2, 3):
            network.inject(sid, EventInstance("advertise", (3, 0)), at_ns=round_start)
    network.run(until_ns=10_000_000)
    assert network.switch(0).array("dist").get(0) == 1
    assert network.switch(0).array("nexthop").get(0) == 3


def test_sro_applies_writes_in_sequence_order():
    compiled = ALL_APPLICATIONS["SRO"].compile()
    network = Network()
    for sid in (0, 1, 2):
        network.add_switch(sid, compiled.checked)
    network.inject(0, EventInstance("write_req", (3, 111)), at_ns=0)
    network.inject(0, EventInstance("write_req", (3, 222)), at_ns=10)
    network.run()
    # both replicas hold the value of the later (higher-sequence) write
    for sid in (0, 1, 2):
        assert network.switch(sid).array("values").get(3) == 222
        assert network.switch(sid).array("seqs").get(3) == 2


def test_nat_allocates_unique_ports_per_flow():
    compiled = ALL_APPLICATIONS["NAT"].compile()
    network, switch = single_switch_network(compiled.checked)
    network.inject(0, EventInstance("pkt_internal", (1, 100)), at_ns=0)
    network.inject(0, EventInstance("pkt_internal", (2, 100)), at_ns=1000)
    network.run(until_ns=5_000_000)
    ports = [p for p in switch.array("map_port").snapshot() if p]
    assert len(ports) == 2 and len(set(ports)) == 2
    assert all(p > 1024 for p in ports)


def test_countmin_estimates_and_exports():
    compiled = ALL_APPLICATIONS["CM"].compile()
    network = Network()
    network.add_switch(0, compiled.checked)
    network.add_switch(9, compiled.checked)  # the collector
    for _ in range(10):
        network.inject(0, EventInstance("pkt", (1, 2)))
    network.inject(0, EventInstance("query", (1, 2, 9)), at_ns=1_000_000)
    network.run()
    query_trace = [t for t in network.trace if t.event.name == "query_reply"]
    assert query_trace and query_trace[0].event.args[0] >= 10


def test_starflow_evicts_batches_to_collector():
    compiled = ALL_APPLICATIONS["*Flow"].compile()
    network = Network()
    network.add_switch(0, compiled.checked)
    network.add_switch(9, compiled.checked)
    for i in range(9):  # BATCH_LIMIT is 8
        network.inject(0, EventInstance("pkt", (7, 8, 100)), at_ns=i * 1000)
    network.run()
    exports = [t for t in network.trace if t.event.name == "export_batch" and t.switch_id == 9]
    assert exports, "a full batch must be exported to the collector"


def test_dns_defense_blocks_reflection_attack():
    compiled = ALL_APPLICATIONS["DNS"].compile()
    network, switch = single_switch_network(compiled.checked)
    victim, server = 7, 3
    # unsolicited responses towards the victim, well past the threshold
    for i in range(150):
        network.inject(0, EventInstance("dns_response", (victim, server)), at_ns=i * 1000)
    network.run()
    assert switch.array("blocked").nonzero_entries() >= 1
    dropped = [t for t in network.trace if t.event.name == "dns_response" and t.result.dropped]
    assert dropped, "responses after blocking must be dropped"


def test_dns_defense_allows_solicited_responses():
    compiled = ALL_APPLICATIONS["DNS"].compile()
    network, switch = single_switch_network(compiled.checked)
    network.inject(0, EventInstance("dns_query", (1, 2)), at_ns=0)
    network.inject(0, EventInstance("dns_response", (1, 2)), at_ns=1000)
    network.run()
    response = [t for t in network.trace if t.event.name == "dns_response"][0]
    assert not response.result.dropped
    assert switch.array("cms0").nonzero_entries() == 0
