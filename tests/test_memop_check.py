"""Tests for the memop syntactic restrictions (Section 4.2, Appendix C)."""

import pytest

from repro.errors import MemopError
from repro.frontend import parse_program
from repro.frontend.memop_check import check_all_memops, check_memop


def memop_of(source):
    return parse_program(source).memops()[0]


def check(source):
    check_memop(memop_of(source))


# -- valid memops ------------------------------------------------------------
@pytest.mark.parametrize(
    "body",
    [
        "return stored + x;",
        "return stored - x;",
        "return stored & x;",
        "return stored | x;",
        "return stored ^ x;",
        "return x;",
        "return stored;",
        "return 7;",
        "if (stored == 0) { return x; } else { return stored; }",
        "if (stored < x) { return x; } else { return stored; }",
        "if (x > 10) { return 0; } else { return stored; }",
        "if (stored != x) { return x + 1; } else { return 0; }",
    ],
)
def test_valid_memops_accepted(body):
    check(f"memop m(int stored, int x) {{ {body} }}")


def test_paper_incr_memop_is_valid():
    check("memop incr(int stored, int added) { return stored + added; }")


# -- appendix C: the three invalid examples -----------------------------------
def test_compound_condition_rejected():
    with pytest.raises(MemopError, match="compound"):
        check(
            "memop compoundCondition(int memval, int y) {"
            "  if (memval == 1 || memval == 2) { return memval; } else { return y; }"
            "}"
        )


def test_three_parameters_rejected():
    with pytest.raises(MemopError, match="two parameters"):
        check(
            "memop twoLocalArgs(int memval, int y, int z) {"
            "  if (memval == 1) { return y; } else { return z; }"
            "}"
        )


def test_multiplication_rejected():
    with pytest.raises(MemopError, match="not supported"):
        check("memop multiply(int memval, int x) { return (10 * memval) + x; }")


def test_duplicate_parameter_names_rejected():
    # the second binding would shadow the stored value, making it inaccessible
    with pytest.raises(MemopError, match="same name"):
        check("memop dup(int x, int x) { return x + 1; }")


# -- other violations ----------------------------------------------------------
def test_variable_used_twice_in_expression_rejected():
    with pytest.raises(MemopError, match="once"):
        check("memop m(int stored, int x) { return stored + stored; }")


def test_two_statements_rejected():
    with pytest.raises(MemopError, match="single return"):
        check("memop m(int stored, int x) { int y = x; return y; }")


def test_missing_return_value_rejected():
    with pytest.raises(MemopError):
        check("memop m(int stored, int x) { return; }")


def test_nested_if_rejected():
    with pytest.raises(MemopError):
        check(
            "memop m(int stored, int x) {"
            "  if (stored == 0) { if (x == 1) { return 1; } else { return 2; } } else { return 0; }"
            "}"
        )


def test_deep_arithmetic_rejected():
    with pytest.raises(MemopError):
        check("memop m(int stored, int x) { return stored + x + 1 + 2; }")


def test_call_inside_memop_rejected():
    with pytest.raises(MemopError, match="calls"):
        check("memop m(int stored, int x) { return hash<<16>>(stored, x); }")


def test_division_rejected():
    with pytest.raises(MemopError, match="not supported"):
        check("memop m(int stored, int x) { return stored / x; }")


def test_non_int_parameter_rejected():
    with pytest.raises(MemopError):
        check("memop m(bool stored, int x) { return x; }")


def test_branch_with_two_returns_rejected():
    with pytest.raises(MemopError, match="exactly one return"):
        check(
            "memop m(int stored, int x) {"
            "  if (stored == 0) { return x; return stored; } else { return 0; }"
            "}"
        )


def test_error_message_points_at_source_line():
    with pytest.raises(MemopError) as err:
        check("memop m(int stored, int x) {\n  return stored * x;\n}")
    rendered = err.value.render()
    assert "-->" in rendered and "stored * x" in rendered


def test_check_all_memops_walks_every_declaration():
    source = (
        "memop ok(int a, int b) { return a + b; }\n"
        "memop bad(int a, int b) { return a * b; }\n"
    )
    with pytest.raises(MemopError):
        check_all_memops(parse_program(source))
