"""The observability layer: metrics registry, event-lifecycle tracing,
profiling hooks, and their CLI/telemetry integration.

The golden-trace test pins the exact Chrome trace-event JSON for a small
two-switch scenario and asserts all three engines reproduce it byte for
byte.  Regenerate the golden file after an intentional format change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs.py -k golden
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import pytest

from repro.frontend import check_program
from repro.interp import EventInstance, Network
from repro.interp.engine import ENGINE_NAMES
from repro.obs import (
    REGISTRY,
    HandlerProfiler,
    StageProfiler,
    Tracer,
    disable,
    enable,
    merge_stage_rows,
    parse_text_exposition,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.scenarios import SCENARIOS, run_scenario
from repro.scenarios.__main__ import main as cli_main
from repro.service.telemetry import TELEMETRY_SCHEMA_VERSION, TelemetryEmitter, to_schema_v1

GOLDEN = Path(__file__).parent / "golden" / "trace_small.json"
SCHEMA = Path(__file__).parent / "schemas" / "chrome_trace.schema.json"

# Two switches relaying an event back and forth: covers all three hop kinds
# (inject, recirc via Event.delay, link via Event.locate) and nested control
# flow, and compiles through all three engines.
RELAY2 = """
global hits = new Array<<32>>(8);
memop plus(int stored, int x) { return stored + x; }
event pkt(int idx, int hops);
handle pkt(int idx, int hops) {
  Array.set(hits, idx, plus, 1);
  if (hops > 0) {
    if (idx == 0) {
      generate Event.delay(pkt(idx + 1, hops - 1), 500);
    } else {
      generate Event.locate(pkt(idx, hops - 1), (SELF + 1) % 2);
    }
  }
}
"""


def _traced_run(engine: str, seed: int = 7) -> Tracer:
    checked = check_program(RELAY2, name="relay2")
    network = Network(engine=engine)
    network.trace_enabled = False
    network.add_switch(0, checked)
    network.add_switch(1, checked)
    network.add_link(0, 1)
    tracer = Tracer(seed=seed)
    network.tracer = tracer
    network.inject(0, EventInstance("pkt", (0, 5)), at_ns=0)
    network.inject(1, EventInstance("pkt", (1, 3)), at_ns=1000)
    network.run()
    return tracer


@pytest.fixture
def global_metrics():
    """Enable the process-global registry for one test, zeroed both ways."""
    REGISTRY.reset()
    enable()
    yield REGISTRY
    disable()
    REGISTRY.reset()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("c_total", "a counter")
    c.inc()
    c.add(4)
    assert c.value == 5
    g = reg.gauge("g", "a gauge")
    g.set(10)
    g.inc(2)
    g.dec()
    g.set_max(5)   # below current value: no-op
    g.set_max(99)
    assert g.value == 99
    h = reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 3 and h.sum == pytest.approx(5.55)


def test_disabled_registry_records_nothing():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("c_total")
    g = reg.gauge("g")
    h = reg.histogram("h", buckets=(1.0,))
    c.inc()
    g.set(7)
    h.observe(0.5)
    assert c.value == 0 and g.value == 0 and h.count == 0
    reg.enable()
    c.inc()
    assert c.value == 1


def test_registration_is_idempotent_and_kind_checked():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("repro_x_total", "help")
    b = reg.counter("repro_x_total")
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total")
    lbl = reg.counter("repro_y_total", "help", labelnames=("event",))
    with pytest.raises(ValueError):
        reg.counter("repro_y_total", labelnames=("engine",))
    lbl.labels("pkt").inc(3)
    assert reg.value("repro_y_total", labels=("pkt",)) == 3


def test_render_text_parse_round_trip():
    reg = MetricsRegistry(enabled=True)
    reg.counter("repro_a_total", "events", labelnames=("event",)).labels("pkt").inc(12)
    reg.gauge("repro_b", "depth").set(3)
    h = reg.histogram("repro_c_seconds", "latency", buckets=(0.001, 0.01))
    h.observe(0.002)
    h.observe(0.5)
    text = reg.render_text()
    assert "# TYPE repro_a_total counter" in text
    assert "# HELP repro_b depth" in text
    parsed = parse_text_exposition(text)
    assert parsed["repro_a_total"][(("event", "pkt"),)] == 12
    assert parsed["repro_b"][()] == 3
    assert parsed["repro_c_seconds_count"][()] == 2
    assert parsed["repro_c_seconds_bucket"][(("le", "0.01"),)] == 1
    assert parsed["repro_c_seconds_bucket"][(("le", "+Inf"),)] == 2


def test_network_hot_loop_metrics(global_metrics):
    checked = check_program(RELAY2, name="relay2")
    network = Network(engine="compiled")
    network.trace_enabled = False
    network.add_switch(0, checked)
    network.add_switch(1, checked)
    network.add_link(0, 1)
    network.inject(0, EventInstance("pkt", (0, 5)), at_ns=0)
    network.run()
    totals = network.total_stats()
    assert REGISTRY.value("repro_network_events_handled_total",
                          labels=("pkt",)) == totals.events_handled
    assert REGISTRY.value("repro_network_events_generated_total") == totals.events_generated
    assert REGISTRY.value("repro_network_remote_sends_total") == totals.remote_sends
    assert REGISTRY.value("repro_engine_compiled_events_total") == totals.events_handled
    # text exposition covers the scheduler metrics
    parsed = parse_text_exposition(REGISTRY.render_text())
    assert parsed["repro_network_events_handled_total"][(("event", "pkt"),)] \
        == totals.events_handled


def test_metrics_disabled_by_default_after_scenario():
    REGISTRY.reset()
    result = run_scenario(SCENARIOS["heavy-hitter-single"], 200, seed=1)
    assert result.ok
    assert REGISTRY.value("repro_network_events_generated_total") == 0


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
def test_trace_byte_identical_across_engines():
    blobs = {eng: _traced_run(eng).to_json_bytes() for eng in ENGINE_NAMES}
    assert len(set(blobs.values())) == 1, "engines disagree on the trace"


def test_trace_matches_golden_file():
    payload = _traced_run(ENGINE_NAMES[0]).to_json_bytes() + b"\n"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN.write_bytes(payload)
    assert GOLDEN.read_bytes() == payload, (
        "trace format drifted from tests/golden/trace_small.json; if the "
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_span_tree_and_hops():
    tracer = _traced_run("compiled")
    spans = tracer.spans
    assert len(spans) == 10
    hops = [s.hop for s in spans]
    assert hops.count("inject") == 2
    assert "recirc" in hops and "link" in hops
    # span ids embed the seed and are dispatch-ordinal unique
    assert all(s.span_id >> 48 == 7 for s in spans)
    assert len({s.span_id for s in spans}) == len(spans)
    roots = tracer.span_tree()
    assert len(roots) == 2

    def count(node):
        return 1 + sum(count(c) for c in node["children"])

    assert sum(count(r) for r in roots) == len(spans)


def test_validate_chrome_trace_accepts_and_rejects():
    doc = _traced_run("reference").chrome_trace()
    counts = validate_chrome_trace(doc)
    assert counts["M"] == 2 and counts["X"] == 10
    assert counts["s"] == counts["f"] == 8
    broken = json.loads(json.dumps(doc))
    broken["traceEvents"][2]["ph"] = "Q"
    with pytest.raises(ValueError):
        validate_chrome_trace(broken)
    truncated = json.loads(json.dumps(doc))
    truncated["traceEvents"] = [
        ev for ev in truncated["traceEvents"] if ev["ph"] != "f"
    ]
    with pytest.raises(ValueError):
        validate_chrome_trace(truncated)


def test_trace_validates_against_json_schema():
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA.read_text())
    doc = _traced_run("pisa").chrome_trace()
    jsonschema.validate(json.loads(json.dumps(doc)), schema)


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------
def test_handler_profiler_top_and_report():
    prof = HandlerProfiler()
    for _ in range(3):
        prof.record("pkt", 0.002, 600)
    prof.record("tick", 0.010, 600)
    rows = prof.top(10)
    assert [r["handler"] for r in rows] == ["tick", "pkt"]
    assert rows[0]["wall_share"] == pytest.approx(0.625, abs=1e-3)
    assert rows[1]["calls"] == 3 and rows[1]["sim_ns"] == 1800
    assert "tick" in prof.format_report()


def test_stage_profiler_merge():
    a = StageProfiler(3)
    a.record(0, 2, 0.001)
    a.record(1, 1, 0.002)
    b = StageProfiler(3)
    b.record(0, 1, 0.004)
    merged = merge_stage_rows([a, None, b])
    assert merged[0]["events"] == 2 and merged[0]["tables_executed"] == 3
    assert merged[0]["wall_s"] == pytest.approx(0.005)
    assert merged[1]["events"] == 1


def test_scenario_profile_collection():
    result = run_scenario(SCENARIOS["heavy-hitter-single"], 300, seed=1,
                          engine="pisa", profile=True)
    assert result.ok
    hot = result.profile["hot_handlers"]
    assert hot and hot[0]["calls"] > 0
    stages = result.profile["stages"]
    assert stages and sum(r["events"] for r in stages) > 0
    assert "profile" in result.to_dict()


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
def test_cli_trace_all_engines(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    code = cli_main([
        "run", "heavy-hitter-single", "--events", "300", "--all-engines",
        "--trace", str(trace), "--profile",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "traces byte-identical across engines" in out
    payloads = set()
    for eng in ENGINE_NAMES:
        path = tmp_path / f"trace.{eng}.json"
        assert path.exists()
        payloads.add(path.read_bytes())
        validate_chrome_trace(json.loads(path.read_text()))
    assert len(payloads) == 1


def test_cli_metrics_exposition(capsys):
    code = cli_main([
        "run", "heavy-hitter-single", "--events", "200", "--metrics",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE repro_network_events_handled_total counter" in out
    assert not REGISTRY.state.enabled, "--metrics must disable obs on exit"


# ---------------------------------------------------------------------------
# telemetry v2 round-trip
# ---------------------------------------------------------------------------
def test_telemetry_render_text_round_trips_record():
    checked = check_program(RELAY2, name="relay2")
    network = Network(engine="pisa")
    network.trace_enabled = False
    network.add_switch(0, checked)
    network.add_switch(1, checked)
    network.add_link(0, 1)
    network.inject(0, EventInstance("pkt", (0, 5)), at_ns=0)
    network.run()
    out = io.StringIO()
    emitter = TelemetryEmitter(out, "relay2", "pisa", seed=7)
    record = emitter.emit(network, handled_total=10, injected_total=2)
    assert record["schema_version"] == TELEMETRY_SCHEMA_VERSION == 2
    parsed = parse_text_exposition(emitter.render_text())
    for key in ("sim_ns", "events_handled", "events_injected", "events_generated",
                "recirculations", "remote_sends", "queue_depth"):
        assert parsed[f"repro_telemetry_{key}"][()] == record[key], key
    v1 = to_schema_v1(record)
    assert v1["schema_version"] == 1 and "events_generated" not in v1
    assert v1["events_handled"] == record["events_handled"]


def test_telemetry_v1_compat_emitter():
    checked = check_program(RELAY2, name="relay2")
    network = Network(engine="compiled")
    network.add_switch(0, checked)
    network.inject(0, EventInstance("pkt", (0, 0)), at_ns=0)
    network.run()
    out = io.StringIO()
    emitter = TelemetryEmitter(out, "relay2", "compiled", seed=1, schema_version=1)
    record = emitter.emit(network, handled_total=1, injected_total=1)
    assert record["schema_version"] == 1
    assert "events_generated" not in record
    with pytest.raises(ValueError):
        TelemetryEmitter(out, "relay2", "compiled", seed=1, schema_version=3)


def test_telemetry_flush_batching():
    checked = check_program(RELAY2, name="relay2")
    network = Network(engine="compiled")
    network.add_switch(0, checked)
    network.inject(0, EventInstance("pkt", (0, 0)), at_ns=0)
    network.run()
    out = io.StringIO()
    emitter = TelemetryEmitter(out, "relay2", "compiled", seed=1, flush_every=3)
    emitter.emit(network, 1, 1)
    emitter.emit(network, 1, 1)
    assert out.getvalue() == "" and emitter.buffered_records == 2
    emitter.emit(network, 1, 1)
    assert emitter.buffered_records == 0
    assert len(out.getvalue().splitlines()) == 3
    emitter.emit(network, 1, 1)
    emitter.flush()
    assert len(out.getvalue().splitlines()) == 4
