"""Property-based tests of the Appendix A core calculus: progress and
preservation (soundness) of the ordered type-and-effect system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal import (
    App,
    Deref,
    Fun,
    GlobalVar,
    IntLit,
    Let,
    Plus,
    TInt,
    TypeCheckError,
    UnitLit,
    Update,
    Var,
    run,
    step,
    typecheck,
)
from repro.formal.calculus import State, StuckError, is_value

GLOBALS = [TInt(), TInt(), TInt()]  # three ordered Int globals g0, g1, g2


# ---------------------------------------------------------------------------
# hand-written examples
# ---------------------------------------------------------------------------
def test_in_order_reads_typecheck():
    expr = Plus(Deref(GlobalVar(0)), Deref(GlobalVar(1)))
    ty, stage = typecheck(expr, 0, {}, GLOBALS)
    assert isinstance(ty, TInt) and stage == 2


def test_out_of_order_reads_rejected():
    expr = Plus(Deref(GlobalVar(1)), Deref(GlobalVar(0)))
    with pytest.raises(TypeCheckError):
        typecheck(expr, 0, {}, GLOBALS)


def test_double_access_rejected():
    expr = Plus(Deref(GlobalVar(0)), Deref(GlobalVar(0)))
    with pytest.raises(TypeCheckError):
        typecheck(expr, 0, {}, GLOBALS)


def test_update_then_later_read_ok():
    expr = Let("_", Update(GlobalVar(0), IntLit(5)), Deref(GlobalVar(2)))
    ty, stage = typecheck(expr, 0, {}, GLOBALS)
    assert stage == 3


def test_function_effect_annotation_enforced():
    # a function that reads g0 must not be applied after g1 was read
    f = Fun("x", TInt(), 0, Plus(Var("x"), Deref(GlobalVar(0))))
    good = App(f, IntLit(1))
    assert typecheck(good, 0, {}, GLOBALS)[1] == 1
    bad = Let("a", Deref(GlobalVar(1)), App(f, Var("a")))
    with pytest.raises(TypeCheckError):
        typecheck(bad, 0, {}, GLOBALS)


def test_evaluation_of_well_typed_program():
    expr = Let("x", Deref(GlobalVar(0)), Plus(Var("x"), Deref(GlobalVar(1))))
    final = run(expr, store=[10, 20, 30])
    assert final.expr == IntLit(30)
    assert final.next_stage == 2


def test_update_writes_the_store():
    expr = Update(GlobalVar(1), Plus(IntLit(2), IntLit(3)))
    final = run(expr, store=[0, 0, 0])
    assert final.store == [0, 5, 0]
    assert final.expr == UnitLit()


def test_ill_typed_program_can_get_stuck():
    expr = Plus(Deref(GlobalVar(1)), Deref(GlobalVar(0)))
    with pytest.raises(StuckError):
        run(expr, store=[1, 2, 3])


# ---------------------------------------------------------------------------
# random well-typed program generation
# ---------------------------------------------------------------------------
def int_exprs(depth, stage_budget):
    """Generate expressions of type Int whose accesses start at or after
    ``stage_budget`` (so the whole program is well-typed from stage 0)."""
    leaf = st.integers(min_value=0, max_value=100).map(IntLit)
    if depth == 0:
        return leaf
    sub = int_exprs(depth - 1, stage_budget)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda lr: Plus(*lr)),
        st.tuples(st.sampled_from(["x", "y", "z"]), sub, sub).map(
            lambda t: Let(t[0], t[1], Plus(IntLit(1), t[2]))
        ),
    )


@st.composite
def well_typed_programs(draw):
    """A program that reads/writes the globals strictly in order, with pure
    integer arithmetic in between."""
    pieces = []
    for index in range(3):
        action = draw(st.sampled_from(["read", "write", "skip"]))
        if action == "read":
            pieces.append(Deref(GlobalVar(index)))
        elif action == "write":
            value = draw(int_exprs(1, index))
            pieces.append(Let("_", Update(GlobalVar(index), value), IntLit(index)))
    expr = draw(int_exprs(2, 0))
    # fold so that the access to g0 is evaluated first (outermost binding),
    # keeping the whole program well-ordered from stage 0
    for piece in reversed(pieces):
        expr = Let("tmp", piece, Plus(IntLit(1), expr))
    return expr


@settings(max_examples=150, deadline=None)
@given(well_typed_programs(), st.lists(st.integers(0, 1000), min_size=3, max_size=3))
def test_soundness_well_typed_programs_do_not_get_stuck(expr, store):
    """Progress + preservation: a well-typed program evaluates to a value."""
    ty, _ = typecheck(expr, 0, {}, GLOBALS)
    final = run(expr, store=store)
    assert is_value(final.expr)
    assert isinstance(ty, TInt) == isinstance(final.expr, IntLit)


@settings(max_examples=100, deadline=None)
@given(well_typed_programs(), st.lists(st.integers(0, 1000), min_size=3, max_size=3))
def test_preservation_every_intermediate_state_is_well_typed(expr, store):
    """Single-stepping a well-typed program keeps it well-typed (at a possibly
    later starting stage), mirroring the preservation proof of Appendix B."""
    typecheck(expr, 0, {}, GLOBALS)
    state = State(list(store), 0, expr)
    for _ in range(200):
        if is_value(state.expr):
            break
        state = step(state)
        # the remaining program must typecheck from the machine's current stage
        typecheck(state.expr, state.next_stage, {}, GLOBALS)
    assert is_value(state.expr)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=3, max_size=3))
def test_store_values_only_change_through_updates(store):
    expr = Let("_", Update(GlobalVar(0), IntLit(9)), Deref(GlobalVar(2)))
    final = run(expr, store=store)
    assert final.store[0] == 9
    assert final.store[1] == store[1] and final.store[2] == store[2]
