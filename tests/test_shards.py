"""Sharded multiprocess execution: partitioning, determinism parity, and the
cross-shard tie-break contract.

The load-bearing tests here are the parity checks: ``--shards N`` must be
byte-identical (array digests, per-switch stats, invariant verdicts) to the
single-process run on the same seed, including when simultaneous events
cross a shard boundary and when shards run different engines.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle

import pytest

from repro.errors import SimulationError
from repro.interp.events import EventInstance
from repro.interp.network import Network, SchedulerConfig, SwitchStats
from repro.scenarios import topology as topo
from repro.scenarios.registry import SCENARIOS, Scenario, get, register
from repro.scenarios.runner import ScenarioResult, ScenarioSetup, run_scenario
from repro.shard import partition_topology, run_sharded

#: the worker rebuilds its scenario from the registry; a scenario registered
#: by a test is only visible to children under the fork start method
fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="test-registered scenarios need fork-inherited registry state",
)


# ---------------------------------------------------------------------------
# partitioner
# ---------------------------------------------------------------------------
def test_partition_line_contiguous_fallback():
    plan = partition_topology(topo.line(6), 2)
    assert plan.shards == [[0, 1, 2], [3, 4, 5]]
    assert plan.owner[2] == 0 and plan.owner[3] == 1
    assert plan.cross_links == [(2, 3, 1_000)]
    # default config: 400 ns pipeline + min(1000 default, 1000 link)
    assert plan.lookahead_ns == 1_400


def test_partition_fat_tree_keeps_pods_whole():
    topology = topo.fat_tree(4)
    plan = partition_topology(topology, 4)
    assert topology.pods is not None and len(topology.pods) == 4
    for members in topology.pods:
        shards = {plan.shard_of(sid) for sid in members}
        assert len(shards) == 1, f"pod {members} split across {shards}"
    # switches in no pod (the cores) are round-robined by position
    cores = [s for s in range(topology.num_switches)
             if not any(s in p for p in topology.pods)]
    assert [plan.shard_of(s) for s in cores] == [i % 4 for i in range(len(cores))]
    assert sorted(sid for members in plan.shards for sid in members) == list(
        range(topology.num_switches)
    )


def test_partition_fat_tree_two_shards_chunks_pods():
    topology = topo.fat_tree(4)
    plan = partition_topology(topology, 2)
    # 4 pods over 2 shards: pods 0,1 -> shard 0; pods 2,3 -> shard 1
    for g, members in enumerate(topology.pods):
        for sid in members:
            assert plan.shard_of(sid) == g * 2 // 4


def test_partition_lookahead_uses_config_default():
    # declared links are slow, but the fabric is logically full-mesh at the
    # config default, so the default must bound the lookahead
    topology = topo.line(4, latency_ns=500_000)
    config = SchedulerConfig(link_latency_ns=700, pipeline_latency_ns=300)
    plan = partition_topology(topology, 2, config)
    assert plan.lookahead_ns == 1_000
    # and a declared cross-shard link faster than the default wins
    fast = SchedulerConfig(link_latency_ns=1_000_000, pipeline_latency_ns=300)
    assert partition_topology(topology, 2, fast).lookahead_ns == 500_300


def test_partition_rejects_bad_shard_counts():
    with pytest.raises(SimulationError):
        partition_topology(topo.line(4), 0)
    with pytest.raises(SimulationError):
        partition_topology(topo.line(4), 5)


# ---------------------------------------------------------------------------
# parity: sharded == single-process, byte for byte
# ---------------------------------------------------------------------------
def _norm_stats(stats):
    return {int(k): v for k, v in stats.items()}


def _assert_parity(single: ScenarioResult, sharded: ScenarioResult):
    assert sharded.array_digest == single.array_digest
    assert sharded.verdict_signature() == single.verdict_signature()
    assert _norm_stats(sharded.switch_stats) == _norm_stats(single.switch_stats)
    assert sharded.events_injected == single.events_injected
    assert sharded.events_handled == single.events_handled
    assert sharded.sim_ns == single.sim_ns


@fork_only
@pytest.mark.parametrize(
    "name,events,shards",
    [
        ("heavy-hitter-fattree", 2_000, 2),
        ("heavy-hitter-fattree8", 2_000, 4),
        ("rip-line-convergence", 400, 2),
        ("sro-replicated-writes", 800, 3),
        ("reroute-leafspine-linkfail", 1_200, 2),
    ],
)
def test_sharded_matches_single_process(name, events, shards):
    scenario = get(name)
    single = run_scenario(scenario, events, seed=7, engine="compiled")
    sharded = run_sharded(scenario, events, seed=7, num_shards=shards,
                          engine="compiled")
    _assert_parity(single, sharded)
    assert sharded.details["shards"]["num_shards"] == shards


@fork_only
def test_sharded_mixed_engines_match_single_process():
    scenario = get("heavy-hitter-fattree")
    single = run_scenario(scenario, 1_500, seed=3, engine="codegen")
    sharded = run_sharded(
        scenario, 1_500, seed=3, num_shards=4,
        engines=["codegen", "reference", "pisa", "compiled"],
    )
    assert sharded.verdict_signature() == single.verdict_signature()
    assert sharded.engine == "codegen,reference,pisa,compiled"
    assert sharded.details["shards"]["engines"] == [
        "codegen", "reference", "pisa", "compiled"
    ]


def test_one_shard_degenerates_to_plain_runner():
    scenario = get("heavy-hitter-single")
    single = run_scenario(scenario, 1_000, seed=5, engine="compiled")
    one = run_sharded(scenario, 1_000, seed=5, num_shards=1, engine="compiled")
    _assert_parity(single, one)
    assert "shards" not in one.details


def test_engines_list_must_match_shard_count():
    scenario = get("heavy-hitter-fattree")
    with pytest.raises(SimulationError):
        run_sharded(scenario, 100, seed=1, num_shards=2, engines=["compiled"])


# ---------------------------------------------------------------------------
# tie-break order across a shard boundary (the determinism keystone)
# ---------------------------------------------------------------------------
# Every round, switches inject ``ping`` at the *same* timestamp; each ping
# claims the round locally and generates a ``mark`` timed to land exactly on
# the next round's timestamp at a peer across the shard boundary.  The first
# claimer of a round wins (RIP-style first-writer-wins), so the final array
# state encodes the dispatch order of every timestamp collision:
#   * external ping vs arriving marks (source must beat the heap), and
#   * marks from different origin switches (content-derived key order),
# including rounds where the middle switch stays silent so only the two
# cross-boundary marks contend.
_TIEBREAK_APP = """
global cur = new Array<<32>>(1);
global wins = new Array<<32>>(3);
global lastw = new Array<<32>>(1);

memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }
memop bump(int stored, int newval) { return stored + newval; }
memop max_update(int stored, int candidate) {
  if (candidate > stored) { return candidate; } else { return stored; }
}

event ping(int r, int me, int peer);
event mark(int r, int sender);

handle ping(int r, int me, int peer) {
  int seen = Array.update(cur, 0, keep, 0, max_update, r);
  if (r > seen) {
    Array.set(wins, me, bump, 1);
    Array.set(lastw, 0, overwrite, me + r * 8);
  }
  generate Event.locate(mark(r + 1, me), peer);
}

handle mark(int r, int sender) {
  int seen = Array.update(cur, 0, keep, 0, max_update, r);
  if (r > seen) {
    Array.set(wins, sender, bump, 1);
    Array.set(lastw, 0, overwrite, sender + r * 8);
  }
}
"""


def _build_tiebreak(events: int, seed: int) -> ScenarioSetup:
    topology = topo.line(3, latency_ns=1_000)
    config = SchedulerConfig(link_latency_ns=1_000, pipeline_latency_ns=400)
    hop_ns = 1_400  # marks from round r land exactly on round r+1's timestamp

    def traffic():
        rounds = max(1, events // 3)
        for r in range(rounds):
            t = r * hop_ns
            # edge switches always ping toward the middle; the link 2-1
            # crosses the {0,1} | {2} shard boundary
            yield (t, 0, EventInstance("ping", (r + 1, 0, 1)))
            yield (t, 2, EventInstance("ping", (r + 1, 2, 1)))
            if r % 2 == 0:
                # middle pings across the boundary on even rounds only, so
                # odd rounds leave switch 1's claim to the two marks alone
                yield (t, 1, EventInstance("ping", (r + 1, 1, 2)))

    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _TIEBREAK_APP, config=config, engine=engine, name="tiebreak"
        ),
        traffic=traffic,
        invariants=[],
        settle_ns=10_000,
    )


@fork_only
def test_simultaneous_cross_boundary_events_keep_tiebreak_order():
    scenario = Scenario(
        name="_test-shard-tiebreak",
        title="tie-break parity fixture",
        app_key="CM",  # unused: build() compiles its own program text
        topology="line-3",
        description="simultaneous cross-boundary collisions every round",
        build=_build_tiebreak,
    )
    register(scenario)
    try:
        plan = partition_topology(topo.line(3, latency_ns=1_000), 2)
        assert plan.shards == [[0, 1], [2]]
        single = run_scenario(scenario, 120, seed=11, engine="compiled")
        sharded = run_sharded(scenario, 120, seed=11, num_shards=2,
                              engine="compiled")
        _assert_parity(single, sharded)
        # sanity: the fixture actually contested both tie modes.  Re-run the
        # drain directly and read the middle switch's claim counters: its own
        # external pings won the even rounds (source beats heap), switch 0's
        # marks won the odd rounds (lower origin key beats switch 2's marks).
        setup = _build_tiebreak(120, 11)
        network = setup.make_network("compiled")
        items = list(setup.traffic())
        network.run(source=iter(items),
                    until_ns=max(t for t, _, _ in items) + setup.settle_ns)
        wins = network.switches[1].runtime.arrays["wins"].cells
        assert wins[0] > 0 and wins[1] > 0, f"uncontested fixture: {wins}"
        assert wins[2] == 0, f"origin-2 marks beat origin-0 marks: {wins}"
    finally:
        SCENARIOS.pop(scenario.name, None)


# ---------------------------------------------------------------------------
# satellites: picklability and reset hygiene
# ---------------------------------------------------------------------------
def test_switch_stats_round_trips_through_dict_and_pickle():
    stats = SwitchStats()
    stats.events_handled = 7
    stats.events_generated = 3
    stats.handled_by_event["pkt"] = 7
    clone = SwitchStats.from_dict(stats.to_dict())
    assert clone.to_dict() == stats.to_dict()
    pickled = pickle.loads(pickle.dumps(stats))
    assert pickled.to_dict() == stats.to_dict()


def test_scenario_result_round_trips_through_dict_and_pickle():
    result = run_scenario(get("heavy-hitter-single"), 500, seed=2,
                          engine="compiled")
    clone = ScenarioResult.from_dict(result.to_dict())
    assert clone.verdict_signature() == result.verdict_signature()
    assert clone.scenario == result.scenario
    assert clone.events_handled == result.events_handled
    assert clone.ok == result.ok
    pickled = pickle.loads(pickle.dumps(result))
    assert pickled.verdict_signature() == result.verdict_signature()
    assert pickled.switch_stats == result.switch_stats


def test_reset_detaches_tracer_and_profiler():
    scenario = get("heavy-hitter-single")
    setup = scenario.build(200, 1)
    network = setup.make_network("compiled")
    network.tracer = object()
    network.profiler = object()
    network.on_handle = lambda entry: None
    network.reset()
    assert network.tracer is None
    assert network.profiler is None
    assert network.on_handle is None
    for switch in network.switches.values():
        assert switch.origin_seq == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
@fork_only
def test_cli_shards_flag_runs_and_agrees(capsys):
    from repro.scenarios.__main__ import main

    assert main(["run", "heavy-hitter-fattree", "--events", "600",
                 "--shards", "2"]) == 0
    sharded_out = capsys.readouterr().out
    assert main(["run", "heavy-hitter-fattree", "--events", "600"]) == 0
    single_out = capsys.readouterr().out
    digest = [line for line in single_out.splitlines() if "digest" in line]
    assert digest and digest[0].split("digest ")[1].split()[0] in sharded_out


def test_cli_shards_rejects_profile_and_multi_engine(capsys):
    from repro.scenarios.__main__ import main

    assert main(["run", "heavy-hitter-fattree", "--events", "100",
                 "--shards", "2", "--profile"]) == 2
    assert main(["run", "heavy-hitter-fattree", "--events", "100",
                 "--shards", "2", "--all-engines"]) == 2
