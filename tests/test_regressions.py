"""Replay of the checked-in fuzz reproducers on every engine.

Each ``tests/regressions/*.json`` file is a minimal reproducer shrunk from a
real engine divergence the differential fuzzer found (and the fix landed
for).  Replaying the corpus on all three engines pins the fixes: any
regression shows up as a divergence in exactly the program shape that broke
before.
"""

import glob
import os

import pytest

from repro.fuzz.case import load_case
from repro.fuzz.diff import run_differential
from repro.interp.engine import ENGINE_NAMES

REGRESSION_DIR = os.path.join(os.path.dirname(__file__), "regressions")
CASE_FILES = sorted(glob.glob(os.path.join(REGRESSION_DIR, "*.json")))


def test_corpus_is_present():
    # the corpus must hold at least the reproducers of the originally fixed
    # engine bugs; an empty directory means the loader is testing nothing
    assert len(CASE_FILES) >= 3, f"expected >= 3 reproducers in {REGRESSION_DIR}"


@pytest.mark.parametrize("path", CASE_FILES, ids=[os.path.basename(p) for p in CASE_FILES])
def test_regression_case_agrees_on_all_engines(path):
    case = load_case(path)
    outcome = run_differential(case, engines=ENGINE_NAMES)
    assert outcome.ok, outcome.summary()
    # every engine must actually have executed the workload (a reproducer
    # whose events no longer exist would vacuously "agree")
    for engine, result in outcome.results.items():
        assert result.error is None, f"{engine}: {result.error}"
        assert result.trace, f"{engine} handled no events for {case.name}"
