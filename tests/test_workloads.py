"""Direct unit tests for the workload generators (repro.workloads).

Until now these modules were only exercised indirectly through the benchmark
harnesses; this suite pins their contracts directly: determinism under a
fixed seed, flow key/reverse-key symmetry, packet timing, the DNS mix
composition, link-failure schedules, and the equivalence of the streaming
generators with their materialising counterparts.
"""

import itertools

from repro.workloads import (
    DnsTrafficMix,
    Flow,
    FlowWorkload,
    LinkFailure,
    LinkFailureSchedule,
    iter_flows,
    iter_random_failures,
    poisson_flow_arrivals,
    stream_dns_mix,
)


# ---------------------------------------------------------------------------
# flows
# ---------------------------------------------------------------------------
class TestFlowWorkload:
    def test_deterministic_under_fixed_seed(self):
        a = FlowWorkload.generate(50, seed=42)
        b = FlowWorkload.generate(50, seed=42)
        assert a.flows == b.flows

    def test_different_seeds_differ(self):
        a = FlowWorkload.generate(50, seed=1)
        b = FlowWorkload.generate(50, seed=2)
        assert a.flows != b.flows

    def test_iter_flows_streams_the_same_sequence(self):
        materialised = FlowWorkload.generate(40, seed=7).flows
        streamed = list(iter_flows(40, seed=7))
        assert streamed == materialised

    def test_iter_flows_is_lazy(self):
        stream = iter_flows(10**9, seed=3)
        first = list(itertools.islice(stream, 4))
        assert len(first) == 4  # a materialising generator would never return

    def test_key_reverse_key_symmetry(self):
        flow = Flow(flow_id=0, src=11, dst=22, start_ns=0)
        assert flow.key() == (11, 22)
        assert flow.reverse_key() == (22, 11)
        assert flow.key() == tuple(reversed(flow.reverse_key()))

    def test_return_flow_reverses_outbound_key(self):
        workload = FlowWorkload.generate(20, seed=5)
        for outbound, inbound in zip(workload.flows[::2], workload.flows[1::2]):
            assert outbound.outbound and not inbound.outbound
            assert inbound.key() == outbound.reverse_key()
            assert inbound.start_ns == outbound.start_ns + 200_000

    def test_packet_times_spacing(self):
        flow = Flow(flow_id=0, src=1, dst=2, start_ns=100, packets=3, inter_packet_ns=50)
        assert flow.packet_times() == [100, 150, 200]

    def test_outbound_arrivals_are_monotone(self):
        workload = FlowWorkload.generate(30, seed=9)
        outbound = [f.start_ns for f in workload.flows if f.outbound]
        assert outbound == sorted(outbound)

    def test_duration_covers_last_packet(self):
        workload = FlowWorkload.generate(10, seed=1)
        assert workload.duration_ns == max(
            t for f in workload.flows for t in f.packet_times()
        )

    def test_poisson_arrivals_deterministic_and_monotone(self):
        a = poisson_flow_arrivals(10_000.0, 0.01, seed=3)
        b = poisson_flow_arrivals(10_000.0, 0.01, seed=3)
        assert a == b
        assert a == sorted(a)
        assert all(t <= 0.01 * 1e9 for t in a)


# ---------------------------------------------------------------------------
# DNS
# ---------------------------------------------------------------------------
class TestDnsTraffic:
    def test_generate_deterministic(self):
        a = DnsTrafficMix.generate(seed=11)
        b = DnsTrafficMix.generate(seed=11)
        assert a.packets == b.packets

    def test_generate_sorted_and_partitioned(self):
        mix = DnsTrafficMix.generate(benign_queries=50, reflected_responses=25, seed=2)
        times = [p.time_ns for p in mix.packets]
        assert times == sorted(times)
        assert len(mix.reflected()) == 25
        # every benign query gets exactly one benign response
        benign = mix.benign()
        assert len([p for p in benign if not p.is_response]) == 50
        assert len([p for p in benign if p.is_response]) == 50

    def test_reflected_target_the_victim(self):
        mix = DnsTrafficMix.generate(victim=9, seed=4)
        assert all(p.client == 9 and p.is_response for p in mix.reflected())

    def test_stream_is_deterministic_and_time_ordered(self):
        a = list(stream_dns_mix(400, seed=13))
        b = list(stream_dns_mix(400, seed=13))
        assert a == b
        times = [p.time_ns for p in a]
        assert times == sorted(times)
        assert len(a) == 400

    def test_stream_mix_composition(self):
        packets = list(stream_dns_mix(600, reflected_share=0.5, victim=3, seed=8))
        reflected = [p for p in packets if p.reflected]
        queries = [p for p in packets if not p.is_response]
        assert reflected and queries
        assert all(p.client == 3 for p in reflected)
        # benign responses answer a previously seen query
        seen = set()
        for p in packets:
            if not p.is_response:
                seen.add((p.client, p.server))
            elif not p.reflected:
                assert (p.client, p.server) in seen


# ---------------------------------------------------------------------------
# link failures
# ---------------------------------------------------------------------------
class TestLinkFailures:
    LINKS = [(0, 1), (1, 2), (2, 3)]

    def test_random_failures_deterministic(self):
        a = LinkFailureSchedule.random_failures(self.LINKS, 10, 1_000_000, seed=7)
        b = LinkFailureSchedule.random_failures(self.LINKS, 10, 1_000_000, seed=7)
        assert a.failures == b.failures

    def test_random_failures_sorted_and_within_window(self):
        schedule = LinkFailureSchedule.random_failures(self.LINKS, 20, 500_000, seed=3)
        times = [f.fail_at_ns for f in schedule.failures]
        assert times == sorted(times)
        assert all(0 <= t < 500_000 for t in times)
        assert all(f.link in self.LINKS for f in schedule.failures)

    def test_failed_links_lifecycle(self):
        schedule = LinkFailureSchedule(
            failures=[LinkFailure(link=(0, 1), fail_at_ns=100, recover_at_ns=200)]
        )
        assert schedule.failed_links(50) == []
        assert schedule.failed_links(100) == [(0, 1)]
        assert schedule.failed_links(150) == [(0, 1)]
        assert schedule.failed_links(200) == []

    def test_iter_random_failures_streams_sorted(self):
        a = list(iter_random_failures(self.LINKS, 15, seed=5))
        b = list(iter_random_failures(self.LINKS, 15, seed=5))
        assert a == b
        assert len(a) == 15
        times = [f.fail_at_ns for f in a]
        assert times == sorted(times)
        for failure in a:
            assert failure.recover_at_ns >= failure.fail_at_ns
            assert failure.link in self.LINKS

    def test_iter_random_failures_is_lazy(self):
        stream = iter_random_failures(self.LINKS, 10**9, seed=1)
        assert len(list(itertools.islice(stream, 3))) == 3
