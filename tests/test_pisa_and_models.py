"""Tests for the PISA substrate models, the analytic models, the remote-control
baseline, the workload generators, and compile-vs-interpret equivalence."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import firewall_overhead_table, lucid_loc, p4_breakdown
from repro.analysis.recirc_model import FirewallRecircModel
from repro.analysis.recirc_uses import classify_application, recirc_uses_table
from repro.apps import ALL_APPLICATIONS
from repro.backend import compile_program
from repro.control import ControlPlaneConfig, RemoteController
from repro.core import EventInstance, single_switch_network
from repro.pisa import (
    DelayedEvent,
    PausableDelayQueue,
    PipelineBudget,
    PisaPipeline,
    RecirculationPort,
    simulate_concurrent_delays,
)
from repro.workloads import DnsTrafficMix, FlowWorkload, LinkFailureSchedule
from repro.workloads.flows import poisson_flow_arrivals


# ---------------------------------------------------------------------------
# pausable delay queue (Figure 14 mechanism)
# ---------------------------------------------------------------------------
def test_pausable_queue_releases_after_requested_delay():
    queue = PausableDelayQueue(release_interval_ns=100_000)
    event = DelayedEvent(event_id=1, requested_delay_ns=250_000, enqueued_at_ns=0)
    queue.enqueue(event)
    queue.run_until_empty()
    assert event.released_at_ns is not None
    assert event.actual_delay_ns >= 250_000
    assert event.actual_delay_ns - 250_000 <= 100_000


def test_pausable_queue_error_bounded_by_release_interval():
    queue = PausableDelayQueue(release_interval_ns=50_000)
    events = [DelayedEvent(i, 120_000 + i * 7_000, 0) for i in range(10)]
    for event in events:
        queue.enqueue(event)
    queue.run_until_empty()
    assert all(0 <= e.delay_error_ns <= 50_000 for e in events)


def test_pausable_queue_counts_recirculation_passes():
    queue = PausableDelayQueue(release_interval_ns=100_000)
    queue.enqueue(DelayedEvent(0, 350_000, 0))
    queue.run_until_empty()
    assert queue.recirculation_passes == 4  # 3 not-ready loops + 1 delivery


def test_figure14_delay_queue_vs_baseline_bandwidth():
    dq = simulate_concurrent_delays(90, use_delay_queue=True)
    baseline = simulate_concurrent_delays(90, use_delay_queue=False)
    assert 3.0 < dq.recirc_bandwidth_gbps() < 8.0  # paper: 5.5 Gb/s
    assert baseline.recirc_bandwidth_gbps() > 90.0  # paper: >95 Gb/s (saturated)
    assert baseline.recirc_bandwidth_gbps() / dq.recirc_bandwidth_gbps() > 10


def test_figure14_delay_queue_vs_baseline_accuracy():
    dq = simulate_concurrent_delays(60, use_delay_queue=True)
    baseline = simulate_concurrent_delays(60, use_delay_queue=False)
    assert dq.max_abs_error_ns() <= 50_000
    assert dq.mean_relative_error() > baseline.mean_relative_error()
    assert baseline.mean_relative_error() < 0.01


def test_figure14_bandwidth_grows_with_concurrency():
    values = [simulate_concurrent_delays(n).recirc_bandwidth_gbps() for n in (10, 40, 80)]
    assert values == sorted(values)


def test_delay_queue_buffer_usage_is_small():
    dq = simulate_concurrent_delays(90, use_delay_queue=True)
    assert dq.buffer_bytes_peak <= 90 * 64  # ~7 KB, as in Section 7.2


# ---------------------------------------------------------------------------
# recirculation accounting and the Figure 16 model
# ---------------------------------------------------------------------------
def test_recirculation_port_bandwidth_accounting():
    port = RecirculationPort()
    port.recirculate(packet_bytes=64, passes=1_000_000)
    assert port.bandwidth_bps(1e9) == pytest.approx(64 * 8 * 1e6)
    assert 0 < port.utilisation(1e9) < 1


def test_pipeline_budget_min_packet_size_without_load():
    budget = PipelineBudget()
    assert budget.min_line_rate_packet_bytes(0) == pytest.approx(125.0)


def test_figure16_model_matches_paper_numbers():
    rows = firewall_overhead_table()
    by_rate = {int(r.flow_rate_per_s): r for r in rows}
    # 10K flows/s: 815K pkts/s, ~0.08% utilisation, min packet ~125.3 B
    assert by_rate[10_000].recirc_rate_pps == pytest.approx(815_360, rel=0.01)
    assert by_rate[10_000].pipeline_utilisation * 100 == pytest.approx(0.08, abs=0.01)
    assert by_rate[10_000].min_packet_size_bytes == pytest.approx(125.3, abs=0.7)
    # 1M flows/s: 16M pkts/s, ~1.66% utilisation, min packet ~127.7 B
    assert by_rate[1_000_000].recirc_rate_pps == pytest.approx(16_655_360, rel=0.01)
    assert by_rate[1_000_000].pipeline_utilisation * 100 == pytest.approx(1.67, abs=0.1)
    assert by_rate[1_000_000].min_packet_size_bytes == pytest.approx(127.7, abs=0.7)


@given(st.integers(min_value=1_000, max_value=10_000_000))
def test_figure16_model_is_monotone_in_flow_rate(rate):
    model = FirewallRecircModel()
    assert model.recirc_rate_pps(rate) >= model.scan_rate_pps()
    assert model.recirc_rate_pps(rate + 1000) > model.recirc_rate_pps(rate)


# ---------------------------------------------------------------------------
# remote controller baseline
# ---------------------------------------------------------------------------
def test_remote_controller_latency_distribution():
    controller = RemoteController(seed=1)
    for i in range(500):
        controller.install_flow(i, requested_at_ns=i * 100_000)
    assert controller.min_latency_ns() >= 12_000
    assert 15_000 <= controller.mean_latency_ns() <= 22_000


def test_remote_controller_polling_adds_latency():
    fast = RemoteController(ControlPlaneConfig(poll_interval_ns=0), seed=2)
    polled = RemoteController(ControlPlaneConfig(poll_interval_ns=1_000_000), seed=2)
    fast.install_flow(1, 10)
    polled.install_flow(1, 10)
    assert polled.records[0].latency_ns > fast.records[0].latency_ns


def test_remote_controller_serialisation_queues_requests():
    controller = RemoteController(ControlPlaneConfig(serialize_installs=True), seed=3)
    first = controller.install_flow(1, 0)
    second = controller.install_flow(2, 0)
    assert second.completed_at_ns >= first.completed_at_ns


# ---------------------------------------------------------------------------
# workload generators
# ---------------------------------------------------------------------------
def test_flow_workload_is_deterministic_per_seed():
    a = FlowWorkload.generate(num_flows=20, seed=9)
    b = FlowWorkload.generate(num_flows=20, seed=9)
    assert [f.key() for f in a] == [f.key() for f in b]


def test_flow_workload_pairs_outbound_with_return_flows():
    workload = FlowWorkload.generate(num_flows=10, seed=1)
    outbound = [f for f in workload if f.outbound]
    inbound = [f for f in workload if not f.outbound]
    assert len(outbound) == len(inbound) == 10
    assert {f.key() for f in inbound} == {f.reverse_key() for f in outbound}


def test_poisson_arrivals_have_expected_rate():
    times = poisson_flow_arrivals(rate_per_s=10_000, duration_s=0.5, seed=4)
    assert 4_000 <= len(times) <= 6_000
    assert times == sorted(times)


def test_link_failure_schedule_reports_down_links():
    schedule = LinkFailureSchedule.random_failures([(0, 1), (1, 2)], count=5, window_ns=1_000_000, seed=2)
    assert len(schedule.failures) == 5
    some_time = schedule.failures[0].fail_at_ns
    assert schedule.failed_links(some_time)


def test_dns_traffic_mix_composition():
    mix = DnsTrafficMix.generate(benign_queries=50, reflected_responses=25, seed=3)
    assert len(mix.reflected()) == 25
    assert len(mix.benign()) == 100  # query + response per benign exchange
    assert all(p.is_response for p in mix.reflected())


# ---------------------------------------------------------------------------
# compile-and-execute equivalence (PISA pipeline executor vs interpreter)
# ---------------------------------------------------------------------------
EQUIV_PROGRAM = """
const int SIZE = 64;
global nexthops = new Array<<32>>(SIZE);
global pcts = new Array<<32>>(SIZE);
global hcts = new Array<<32>>(SIZE);
memop plus(int cur, int x){return cur + x;}
event count_pkt(int dst, int proto);
handle count_pkt(int dst, int proto) {
  int idx = Array.get(nexthops, dst);
  if (proto != TCP) {
    if (proto == UDP) {
      idx = idx + 8;
    } else {
      idx = idx + 16;
    }
  }
  Array.set(pcts, idx, plus, 1);
  if (proto == TCP) {
    Array.set(hcts, dst, plus, 1);
  }
}
"""


@pytest.mark.parametrize("proto", [6, 17, 1])
def test_pipeline_executor_matches_interpreter(proto):
    compiled = compile_program(EQUIV_PROGRAM, name="equiv")
    pipeline = PisaPipeline(compiled)
    network, switch = single_switch_network(compiled.checked)
    packets = [(3, proto), (5, proto), (3, proto)]
    for dst, pr in packets:
        pipeline.process(EventInstance("count_pkt", (dst, pr)))
        network.inject(0, EventInstance("count_pkt", (dst, pr)))
    network.run()
    for array in ("nexthops", "pcts", "hcts"):
        assert pipeline.array(array).snapshot() == switch.array(array).snapshot(), array


def test_pipeline_executor_reports_stages_traversed():
    compiled = compile_program(EQUIV_PROGRAM, name="equiv")
    pipeline = PisaPipeline(compiled)
    result = pipeline.process(EventInstance("count_pkt", (1, 6)))
    assert 1 <= result.stages_traversed <= compiled.stages()
    assert result.tables_executed >= 2


def test_pipeline_executor_generates_events_from_layout():
    source = """
    event a(int x);
    event b(int x);
    handle a(int x) { generate b(x + 1); }
    """
    compiled = compile_program(source, name="gen")
    pipeline = PisaPipeline(compiled)
    result = pipeline.process(EventInstance("a", (4,)))
    assert [e.name for e in result.generated] == ["b"]
    assert result.generated[0].args == (5,)


# ---------------------------------------------------------------------------
# LoC analysis and recirculation-use classification
# ---------------------------------------------------------------------------
def test_loc_breakdown_sums_to_total():
    app = ALL_APPLICATIONS["RIP"]
    compiled = app.compile()
    breakdown = p4_breakdown("RIP", app.source, compiled.naive_p4)
    assert breakdown.p4_total == compiled.naive_p4.line_counts()["total"]
    assert breakdown.lucid == lucid_loc(app.source)
    assert breakdown.ratio > 1


def test_recirc_use_classification_matches_figure15():
    compiled = {key: ALL_APPLICATIONS[key].compile() for key in ("SFW", "SRO", "DFW", "CM")}
    assert "maintenance" in classify_application(compiled["SFW"])
    assert "flow_setup" in classify_application(compiled["SFW"])
    assert "sync" in classify_application(compiled["SRO"])
    assert "sync" in classify_application(compiled["DFW"])
    assert "maintenance" in classify_application(compiled["CM"])
    rows = recirc_uses_table(compiled)
    assert len(rows) == 3 and all("applications" in row for row in rows)
