"""Tests for the interpreter, runtime arrays, events, and the network simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterpError
from repro.frontend import check_program
from repro.interp import (
    EventInstance,
    Network,
    RuntimeArray,
    SchedulerConfig,
    lucid_hash,
    single_switch_network,
)


# ---------------------------------------------------------------------------
# runtime arrays (property-based)
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**40))
def test_array_set_get_roundtrip(size, value):
    array = RuntimeArray(name="t", size=size, cell_width=32)
    array.set(0, value=value)
    assert array.get(0) == value & 0xFFFFFFFF


@given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=50))
def test_array_update_returns_old_value_and_stores_new(values):
    array = RuntimeArray(name="t", size=4, cell_width=32)
    previous = 0
    for value in values:
        old = array.update(1, lambda cur, a: cur, 0, lambda cur, a: a, value)
        assert old == previous
        previous = value
    assert array.get(1) == previous


@given(st.integers(), st.integers(min_value=1, max_value=128))
def test_array_index_wraps_like_hardware(index, size):
    array = RuntimeArray(name="t", size=size, cell_width=32)
    array.set(index, value=7)
    assert array.get(index) == 7


def test_array_cells_respect_width():
    array = RuntimeArray(name="t", size=2, cell_width=8)
    array.set(0, value=0x1FF)
    assert array.get(0) == 0xFF


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=20))
def test_hash_is_deterministic_and_width_bounded(args):
    a = lucid_hash(16, args)
    b = lucid_hash(16, args)
    assert a == b and 0 <= a < 2 ** 16


def test_hash_differs_for_different_seeds():
    assert lucid_hash(32, [1, 2], seed=1) != lucid_hash(32, [1, 2], seed=2)


# ---------------------------------------------------------------------------
# event values / combinators
# ---------------------------------------------------------------------------
def test_event_delay_accumulates():
    e = EventInstance("x", (1,)).delay(100).delay(50)
    assert e.delay_ns == 150


def test_event_locate_single_and_group():
    assert EventInstance("x").locate(4).targets(0) == [4]
    assert EventInstance("x").locate((1, 2, 3)).targets(0) == [1, 2, 3]


def test_event_local_targets_self():
    assert EventInstance("x").targets(9) == [9]


def test_event_payload_has_minimum_frame_size():
    assert EventInstance("x", ()).payload_bytes() == 64
    assert EventInstance("x", tuple(range(32))).payload_bytes() > 64


# ---------------------------------------------------------------------------
# interpreter semantics
# ---------------------------------------------------------------------------
COUNTER = """
const int SIZE = 8;
global counts = new Array<<32>>(SIZE);
global totals = new Array<<32>>(4);
memop plus(int stored, int x) { return stored + x; }
memop keep(int stored, int x) { return stored; }
event pkt(int dst, int len);
event roll(int idx);
handle pkt(int dst, int len) {
  int c = Array.update(counts, dst, plus, 1, plus, 1);
  if (c > 3) {
    Array.set(totals, 0, plus, len);
    generate roll(dst);
  }
  forward(2);
}
handle roll(int idx) {
  int seen = Array.get(counts, idx);
  printf(seen);
}
"""


def make_counter_network():
    return single_switch_network(check_program(COUNTER))


def test_interpreter_updates_arrays_and_forwards():
    network, switch = make_counter_network()
    for i in range(3):
        network.inject(0, EventInstance("pkt", (1, 100)))
    network.run()
    assert switch.array("counts").get(1) == 3
    assert switch.array("totals").get(0) == 0
    assert switch.stats.events_handled == 3


def test_interpreter_condition_triggers_generate_and_recirculation():
    network, switch = make_counter_network()
    for _ in range(5):
        network.inject(0, EventInstance("pkt", (2, 10)))
    network.run()
    assert switch.array("totals").get(0) == 20  # 4th and 5th packets
    assert switch.stats.recirculations == 2
    assert switch.stats.handled_by_event.get("roll") == 2
    assert switch.log  # printf output captured


def test_interpreter_rejects_wrong_arity_events():
    network, switch = make_counter_network()
    network.inject(0, EventInstance("pkt", (1,)))
    with pytest.raises(InterpError):
        network.run()


def test_events_without_handlers_are_silently_consumed():
    source = "event out(int a); event seen(int a); handle seen(int a) { generate out(a); }"
    network, switch = single_switch_network(check_program(source))
    network.inject(0, EventInstance("seen", (1,)))
    network.run()
    assert switch.stats.events_handled == 2  # seen + out (no-op handler)


def test_short_circuit_evaluation_matches_lucid_semantics():
    source = """
    global t_and = new Array<<32>>(4);
    global t_or = new Array<<32>>(4);
    event e(int a, int b);
    handle e(int a, int b) {
      if (a == 1 && b == 1) { Array.set(t_and, 0, 1); }
      if (a == 1 || b == 9) { Array.set(t_or, 0, 1); }
    }
    """
    network, switch = single_switch_network(check_program(source))
    network.inject(0, EventInstance("e", (1, 0)))
    network.run()
    assert switch.array("t_and").get(0) == 0 and switch.array("t_or").get(0) == 1


def test_match_statement_execution():
    source = """
    global t = new Array<<32>>(4);
    event e(int a, int b);
    handle e(int a, int b) {
      match (a, b) with
      | 1, _ -> { Array.set(t, 0, 10); }
      | _, 2 -> { Array.set(t, 1, 20); }
      | _, _ -> { Array.set(t, 2, 30); }
    }
    """
    checked = check_program(source)
    network, switch = single_switch_network(checked)
    network.inject(0, EventInstance("e", (1, 5)))
    network.inject(0, EventInstance("e", (0, 2)))
    network.inject(0, EventInstance("e", (0, 0)))
    network.run()
    assert switch.array("t").snapshot()[:3] == [10, 20, 30]


@pytest.mark.parametrize("fast_path", [False, True])
def test_if_and_match_branches_share_handler_scope(fast_path):
    """Lucid handlers have one flat scope: assignments made inside an if- or
    match-branch are visible after the branch (regression test for the old
    dead ``dict(env) if False else env`` expression in the interpreter)."""
    source = """
    global t_if = new Array<<32>>(4);
    global t_match = new Array<<32>>(4);
    event e(int a);
    handle e(int a) {
      int x = 0;
      if (a == 1) { x = 5; } else { x = 7; }
      Array.set(t_if, 0, x);
      int y = 0;
      match (a) with
      | 1 -> { y = 11; }
      | _ -> { y = 13; }
      Array.set(t_match, 0, y);
    }
    """
    network = Network(engine="compiled" if fast_path else "reference")
    switch = network.add_switch(0, check_program(source))
    network.inject(0, EventInstance("e", (1,)))
    network.run()
    assert switch.array("t_if").get(0) == 5
    assert switch.array("t_match").get(0) == 11
    network.inject(0, EventInstance("e", (2,)))
    network.run()
    assert switch.array("t_if").get(0) == 7
    assert switch.array("t_match").get(0) == 13


# ---------------------------------------------------------------------------
# memop compilation guards
# ---------------------------------------------------------------------------
MEMOP_PROGRAM = """
global t = new Array<<32>>(4);
memop m(int stored, int x) { return stored + x; }
event e(int v);
handle e(int v) { Array.set(t, 0, m, v); }
"""


def _runtime_with_mutated_memop(mutate):
    from repro.interp import SwitchRuntime

    checked = check_program(MEMOP_PROGRAM)
    mutate(checked.info.memops["m"])
    return SwitchRuntime(checked)


def test_memop_fn_compiles_valid_memop():
    from repro.interp import SwitchRuntime

    runtime = SwitchRuntime(check_program(MEMOP_PROGRAM))
    assert runtime.memop_fn("m")(40, 2) == 42


def test_memop_fn_rejects_unknown_name():
    from repro.interp import SwitchRuntime

    runtime = SwitchRuntime(check_program(MEMOP_PROGRAM))
    with pytest.raises(InterpError, match="nope"):
        runtime.memop_fn("nope")


def test_memop_fn_rejects_empty_body():
    runtime = _runtime_with_mutated_memop(lambda decl: decl.body.clear())
    with pytest.raises(InterpError, match="'m'"):
        runtime.memop_fn("m")


def test_memop_fn_rejects_if_with_empty_branch():
    from repro.frontend import ast as fast
    from repro.frontend.source import dummy_span

    def mutate(decl):
        ret = decl.body[0]
        decl.body[:] = [
            fast.SIf(span=dummy_span(), cond=fast.EBool(span=dummy_span(), value=True),
                     then_body=[ret], else_body=[])
        ]

    runtime = _runtime_with_mutated_memop(mutate)
    with pytest.raises(InterpError, match="'m'"):
        runtime.memop_fn("m")


def test_memop_fn_rejects_duplicate_parameter_names():
    def mutate(decl):
        decl.params[1].name = decl.params[0].name

    runtime = _runtime_with_mutated_memop(mutate)
    with pytest.raises(InterpError, match="'m'"):
        runtime.memop_fn("m")


def test_memop_fn_rejects_non_return_body():
    from repro.frontend import ast as fast
    from repro.frontend.source import dummy_span

    def mutate(decl):
        decl.body[:] = [fast.SNoop(span=dummy_span()),
                        fast.SAssign(span=dummy_span(), name="stored",
                                     value=fast.EInt(span=dummy_span(), value=1))]

    runtime = _runtime_with_mutated_memop(mutate)
    with pytest.raises(InterpError, match="'m'"):
        runtime.memop_fn("m")


def test_extern_binding_is_called():
    source = "extern fun int report(int v); event e(int v); handle e(int v) { int x = report(v); }"
    network, switch = single_switch_network(check_program(source))
    calls = []
    switch.bind_extern("report", lambda v: calls.append(v) or 0)
    network.inject(0, EventInstance("e", (42,)))
    network.run()
    assert calls == [42]


# ---------------------------------------------------------------------------
# network scheduling
# ---------------------------------------------------------------------------
PINGPONG = """
event ping(int hops);
event pong(int hops);
handle ping(int hops) { generate Event.locate(pong(hops + 1), 1); }
handle pong(int hops) { drop(); }
"""


def test_remote_events_incur_link_latency():
    checked = check_program(PINGPONG)
    network = Network(SchedulerConfig(link_latency_ns=5_000))
    network.add_switch(0, checked)
    network.add_switch(1, checked)
    network.add_link(0, 1, latency_ns=5_000)
    network.inject(0, EventInstance("ping", (0,)), at_ns=0)
    network.run()
    pong = [t for t in network.trace if t.event.name == "pong"][0]
    assert pong.switch_id == 1
    assert pong.time_ns >= 5_000


def test_local_generates_incur_recirculation_latency():
    source = "event a(); event b(); handle a() { generate b(); } handle b() { drop(); }"
    network, switch = single_switch_network(check_program(source))
    network.inject(0, EventInstance("a", ()), at_ns=0)
    network.run()
    b = [t for t in network.trace if t.event.name == "b"][0]
    assert b.time_ns == network.config.recirculation_latency_ns
    assert switch.stats.recirculations == 1


def test_delayed_events_are_quantised_by_the_delay_queue():
    source = "event a(); event b(); handle a() { generate Event.delay(b(), 150us); } handle b() { drop(); }"
    config = SchedulerConfig(delay_release_interval_ns=100_000, use_delay_queue=True)
    network, _ = single_switch_network(check_program(source), config=config)
    network.inject(0, EventInstance("a", ()), at_ns=0)
    network.run()
    b = [t for t in network.trace if t.event.name == "b"][0]
    assert b.time_ns >= 200_000  # rounded up to the next release interval


def test_delay_without_queue_consumes_recirculation_bandwidth():
    source = "event a(); event b(); handle a() { generate Event.delay(b(), 60us); } handle b() { drop(); }"
    config = SchedulerConfig(use_delay_queue=False)
    network, switch = single_switch_network(check_program(source), config=config)
    network.inject(0, EventInstance("a", ()), at_ns=0)
    network.run()
    assert switch.stats.recirculations > 50  # ~one pass per 600 ns of delay


def test_multicast_generates_reach_every_group_member():
    source = """
    const group ALL = {0, 1, 2};
    global hits = new Array<<32>>(4);
    event seed();
    event mark(int x);
    handle seed() { mgenerate Event.locate(mark(1), ALL); }
    handle mark(int x) { Array.set(hits, 0, x); }
    """
    checked = check_program(source)
    network = Network()
    for sid in range(3):
        network.add_switch(sid, checked)
    network.inject(0, EventInstance("seed", ()))
    network.run()
    assert all(network.switch(sid).array("hits").get(0) == 1 for sid in range(3))


def test_run_until_time_bound_stops_early():
    source = "event tick(int n); handle tick(int n) { generate Event.delay(tick(n + 1), 1ms); }"
    network, switch = single_switch_network(check_program(source))
    network.inject(0, EventInstance("tick", (0,)), at_ns=0)
    network.run(until_ns=10_500_000)
    assert 8 <= switch.stats.events_handled <= 12
    assert network.pending_events() == 1


# ---------------------------------------------------------------------------
# hash degenerate widths (w = 0, w > 32, empty argument lists)
# ---------------------------------------------------------------------------
def test_hash_zero_width_is_zero():
    # a zero-bit hash has exactly one value; every engine must agree on it
    assert lucid_hash(0, [1, 2, 3]) == 0
    assert lucid_hash(-4, [99]) == 0


def test_hash_width_beyond_word_keeps_full_crc():
    full = lucid_hash(32, [7, 11])
    assert lucid_hash(33, [7, 11]) == full
    assert lucid_hash(64, [7, 11]) == full
    assert 0 <= full <= 0xFFFFFFFF


def test_hash_empty_args_hashes_seed_word():
    assert lucid_hash(32, []) == lucid_hash(32, [], seed=0)
    assert lucid_hash(32, [], seed=1) != lucid_hash(32, [], seed=2)
    assert 0 <= lucid_hash(16, []) < 2 ** 16


def test_hash_one_bit_width_is_parity_like():
    for args in ([0], [1], [2, 3], [0xFFFFFFFF]):
        assert lucid_hash(1, args) in (0, 1)


@pytest.mark.parametrize("engine", ["reference", "compiled", "pisa"])
def test_hash_degenerate_widths_agree_across_engines(engine):
    source = """
    global h0 = new Array<<32>>(1);
    global h1 = new Array<<32>>(1);
    global hwide = new Array<<32>>(1);
    global hempty = new Array<<32>>(1);
    event probe(int x, int y);
    handle probe(int x, int y) {
      Array.set(h0, 0, hash<<0>>(x, y));
      Array.set(h1, 0, hash<<1>>(x, y));
      Array.set(hwide, 0, hash<<33>>(x, y));
      Array.set(hempty, 0, hash<<16>>());
    }
    """
    network, switch = single_switch_network(check_program(source), engine=engine)
    network.inject(0, EventInstance("probe", (12, 345)))
    network.run()
    assert switch.array("h0").get(0) == 0
    assert switch.array("h1").get(0) == lucid_hash(1, [12, 345])
    assert switch.array("hwide").get(0) == lucid_hash(33, [12, 345])
    assert switch.array("hempty").get(0) == lucid_hash(16, [])
