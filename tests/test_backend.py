"""Tests for the mid-end and backend: inlining, normalisation, table graphs,
branch inlining, data-flow reordering, greedy merging, and P4 generation."""

import pytest

from repro.backend import (
    CompilerOptions,
    MergeOptions,
    TableKind,
    build_layout,
    build_table_graph,
    compile_program,
    count_lucid_loc,
)
from repro.backend.branch_elim import inline_branch_conditions
from repro.backend.reorder import build_dataflow_graph
from repro.errors import LayoutError
from repro.frontend import check_program
from repro.midend import normalize_program
from repro.midend.normalize import NArrayOp, NGenerate, NIf, NOp


FIGURE6 = """
const int NUM_HOSTS = 64;
const int NUM_PORTS = 16;
const int NUM_PORTS_X2 = 32;
const int NUM_PORTS_X3 = 48;
global nexthops = new Array<<32>>(NUM_HOSTS);
global pcts = new Array<<32>>(NUM_PORTS_X3);
global hcts = new Array<<32>>(NUM_HOSTS);
memop plus(int cur, int x){return cur + x;}
event count_pkt(int dst, int proto);
handle count_pkt(int dst, int proto) {
  int idx = Array.get(nexthops, dst);
  if (proto != TCP) {
    if (proto == UDP) {
      idx = idx + NUM_PORTS;
    } else {
      idx = idx + NUM_PORTS_X2;
    }
  }
  Array.set(pcts, idx, plus, 1);
  if (proto == TCP) {
    Array.set(hcts, dst, plus, 1);
  }
}
"""


@pytest.fixture(scope="module")
def figure6_compiled():
    return compile_program(FIGURE6, name="figure6")


@pytest.fixture(scope="module")
def figure6_normalized():
    checked = check_program(FIGURE6)
    return checked, normalize_program(checked.info)


# -- normalisation ---------------------------------------------------------------
def test_normalized_handler_has_atomic_statements(figure6_normalized):
    _, normalized = figure6_normalized
    handler = normalized["count_pkt"]
    kinds = {type(s) for s in handler.flat_statements()}
    assert kinds <= {NOp, NArrayOp, NIf, NGenerate} | kinds
    assert len(handler.array_ops()) == 3


def test_normalized_conditions_are_simple(figure6_normalized):
    _, normalized = figure6_normalized
    for stmt in normalized["count_pkt"].flat_statements():
        if isinstance(stmt, NIf):
            assert stmt.cond.op.value in ("==", "!=", "<", ">", "<=", ">=")


def test_function_inlining_removes_calls():
    source = """
    global t0 = new Array<<32>>(8);
    global t1 = new Array<<32>>(8);
    memop plus(int a, int b) { return a + b; }
    fun int bump(Array<<32>> arr, int i) { return Array.get(arr, i, plus, 1); }
    event e(int i);
    handle e(int i) { int v = bump(t0, i); int w = bump(t1, v); }
    """
    checked = check_program(source)
    normalized = normalize_program(checked.info)
    ops = normalized["e"].array_ops()
    assert len(ops) == 2 and {op.array for op in ops} == {"t0", "t1"}


def test_generate_resolution_tracks_delay_and_location():
    source = """
    const group PEERS = {2, 3};
    event ping(int x);
    event pong(int x);
    handle ping(int x) {
      event p = pong(x);
      generate Event.delay(Event.locate(p, 5), 10ms);
      mgenerate Event.locate(pong(x), PEERS);
    }
    """
    checked = check_program(source)
    gens = normalize_program(checked.info)["ping"].generates()
    assert len(gens) == 2
    delayed = gens[0]
    assert delayed.event == "pong"
    assert getattr(delayed.delay, "value", None) == 10_000_000
    assert getattr(delayed.location, "value", None) == 5
    assert gens[1].group == "PEERS" and gens[1].multicast


# -- table graph ---------------------------------------------------------------------
def test_table_graph_kinds_and_longest_path(figure6_normalized):
    _, normalized = figure6_normalized
    graph = build_table_graph(normalized["count_pkt"])
    kinds = [t.kind for t in graph.tables]
    assert kinds.count(TableKind.MEMORY) == 3
    assert kinds.count(TableKind.BRANCH) >= 2
    # the longest control path includes the branch tables (unoptimised cost)
    assert graph.longest_path_length() >= 6


def test_branch_inlining_removes_branch_tables(figure6_normalized):
    _, normalized = figure6_normalized
    graph = build_table_graph(normalized["count_pkt"])
    ordered = inline_branch_conditions(graph)
    assert all(t.kind is not TableKind.BRANCH for t in ordered)
    # the idx adjustments only run on non-TCP paths
    conditional = [t for t in ordered if t.path_conditions]
    assert conditional, "some tables should carry path conditions"


def test_table_after_join_has_no_conditions(figure6_normalized):
    _, normalized = figure6_normalized
    graph = build_table_graph(normalized["count_pkt"])
    ordered = inline_branch_conditions(graph)
    pcts_tables = [t for t in ordered if t.array == "pcts"]
    assert pcts_tables and pcts_tables[0].path_conditions == []


def test_dataflow_graph_orders_raw_dependencies(figure6_normalized):
    _, normalized = figure6_normalized
    graph = build_table_graph(normalized["count_pkt"])
    ordered = inline_branch_conditions(graph)
    dataflow = build_dataflow_graph(ordered)
    raw = [d for d in dataflow.deps if d.kind == "raw"]
    assert raw, "reading idx after writing it must create RAW dependencies"


def test_mutually_exclusive_branches_share_a_stage(figure6_compiled):
    # Figure 6(3): the two idx adjustments are in exclusive branches and the
    # optimised layout needs only 3 stages
    assert figure6_compiled.stages() == 3


# -- layout / optimisation -------------------------------------------------------------
def test_optimized_layout_uses_fewer_stages_than_unoptimized(figure6_compiled):
    assert figure6_compiled.stages() < figure6_compiled.unoptimized_stages()
    assert figure6_compiled.stage_ratio() > 1.0


def test_array_stages_follow_declaration_order(figure6_compiled):
    stages = figure6_compiled.layout.array_stages
    assert stages["nexthops"] <= stages["pcts"]


def test_unoptimized_option_places_one_table_per_stage():
    checked = check_program(FIGURE6)
    normalized = normalize_program(checked.info)
    layout = build_layout(checked.info, normalized, options=MergeOptions(optimize=False, merge_tables=False))
    assert layout.num_stages() >= layout.total_atomic_tables() - 2  # branch-free tables, 1 per stage


def test_merge_without_reordering_is_worse_or_equal():
    checked = check_program(FIGURE6)
    normalized = normalize_program(checked.info)
    full = build_layout(checked.info, normalized, options=MergeOptions())
    no_reorder = build_layout(checked.info, normalized, options=MergeOptions(reorder=False))
    assert no_reorder.num_stages() >= full.num_stages()


def test_stage_limit_enforcement():
    # a long chain of dependent arrays cannot fit a 3-stage target
    decls = "\n".join(f"global g{i} = new Array<<32>>(8);" for i in range(6))
    chain = " ".join(
        f"int v{i+1} = Array.get(g{i}, v{i});" for i in range(6)
    )
    source = f"{decls}\nevent e(int v0);\nhandle e(int v0) {{ {chain} }}"
    from repro.backend.resources import TofinoModel

    options = CompilerOptions(target=TofinoModel(num_stages=3), enforce_stage_limit=True)
    with pytest.raises(LayoutError):
        compile_program(source, options=options)


def test_alu_instructions_per_stage_counts_all_tables(figure6_compiled):
    per_stage = figure6_compiled.alu_instructions_per_stage()
    assert sum(per_stage) == figure6_compiled.layout.total_atomic_tables()
    assert max(per_stage) >= 2  # nexthops_get and hcts_fset share stage 0


# -- P4 generation -----------------------------------------------------------------------
def test_p4_contains_register_per_global(figure6_compiled):
    text = figure6_compiled.p4.full_text()
    for name in ("reg_nexthops", "reg_pcts", "reg_hcts"):
        assert name in text


def test_p4_contains_event_header_and_parser(figure6_compiled):
    text = figure6_compiled.p4.full_text()
    assert "header ev_count_pkt_t" in text
    assert "parse_ev_count_pkt" in text
    assert "event_dispatcher" in text


def test_p4_register_action_reflects_memop(figure6_compiled):
    text = figure6_compiled.p4.full_text()
    assert "RegisterAction" in text and "mem = mem + 1" in text.replace("  ", " ")


def test_p4_line_counts_sum_to_total(figure6_compiled):
    counts = figure6_compiled.p4.line_counts()
    assert counts["total"] == sum(v for k, v in counts.items() if k != "total")


def test_naive_p4_is_longer_than_compiler_p4():
    compiled = compile_program(FIGURE6, options=CompilerOptions(emit_naive_p4=True))
    assert compiled.naive_p4_loc() >= compiled.p4_loc()


def test_lucid_loc_ignores_comments_and_blank_lines():
    source = "// comment\n\nconst int X = 1;\n/* block\ncomment */\nconst int Y = 2;\n"
    assert count_lucid_loc(source) == 2
