"""A discrete-event simulation of Lucid switches in a network (Section 3.2).

The network plays the role of the paper's data-plane event scheduler plus the
physical links between switches:

* events generated for the *local* switch re-enter the pipeline through the
  recirculation port (~600 ns per pass in the paper's measurements);
* events located at *another* switch are serialised into event packets and
  forwarded over a link (~1 µs, "bound only by the propagation and queueing
  delays of the physical hardware");
* delayed events sit in the pausable delay queue, which is released every
  ``delay_release_interval_ns`` (100 µs in the paper), so their actual delay is
  quantised to the release interval — the source of the ~50 µs delay error
  measured in Figure 14.

The simulation also accounts recirculation bandwidth per switch so the
overhead analyses of Sections 7.2-7.3 can be reproduced.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.frontend.type_checker import CheckedProgram, check_program
from repro.interp.engine import SwitchEngine, make_engine, resolve_engine_name
from repro.interp.events import LOCAL, EventInstance
from repro.interp.interpreter import ExecutionResult, SwitchRuntime
from repro.obs.metrics import DEFAULT_NS_BUCKETS, OBS as _OBS, REGISTRY


class _Metrics:
    """Scheduler-owned instruments, declared once at import time.  Hot paths
    touch these only behind an ``if _OBS.enabled:`` guard — see
    :mod:`repro.obs.metrics` for the cost model."""

    events_handled = REGISTRY.counter(
        "repro_network_events_handled_total",
        "Events dispatched to a handler, by event name.", labelnames=("event",))
    events_generated = REGISTRY.counter(
        "repro_network_events_generated_total",
        "Events produced by generate statements.")
    events_dropped = REGISTRY.counter(
        "repro_network_events_dropped_total",
        "Events whose handler declared them dropped.")
    remote_sends = REGISTRY.counter(
        "repro_network_remote_sends_total",
        "Events serialised into packets and sent over a link.")
    link_drops = REGISTRY.counter(
        "repro_network_link_drops_total",
        "Remote events lost because the link to their target was down.")
    recirc_drops = REGISTRY.counter(
        "repro_network_recirc_drops_total",
        "Local events refused admission by a bounded recirculation queue.")
    recirculations = REGISTRY.counter(
        "repro_network_recirculations_total",
        "Passes through a recirculation port.")
    recirc_bytes = REGISTRY.counter(
        "repro_network_recirc_bytes_total",
        "Bytes carried through recirculation ports.")
    delay_parks = REGISTRY.counter(
        "repro_network_delay_parks_total",
        "Delayed local events parked in the pausable delay queue.")
    event_delay_ns = REGISTRY.histogram(
        "repro_network_event_delay_ns",
        "Requested delay of parked events, simulated ns.",
        buckets=DEFAULT_NS_BUCKETS)
    heap_depth = REGISTRY.gauge(
        "repro_network_heap_depth",
        "Pending events in the scheduler heap after the last dispatch.")
    sim_time_ns = REGISTRY.gauge(
        "repro_network_sim_time_ns",
        "Simulated clock at the last dispatch.")
    dispatch_seconds = REGISTRY.histogram(
        "repro_network_dispatch_seconds",
        "Wall-clock seconds one engine.run() call took.")


@dataclass
class SchedulerConfig:
    """Timing constants of the event scheduler and the simulated hardware."""

    #: one pass through the ingress+egress pipeline
    pipeline_latency_ns: int = 400
    #: latency of one recirculation (egress -> recirculation port -> ingress)
    recirculation_latency_ns: int = 600
    #: one-way latency between neighbouring switches
    link_latency_ns: int = 1_000
    #: release interval of the pausable delay queue (100 us in the paper)
    delay_release_interval_ns: int = 100_000
    #: whether delayed events use the pausable queue (True) or recirculate
    #: continuously until their delay expires (the Figure 14 baseline)
    use_delay_queue: bool = True
    #: recirculation port bandwidth (bits/s), for overhead accounting
    recirc_bandwidth_bps: float = 100e9


@dataclass
class SwitchStats:
    """Per-switch counters collected during simulation."""

    events_handled: int = 0
    events_generated: int = 0
    recirculations: int = 0
    recirculated_bytes: int = 0
    remote_sends: int = 0
    drops: int = 0
    #: remote events lost because the link to their target was down
    link_drops: int = 0
    #: local events lost because the engine's recirculation queue overflowed
    #: (only capacity-modelling engines — e.g. PISA — ever refuse admission)
    recirc_drops: int = 0
    handled_by_event: Dict[str, int] = field(default_factory=dict)

    def recirc_bandwidth_bps(self, duration_ns: int) -> float:
        if duration_ns <= 0:
            return 0.0
        return self.recirculated_bytes * 8 / (duration_ns * 1e-9)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; round-trips through :meth:`from_dict`
        (used by :meth:`Network.snapshot` and the shard worker transport)."""
        return {
            "events_handled": self.events_handled,
            "events_generated": self.events_generated,
            "recirculations": self.recirculations,
            "recirculated_bytes": self.recirculated_bytes,
            "remote_sends": self.remote_sends,
            "drops": self.drops,
            "link_drops": self.link_drops,
            "recirc_drops": self.recirc_drops,
            "handled_by_event": dict(self.handled_by_event),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "SwitchStats":
        return cls(
            events_handled=state["events_handled"],
            events_generated=state["events_generated"],
            recirculations=state["recirculations"],
            recirculated_bytes=state["recirculated_bytes"],
            remote_sends=state["remote_sends"],
            drops=state["drops"],
            link_drops=state["link_drops"],
            recirc_drops=state["recirc_drops"],
            handled_by_event=dict(state["handled_by_event"]),
        )


class Switch:
    """One Lucid switch: a program instance plus its runtime state.

    ``engine`` selects the execution substrate (see
    :mod:`repro.interp.engine`):

    * ``"compiled"`` (the default) — handlers lowered to Python closures;
    * ``"reference"`` — the tree-walking AST interpreter;
    * ``"pisa"`` — the program compiled through the full backend and
      executed stage-by-stage on the pipeline layout, with recirculation
      and delay-queue cost accounting.

    All engines are behaviourally identical (pinned by the differential
    conformance and scenario-parity suites).  ``fast_path=`` is kept as a
    deprecated boolean alias (``True`` → compiled, ``False`` → reference).
    """

    def __init__(
        self,
        switch_id: int,
        checked: CheckedProgram,
        engine: Optional[str] = None,
        fast_path: Optional[bool] = None,
        config: Optional[SchedulerConfig] = None,
    ):
        self.id = switch_id
        name = resolve_engine_name(engine, fast_path)
        self.runtime = SwitchRuntime(
            checked, switch_id=switch_id, fast_path=(name != "reference")
        )
        self.engine: SwitchEngine = make_engine(name, self.runtime, config=config)
        self.engine_name = name
        #: backwards-compatible alias for the engine's executor object
        self.interpreter = self.engine.executor
        self.stats = SwitchStats()
        self.log: List[str] = []
        #: push counter for events generated *by* this switch — the low bits
        #: of their deterministic heap keys (see the _QueuedEvent comment)
        self.origin_seq = 0
        self._key_base = (switch_id + 1) << GEN_KEY_SHIFT

    @property
    def fast_path(self) -> bool:
        """Deprecated: ``True`` for any engine faster than the tree walker."""
        return self.engine_name != "reference"

    def array(self, name: str):
        return self.runtime.array(name)

    def bind_extern(self, name: str, fn: Callable[..., int]) -> None:
        self.runtime.bind_extern(name, fn)


# queue entries are plain tuples (time_ns, key, switch_id, event): the heap
# compares them at C speed, and the key field breaks time ties
# deterministically before the (incomparable) event is ever inspected.
#
# The key is *content-derived*, not execution-order-derived, so the same
# seed produces the same pop order no matter how the network is executed —
# in one process or partitioned across shard workers (repro.shard):
#
# * externally pushed entries (inject(), re-queued control actions) use a
#   small network-level serial, always < 2**GEN_KEY_SHIFT;
# * generated events use ``((origin_switch + 1) << GEN_KEY_SHIFT) | seq``
#   where ``seq`` is the origin switch's push counter
#   (:attr:`Switch.origin_seq`) — computable locally by whichever shard
#   owns the origin switch.
#
# Externals therefore always win time ties against generated events
# (matching the streaming drain's "source item first" rule), and two
# generated events order by (origin switch, per-origin push order).  Both
# are exactly reproducible across any shard partitioning: an event's key
# depends only on dispatches at strictly earlier timestamps (all scheduling
# latencies are positive), so induction over timestamps gives one global
# (time, key) order.
_QueuedEvent = Tuple[int, int, int, EventInstance]

#: bit position splitting external serial keys from generated-event keys
GEN_KEY_SHIFT = 40

#: sentinel "switch id" for control actions in a streaming event source: an
#: item ``(time_ns, CONTROL, fn)`` calls ``fn(network)`` at ``time_ns`` instead
#: of dispatching an event (used e.g. for scheduled link failures)
CONTROL = -2

#: one item of a streaming event source: ``(time_ns, switch_id, event)``, or
#: ``(time_ns, CONTROL, fn)`` for a control action
SourceItem = Tuple[int, int, Union[EventInstance, Callable[["Network"], None]]]

#: format tag and version of :meth:`Network.snapshot` values; bump the
#: version whenever a field is added/changed so stale checkpoints are
#: refused instead of silently misread
SNAPSHOT_FORMAT = "repro-network-snapshot"
# version 2: heap keys are content-derived (external serial / origin-switch
# composite — see _QueuedEvent) and each switch records its ``origin_seq``
SNAPSHOT_VERSION = 2


@dataclass
class TraceEntry:
    """One handled event, for test assertions and latency measurements."""

    time_ns: int
    switch_id: int
    event: EventInstance
    result: ExecutionResult


class Network:
    """A set of Lucid switches connected by point-to-point links."""

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        engine: Optional[str] = None,
        fast_path: Optional[bool] = None,
    ):
        self.config = config or SchedulerConfig()
        #: default engine name for switches added to this network (see
        #: :class:`Switch`); ``fast_path=`` is the deprecated boolean alias
        self.engine = resolve_engine_name(engine, fast_path)
        self.switches: Dict[int, Switch] = {}
        self.links: Dict[Tuple[int, int], int] = {}
        self.now_ns = 0
        self._queue: List[_QueuedEvent] = []
        self._serial = 0
        #: directed link -> number of active failures (overlapping failures
        #: of one link only clear when every one of them has recovered)
        self._down_links: Dict[Tuple[int, int], int] = {}
        self.trace: List[TraceEntry] = []
        self.trace_enabled = True
        self.on_handle: Optional[Callable[[TraceEntry], None]] = None
        #: optional :class:`repro.obs.trace.Tracer` — one span per dispatch,
        #: parent links carried on ``EventInstance.trace_parent``
        self.tracer = None
        #: optional :class:`repro.obs.profile.HandlerProfiler` — per-handler
        #: wall/sim-time accounting, fed by :meth:`_dispatch`
        self.profiler = None
        #: the streaming source of the last interrupted :meth:`run`, if it
        #: was left partially consumed (guards :meth:`reset`, see there)
        self._partial_source: Optional[Iterable[SourceItem]] = None
        #: key of the heap entry behind the event most recently handed to
        #: ``on_handle``/:attr:`trace` (None for streamed source items) —
        #: lets shard workers reconstruct the global dispatch order
        self._last_pop_key: Optional[int] = None
        #: shard mode (see :meth:`set_shard`): the set of switch ids this
        #: process owns, and the export callback for events bound elsewhere
        self._shard_owned: Optional[frozenset] = None
        self._shard_export: Optional[Callable[[int, int, int, EventInstance], None]] = None

    @property
    def fast_path(self) -> bool:
        """Deprecated alias: ``True`` unless the default engine is the
        tree-walking reference interpreter."""
        return self.engine != "reference"

    # -- topology -------------------------------------------------------------
    def add_switch(
        self,
        switch_id: int,
        program: "CheckedProgram | str",
        fast_path: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> Switch:
        """Add a switch running ``program`` (source text or a checked program).

        ``engine`` overrides the network-wide engine default for this switch
        (``"reference"``, ``"compiled"``, or ``"pisa"``) — networks may mix
        engines freely, e.g. one PISA-modelled switch inside an interpreted
        fabric.  ``fast_path`` is the deprecated boolean alias.
        """
        if switch_id in self.switches:
            raise SimulationError(f"switch {switch_id} already exists")
        checked = check_program(program) if isinstance(program, str) else program
        name = resolve_engine_name(engine, fast_path, default=self.engine)
        switch = Switch(switch_id, checked, engine=name, config=self.config)
        self.switches[switch_id] = switch
        return switch

    def add_link(self, a: int, b: int, latency_ns: Optional[int] = None) -> None:
        """Add a bidirectional link between switches ``a`` and ``b``."""
        latency = latency_ns if latency_ns is not None else self.config.link_latency_ns
        self.links[(a, b)] = latency
        self.links[(b, a)] = latency

    def link_latency(self, src: int, dst: int) -> int:
        """Latency of a direct send from ``src`` to ``dst``.

        The simulated fabric is logically full-mesh: a pair with no declared
        link still delivers at the default latency (remote events model an
        overlay on top of whatever underlay routing exists).  Declared links
        only override the latency — and are what :meth:`fail_link` acts on.
        """
        if src == dst:
            return 0
        return self.links.get((src, dst), self.config.link_latency_ns)

    def fail_link(self, a: int, b: int) -> None:
        """Take the ``a``--``b`` link down (both directions): direct remote
        sends between ``a`` and ``b`` are dropped and counted as
        ``link_drops``.  Failures nest: with overlapping failures of the same
        link, the link stays down until every failure has been restored.
        Only the direct (source, target) pair is consulted — sends between
        other pairs are unaffected (see :meth:`link_latency`)."""
        for pair in ((a, b), (b, a)):
            self._down_links[pair] = self._down_links.get(pair, 0) + 1

    def restore_link(self, a: int, b: int) -> None:
        """Undo one :meth:`fail_link` of the ``a``--``b`` link."""
        for pair in ((a, b), (b, a)):
            count = self._down_links.get(pair, 0)
            if count <= 1:
                self._down_links.pop(pair, None)
            else:
                self._down_links[pair] = count - 1

    def link_is_down(self, a: int, b: int) -> bool:
        return (a, b) in self._down_links

    def switch(self, switch_id: int) -> Switch:
        try:
            return self.switches[switch_id]
        except KeyError:
            raise SimulationError(f"no switch with id {switch_id}") from None

    # -- scheduling -------------------------------------------------------------
    def _push(
        self,
        time_ns: int,
        switch_id: int,
        event: EventInstance,
        key: Optional[int] = None,
    ) -> None:
        """Queue ``event`` for ``switch_id`` at ``time_ns``.

        ``key`` is the deterministic tie-break key (see the _QueuedEvent
        comment).  Callers scheduling *generated* events pass the origin
        switch's content-derived key; external pushes leave it None and get
        the next network-level serial.  In shard mode, events bound for a
        switch another worker owns are handed to the export callback instead
        of entering the local heap.
        """
        if key is None:
            self._serial += 1
            key = self._serial
        if self._shard_owned is not None and switch_id != CONTROL:
            if switch_id not in self._shard_owned:
                self._shard_export(time_ns, key, switch_id, event)
                return
        heapq.heappush(self._queue, (time_ns, key, switch_id, event))

    def inject(self, switch_id: int, event: EventInstance, at_ns: Optional[int] = None) -> None:
        """Inject an event (e.g. the arrival of a data packet) from outside."""
        if switch_id not in self.switches:
            raise SimulationError(f"no switch with id {switch_id}")
        time_ns = self.now_ns if at_ns is None else at_ns
        self._push(max(time_ns, self.now_ns), switch_id, event)

    # -- sharding ----------------------------------------------------------------
    def set_shard(
        self,
        owned: Optional[Iterable[int]],
        export: Optional[Callable[[int, int, int, EventInstance], None]] = None,
    ) -> None:
        """Put the network in shard-worker mode (or leave it: ``owned=None``).

        ``owned`` is the set of switch ids this process executes; any event
        scheduled for a switch outside it is routed to ``export(time_ns, key,
        switch_id, event)`` instead of the local heap.  The owning worker
        re-injects such events verbatim via :meth:`enqueue_remote`, so the
        merged heap order across all shards equals the single-process order
        (keys are content-derived — see the _QueuedEvent comment).  Used by
        :mod:`repro.shard`; link-failure state is global, so control actions
        must be replayed on every shard.
        """
        if owned is None:
            self._shard_owned = None
            self._shard_export = None
            return
        if export is None:
            raise SimulationError("set_shard: an export callback is required")
        self._shard_owned = frozenset(owned)
        self._shard_export = export

    def enqueue_remote(
        self, time_ns: int, key: int, switch_id: int, event: EventInstance
    ) -> None:
        """Deliver an event exported by another shard, preserving the exact
        heap key it would have carried in a single-process run.  The barrier
        protocol guarantees ``time_ns`` is still in this shard's future, so
        no clock clamping is applied."""
        heapq.heappush(self._queue, (time_ns, key, switch_id, event))

    def _delay_after_queue(self, delay_ns: int) -> int:
        """Delay actually experienced when using the pausable delay queue: the
        queue releases only at multiples of the release interval."""
        interval = self.config.delay_release_interval_ns
        if delay_ns <= 0 or not self.config.use_delay_queue:
            return max(0, delay_ns)
        periods = -(-delay_ns // interval)  # ceil division
        return periods * interval

    def _schedule_generated(
        self,
        source: Switch,
        event: EventInstance,
        trace_parent: Optional[int] = None,
    ) -> None:
        source.stats.events_generated += 1
        obs_on = _OBS.enabled
        if obs_on:
            _Metrics.events_generated.inc()
        for target in event.targets(source.id):
            if target == source.id:
                # local: the event packet recirculates at least once.  The
                # engine may model a bounded recirculation/delay queue and
                # refuse admission — a PISA queue overflow, counted like a
                # link drop.
                if not source.engine.admit_recirculation(event):
                    source.stats.recirc_drops += 1
                    if obs_on:
                        _Metrics.recirc_drops.inc()
                    continue
                delay = self._delay_after_queue(event.delay_ns)
                arrival = self.now_ns + self.config.recirculation_latency_ns + delay
                recirc_passes = 1
                if event.delay_ns > 0 and not self.config.use_delay_queue:
                    # without the pausable queue the packet recirculates
                    # continuously until its delay expires
                    recirc_passes += max(
                        0, event.delay_ns // max(1, self.config.recirculation_latency_ns)
                    )
                source.stats.recirculations += recirc_passes
                source.stats.recirculated_bytes += recirc_passes * event.payload_bytes()
                if obs_on:
                    _Metrics.recirculations.inc(recirc_passes)
                    _Metrics.recirc_bytes.inc(recirc_passes * event.payload_bytes())
                    if event.delay_ns > 0 and self.config.use_delay_queue:
                        _Metrics.delay_parks.inc()
                        _Metrics.event_delay_ns.observe(event.delay_ns)
                source.engine.on_recirculate(event)
            else:
                if (source.id, target) in self._down_links:
                    source.stats.link_drops += 1
                    if obs_on:
                        _Metrics.link_drops.inc()
                    continue
                source.stats.remote_sends += 1
                if obs_on:
                    _Metrics.remote_sends.inc()
                arrival = (
                    self.now_ns
                    + self.config.pipeline_latency_ns
                    + self.link_latency(source.id, target)
                    + self._delay_after_queue(event.delay_ns)
                )
            delivered = EventInstance(
                name=event.name,
                args=event.args,
                delay_ns=0,
                location=LOCAL,
                group=None,
                source=source.id,
                trace_parent=trace_parent,
            )
            source.origin_seq += 1
            self._push(arrival, target, delivered, source._key_base | source.origin_seq)

    # -- execution -----------------------------------------------------------------
    def _dispatch(self, switch: Switch, event: EventInstance) -> ExecutionResult:
        """Run one event on one switch and apply all per-event accounting
        (stats, logs, generated-event scheduling).  Shared by :meth:`step`
        and the batched drain so the two loops cannot drift apart."""
        switch.runtime.time_ns = self.now_ns
        if event.source == switch.id:
            # the event was generated here and came back through the
            # recirculation port — let the engine release its queue slot
            switch.engine.on_recirc_arrival(event)
        tracer = self.tracer
        span_id = (
            tracer.begin_handle(
                event, switch.id, self.now_ns, self.config.pipeline_latency_ns
            )
            if tracer is not None
            else None
        )
        prof = self.profiler
        obs_on = _OBS.enabled
        if prof is not None or obs_on:
            start = perf_counter()
            result = switch.engine.run(event)
            wall_s = perf_counter() - start
            if prof is not None:
                prof.record(event.name, wall_s, self.config.pipeline_latency_ns)
            if obs_on:
                _Metrics.dispatch_seconds.observe(wall_s)
        else:
            result = switch.engine.run(event)
        stats = switch.stats
        stats.events_handled += 1
        stats.handled_by_event[event.name] = stats.handled_by_event.get(event.name, 0) + 1
        if result.dropped:
            stats.drops += 1
        if result.prints:
            switch.log.extend(result.prints)
        if obs_on:
            _Metrics.events_handled.labels(event.name).inc()
            _Metrics.heap_depth.set(len(self._queue))
            _Metrics.sim_time_ns.set(self.now_ns)
            if result.dropped:
                _Metrics.events_dropped.inc()
        for generated in result.generated:
            self._schedule_generated(switch, generated, span_id)
        return result

    def step(self) -> Optional[TraceEntry]:
        """Execute the next pending event; return its trace entry (or None)."""
        if not self._queue:
            return None
        time_ns, key, switch_id, event = heapq.heappop(self._queue)
        self._last_pop_key = key
        self.now_ns = max(self.now_ns, time_ns)
        if switch_id == CONTROL:
            # a control action re-queued by an interrupted streaming run
            event(self)
            return None
        switch = self.switches.get(switch_id)
        if switch is None:
            return None
        result = self._dispatch(switch, event)
        entry = TraceEntry(time_ns=self.now_ns, switch_id=switch.id, event=event, result=result)
        if self.trace_enabled:
            self.trace.append(entry)
        if self.on_handle is not None:
            self.on_handle(entry)
        return entry

    def run(
        self,
        until_ns: Optional[int] = None,
        max_events: Optional[int] = None,
        source: Optional[Iterable[SourceItem]] = None,
        batch: bool = True,
    ) -> int:
        """Run the simulation until the queue drains, ``until_ns`` is reached,
        or ``max_events`` have been handled.  Returns the number of events
        handled by this call.

        ``source`` streams externally injected traffic: an iterable of
        ``(time_ns, switch_id, event)`` items in non-decreasing time order
        (or ``(time_ns, CONTROL, fn)`` control actions).  The drain pulls one
        item at a time and merges it with the internal event heap, so
        arbitrarily long workloads run in memory independent of their length —
        nothing is materialised — *provided tracing is off*
        (``trace_enabled=False``, as the scenario runner configures): with
        tracing on, :attr:`trace` still accumulates one entry per handled
        event.  A streaming run returns once the source is
        exhausted and the queue is drained up to the last source timestamp
        (or ``until_ns`` when given); later events — e.g. self-perpetuating
        control loops — stay queued for a subsequent plain :meth:`run`.

        When tracing is off (``trace_enabled=False`` and no ``on_handle``
        callback) the drain runs in a batched mode that skips per-event
        :class:`TraceEntry` allocation entirely.  With ``batch=True`` (the
        default) and no observer of any kind attached (no tracer, no
        profiler, obs metrics disabled), the drain additionally inlines the
        per-event dispatch — engine/stats/log lookups are hoisted out of the
        loop instead of re-entering :meth:`_dispatch` per event.  The fast
        drain is behaviourally identical; ``batch=False`` forces the
        plain path (useful for A/B-ing the scheduler itself).
        """
        if source is not None:
            return self._run_streaming(source, until_ns, max_events, batch)
        if not self.trace_enabled and self.on_handle is None:
            return self._run_batched(until_ns, max_events, batch)
        handled = 0
        while self._queue:
            if max_events is not None and handled >= max_events:
                break
            if until_ns is not None and self._queue[0][0] > until_ns:
                break
            if self.step() is not None:
                handled += 1
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)
        return handled

    def _fast_eligible(self, batch: bool) -> bool:
        """Whether the inlined batch drain may be used: nothing observes
        individual dispatches (per-event accounting still happens; only the
        observation hooks checked here would be skipped)."""
        return (
            batch
            and self.tracer is None
            and self.profiler is None
            and not _OBS.enabled
        )

    def _fast_switch_entry(self, switch: Switch) -> tuple:
        """Hoisted per-switch lookups for the inlined drain: runtime, bound
        engine.run, stats fields, log, and the recirc-arrival hook (None when
        the engine does not override the no-op base method)."""
        engine = switch.engine
        hook = (
            engine.on_recirc_arrival
            if type(engine).on_recirc_arrival is not SwitchEngine.on_recirc_arrival
            else None
        )
        return (
            switch,
            switch.runtime,
            # engines may expose an obs-free ``run_fast`` for this drain
            # (the drain only engages when obs/tracing is off, so the
            # per-event observability checks inside ``run`` are dead weight)
            getattr(engine, "run_fast", engine.run),
            switch.stats,
            switch.stats.handled_by_event,
            switch.log,
            hook,
        )

    def _run_batched(
        self, until_ns: Optional[int], max_events: Optional[int], batch: bool = True
    ) -> int:
        """Trace-free drain: identical scheduling semantics to :meth:`step`
        in a loop, minus the per-event trace-entry allocation.  When nothing
        observes dispatches (:meth:`_fast_eligible`) the loop also inlines
        :meth:`_dispatch` with per-switch lookups hoisted out."""
        handled = 0
        queue = self._queue
        switches = self.switches
        pop = heapq.heappop
        fast = self._fast_eligible(batch)
        fast_cache: Dict[int, tuple] = {}
        while queue:
            if max_events is not None and handled >= max_events:
                break
            if until_ns is not None and queue[0][0] > until_ns:
                break
            time_ns, _, switch_id, event = pop(queue)
            if time_ns > self.now_ns:
                self.now_ns = time_ns
            if switch_id == CONTROL:
                event(self)
                # the control action may have attached a tracer/profiler or
                # toggled obs — re-check eligibility and drop stale hoists
                fast = self._fast_eligible(batch)
                fast_cache.clear()
                continue
            if fast:
                cached = fast_cache.get(switch_id)
                if cached is None:
                    switch = switches.get(switch_id)
                    if switch is None:
                        continue
                    cached = fast_cache[switch_id] = self._fast_switch_entry(switch)
                switch, runtime, run, stats, by_event, log, hook = cached
                runtime.time_ns = self.now_ns
                if hook is not None and event.source == switch_id:
                    hook(event)
                result = run(event)
                stats.events_handled += 1
                name = event.name
                by_event[name] = by_event.get(name, 0) + 1
                if result.dropped:
                    stats.drops += 1
                if result.prints:
                    log.extend(result.prints)
                if result.generated:
                    for generated in result.generated:
                        self._schedule_generated(switch, generated, None)
                handled += 1
                continue
            switch = switches.get(switch_id)
            if switch is None:
                continue
            self._dispatch(switch, event)
            handled += 1
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)
        return handled

    def _run_streaming(
        self,
        source: Iterable[SourceItem],
        until_ns: Optional[int],
        max_events: Optional[int],
        batch: bool = True,
    ) -> int:
        """Merge a time-ordered external event stream with the internal heap.

        The pop side must stay semantically identical to :meth:`step` and
        :meth:`_run_batched` (clock advance, CONTROL dispatch, missing-switch
        skip); all per-event accounting is shared through :meth:`_dispatch`.

        Holds at most one not-yet-due source item at a time.  On equal
        timestamps the source item runs first, which matches the semantics of
        injecting the whole stream up front (pre-run injections get earlier
        serial numbers than generated events).  If the run stops early
        (``max_events``/``until_ns``) while a source item is held, the item is
        pushed onto the queue so it is not lost.  A source that yields
        nothing degenerates to a plain :meth:`run` (full drain).
        """
        handled = 0
        items = iter(source)
        pending: Optional[SourceItem] = None
        last_source_ns: Optional[int] = None
        exhausted = False
        traced = self.trace_enabled or self.on_handle is not None
        queue = self._queue
        fast = not traced and self._fast_eligible(batch)
        # semi-fast: a trace/on_handle consumer wants per-event entries, but
        # no tracer/profiler/obs watches the dispatch itself — inline it with
        # hoisted lookups and build only the TraceEntry on top (the dominant
        # shape for scenario runs with streaming invariants)
        semi = traced and self._fast_eligible(batch)
        fast_cache: Dict[int, tuple] = {}
        while True:
            if pending is None and not exhausted:
                pending = next(items, None)
                if pending is None:
                    exhausted = True
            if max_events is not None and handled >= max_events:
                break
            take_source = pending is not None and (
                not queue or pending[0] <= queue[0][0]
            )
            if take_source:
                time_ns, switch_id, payload = pending
                if until_ns is not None and time_ns > until_ns:
                    break
                pending = None
                if time_ns > self.now_ns:
                    self.now_ns = time_ns
                last_source_ns = self.now_ns
                if switch_id == CONTROL:
                    payload(self)
                    fast = not traced and self._fast_eligible(batch)
                    semi = traced and self._fast_eligible(batch)
                    fast_cache.clear()
                    continue
                switch = self.switches.get(switch_id)
                if switch is None:
                    raise SimulationError(f"no switch with id {switch_id}")
                event = payload
                if traced:
                    self._last_pop_key = None
            elif queue:
                top_ns = queue[0][0]
                if until_ns is not None and top_ns > until_ns:
                    break
                if (
                    exhausted
                    and until_ns is None
                    and last_source_ns is not None
                    and top_ns > last_source_ns
                ):
                    break
                time_ns, pop_key, switch_id, event = heapq.heappop(queue)
                if traced:
                    self._last_pop_key = pop_key
                if time_ns > self.now_ns:
                    self.now_ns = time_ns
                if switch_id == CONTROL:
                    event(self)
                    fast = not traced and self._fast_eligible(batch)
                    semi = traced and self._fast_eligible(batch)
                    fast_cache.clear()
                    continue
                switch = self.switches.get(switch_id)
                if switch is None:
                    continue
            else:
                break
            if fast:
                # inlined _dispatch (see _run_batched); nothing observes
                # dispatches here, so TraceEntry is never built either
                cached = fast_cache.get(switch.id)
                if cached is None:
                    cached = fast_cache[switch.id] = self._fast_switch_entry(switch)
                _, runtime, run, stats, by_event, log, hook = cached
                runtime.time_ns = self.now_ns
                if hook is not None and event.source == switch.id:
                    hook(event)
                result = run(event)
                stats.events_handled += 1
                name = event.name
                by_event[name] = by_event.get(name, 0) + 1
                if result.dropped:
                    stats.drops += 1
                if result.prints:
                    log.extend(result.prints)
                if result.generated:
                    for generated in result.generated:
                        self._schedule_generated(switch, generated, None)
                handled += 1
                continue
            if semi:
                # inlined _dispatch (tracer/profiler/obs are off — only the
                # TraceEntry consumers below observe this event)
                cached = fast_cache.get(switch.id)
                if cached is None:
                    cached = fast_cache[switch.id] = self._fast_switch_entry(switch)
                _, runtime, run, stats, by_event, log, hook = cached
                runtime.time_ns = self.now_ns
                if hook is not None and event.source == switch.id:
                    hook(event)
                result = run(event)
                stats.events_handled += 1
                name = event.name
                by_event[name] = by_event.get(name, 0) + 1
                if result.dropped:
                    stats.drops += 1
                if result.prints:
                    log.extend(result.prints)
                if result.generated:
                    for generated in result.generated:
                        self._schedule_generated(switch, generated, None)
            else:
                result = self._dispatch(switch, event)
            handled += 1
            if traced:
                entry = TraceEntry(
                    time_ns=self.now_ns, switch_id=switch.id, event=event, result=result
                )
                if self.trace_enabled:
                    self.trace.append(entry)
                if self.on_handle is not None:
                    self.on_handle(entry)
        if pending is not None:
            # interrupted with an item in hand: give it back to sources that
            # support it (keeps source-vs-heap tie-breaking identical when the
            # run resumes — a checkpoint/restore requirement), otherwise
            # re-queue it so it is not lost
            push_back = getattr(source, "push_back", None)
            if push_back is not None:
                push_back(pending)
            else:
                self._push(max(pending[0], self.now_ns), pending[1], pending[2])
        # remember a partially consumed source so reset() cannot silently
        # replay the same stream from a mid-stream cursor
        self._partial_source = None if (exhausted and pending is None) else source
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)
        return handled

    def pending_events(self) -> int:
        return len(self._queue)

    # -- checkpointing -----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Capture the full simulation state as a JSON-serialisable dict.

        The snapshot is a *versioned value*: clock, scheduler serial, the
        event heap (in its exact internal order, so future pops are
        byte-identical), link failures, and — per switch — array cells,
        read/write counters, the runtime clock and PRNG state, scheduler
        stats, print logs, and any engine-side accounting
        (:meth:`SwitchEngine.snapshot_state`).  It does **not** capture the
        topology, programs, or compiled engines — :meth:`restore` expects an
        identically constructed network — nor the :attr:`trace` (checkpoints
        are for trace-free long runs) or an in-flight streaming source
        (stream cursors are the caller's to checkpoint; see
        ``repro.service``).

        Raises :class:`SimulationError` if the heap holds a CONTROL action:
        control callables are code, not serialisable state.  (Streaming
        sources that support ``push_back`` — the service-mode path — never
        leave CONTROL entries in the heap.)
        """
        queue = []
        for time_ns, key, switch_id, event in self._queue:
            if switch_id == CONTROL:
                raise SimulationError(
                    "cannot snapshot: the event heap holds a CONTROL action "
                    "(a Python callable).  Drain it first, or stream control "
                    "actions through a push_back-capable source."
                )
            queue.append([time_ns, key, switch_id, event.to_dict()])
        switches: Dict[str, Dict[str, object]] = {}
        for sid in sorted(self.switches):
            sw = self.switches[sid]
            entry: Dict[str, object] = {
                "engine": sw.engine_name,
                "time_ns": sw.runtime.time_ns,
                "origin_seq": sw.origin_seq,
                "random_state": sw.runtime.random_state,
                "arrays": {
                    name: {
                        "cells": list(arr.cells),
                        "reads": arr.reads,
                        "writes": arr.writes,
                    }
                    for name, arr in sw.runtime.arrays.items()
                },
                "stats": sw.stats.to_dict(),
                "log": list(sw.log),
            }
            engine_state = sw.engine.snapshot_state()
            if engine_state is not None:
                entry["engine_state"] = engine_state
            switches[str(sid)] = entry
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "now_ns": self.now_ns,
            "serial": self._serial,
            "queue": queue,
            "down_links": [[a, b, count] for (a, b), count in sorted(self._down_links.items())],
            "switches": switches,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Load a :meth:`snapshot` into this network.

        The network must have been constructed identically to the one that
        was snapshotted — same switch ids running the same programs on the
        same engines (topology and code are rebuilt by the caller, state is
        restored here).  Mismatched switch sets, engine names, or array
        shapes are refused.  The determinism guarantee: restore + resume
        produces byte-identical array digests, stats, and event order to the
        uninterrupted run — pinned by ``tests/test_service.py`` and the CI
        soak job across all three engines.
        """
        if state.get("format") != SNAPSHOT_FORMAT:
            raise SimulationError(
                f"not a network snapshot (format={state.get('format')!r})"
            )
        if state.get("version") != SNAPSHOT_VERSION:
            raise SimulationError(
                f"unsupported snapshot version {state.get('version')!r} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        snap_ids = {int(sid) for sid in state["switches"]}
        if snap_ids != set(self.switches):
            raise SimulationError(
                f"snapshot switch set {sorted(snap_ids)} does not match this "
                f"network's {sorted(self.switches)}"
            )
        # validate everything before mutating anything, so a failed restore
        # leaves the network untouched
        for sid_key, sw_state in state["switches"].items():
            sw = self.switches[int(sid_key)]
            if sw_state["engine"] != sw.engine_name:
                raise SimulationError(
                    f"switch {sid_key}: snapshot engine '{sw_state['engine']}' "
                    f"!= this network's '{sw.engine_name}'"
                )
            snap_arrays = sw_state["arrays"]
            if set(snap_arrays) != set(sw.runtime.arrays):
                raise SimulationError(
                    f"switch {sid_key}: snapshot arrays {sorted(snap_arrays)} "
                    f"do not match the program's {sorted(sw.runtime.arrays)}"
                )
            for name, arr_state in snap_arrays.items():
                arr = sw.runtime.arrays[name]
                if len(arr_state["cells"]) != arr.size:
                    raise SimulationError(
                        f"switch {sid_key}: array '{name}' has {arr.size} "
                        f"cells but the snapshot holds {len(arr_state['cells'])}"
                    )
        self.now_ns = state["now_ns"]
        self._serial = state["serial"]
        # the stored list is the heap's exact internal order — restoring it
        # verbatim keeps the pop sequence identical (keys are unique, so
        # comparisons never reach the event objects)
        self._queue = [
            (time_ns, key, switch_id, EventInstance.from_dict(event))
            for time_ns, key, switch_id, event in state["queue"]
        ]
        self._down_links = {
            (a, b): count for a, b, count in state.get("down_links", [])
        }
        self.trace.clear()
        self._partial_source = None
        for sid_key, sw_state in state["switches"].items():
            sw = self.switches[int(sid_key)]
            sw.runtime.time_ns = sw_state["time_ns"]
            sw.origin_seq = sw_state["origin_seq"]
            sw.runtime.random_state = sw_state["random_state"]
            for name, arr_state in sw_state["arrays"].items():
                arr = sw.runtime.arrays[name]
                # overwrite the cells IN PLACE: generated codegen modules
                # bind the cell list itself (not the RuntimeArray), so the
                # list identity must survive a restore
                arr.cells[:] = arr_state["cells"]
                arr.reads = arr_state["reads"]
                arr.writes = arr_state["writes"]
            sw.stats = SwitchStats.from_dict(sw_state["stats"])
            sw.log[:] = sw_state["log"]
            sw.engine.restore_state(sw_state.get("engine_state"))

    # -- reuse -------------------------------------------------------------------
    def reset(self, arrays: bool = True, drop_source: bool = False) -> None:
        """Reset all simulation state so the same topology (switches, links,
        compiled programs) can be reused for another run from time zero.

        Clears the event queue, clock, trace, per-switch stats and logs, and
        restored failed links.  With ``arrays=True`` (the default) every
        switch's persistent arrays are zeroed as well — the compiled fast path
        keeps working because its closures hold the :class:`RuntimeArray`
        objects, not their cells.  Without ``reset()``, consecutive
        :meth:`run` calls *accumulate*: stats, traces, and array state carry
        over (see ``tests/test_scenarios.py``).

        Per-run observers are detached too: an attached tracer, profiler, or
        ``on_handle`` callback belongs to the run that installed it, and
        leaving it wired up would
        leak spans and handler timings from one run (or shard epoch) into the
        next — the caller re-attaches fresh instances per run, as the
        scenario runner does.

        **Streaming sources do not rewind.**  If the last streaming
        :meth:`run` was interrupted (``max_events``/``until_ns``) and left its
        ``source=`` partially consumed, re-running that source after a reset
        would silently replay from the mid-stream cursor — time-zero network
        state fed with mid-stream traffic.  ``reset()`` therefore refuses,
        unless the source exposes a ``rewind()`` re-seed hook (e.g.
        :class:`repro.service.source.ReplayableSource` built from a factory),
        which is called so the next run replays from the beginning, or
        ``drop_source=True`` explicitly abandons the cursor (the caller keeps
        using the source at its own risk, e.g. to hand the remainder to a
        different network).
        """
        if self._partial_source is not None:
            source, self._partial_source = self._partial_source, None
            if not drop_source:
                rewind = getattr(source, "rewind", None)
                if rewind is None:
                    raise SimulationError(
                        "reset() while the last streaming run left its source "
                        "partially consumed: re-running it would replay from a "
                        "mid-stream cursor.  Pass drop_source=True to abandon "
                        "the cursor, or use a source with a rewind() hook."
                    )
                rewind()
        self.now_ns = 0
        self._queue.clear()
        self._serial = 0
        self._down_links.clear()
        self.trace.clear()
        self.tracer = None
        self.profiler = None
        self.on_handle = None
        self._last_pop_key = None
        for switch in self.switches.values():
            switch.stats = SwitchStats()
            switch.log.clear()
            switch.origin_seq = 0
            switch.runtime.time_ns = 0
            switch.engine.reset()
            if arrays:
                for arr in switch.runtime.arrays.values():
                    arr.reset()

    # -- convenience -------------------------------------------------------------
    def total_stats(self) -> SwitchStats:
        total = SwitchStats()
        for switch in self.switches.values():
            total.events_handled += switch.stats.events_handled
            total.events_generated += switch.stats.events_generated
            total.recirculations += switch.stats.recirculations
            total.recirculated_bytes += switch.stats.recirculated_bytes
            total.remote_sends += switch.stats.remote_sends
            total.drops += switch.stats.drops
            total.link_drops += switch.stats.link_drops
            total.recirc_drops += switch.stats.recirc_drops
        return total

    def stats(self) -> Dict[int, Dict[str, object]]:
        """Per-switch counters, engine names, and — for engines that model a
        pipeline — substrate statistics (stage occupancy, recirculation
        passes/bytes/bandwidth, queue depths).  Aggregates correctly across
        heterogeneous engines: every switch reports its own engine's view.
        """
        out: Dict[int, Dict[str, object]] = {}
        for sid in sorted(self.switches):
            switch = self.switches[sid]
            s = switch.stats
            entry: Dict[str, object] = {
                "engine": switch.engine_name,
                "events_handled": s.events_handled,
                "events_generated": s.events_generated,
                "recirculations": s.recirculations,
                "recirculated_bytes": s.recirculated_bytes,
                "remote_sends": s.remote_sends,
                "drops": s.drops,
                "link_drops": s.link_drops,
                "recirc_drops": s.recirc_drops,
            }
            pipeline = switch.engine.pipeline_stats(duration_ns=self.now_ns)
            if pipeline is not None:
                entry["pipeline"] = pipeline
            out[sid] = entry
        return out


def single_switch_network(
    program: "CheckedProgram | str",
    config: Optional[SchedulerConfig] = None,
    fast_path: Optional[bool] = None,
    engine: Optional[str] = None,
) -> Tuple[Network, Switch]:
    """Convenience constructor for the common one-switch case."""
    network = Network(config=config, engine=resolve_engine_name(engine, fast_path))
    switch = network.add_switch(0, program)
    return network, switch
