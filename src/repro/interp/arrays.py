"""Runtime representation of Lucid's persistent arrays (the Array module).

Each global ``Array<<w>>(n)`` becomes a :class:`RuntimeArray` of ``n`` cells of
``w`` bits.  The methods mirror the Array module of Section 4.1: ``get``,
``set``, and ``update`` (parallel get + set), each optionally applying a memop
— and, exactly like the hardware stateful ALU, a single call touches a single
cell and applies at most one memop per direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import InterpError

Memop = Callable[[int, int], int]


@dataclass
class RuntimeArray:
    """One register array instance on one switch."""

    name: str
    size: int
    cell_width: int = 32
    cells: List[int] = field(default_factory=list)
    #: statistics: how many stateful operations have touched this array
    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        if not self.cells:
            self.cells = [0] * self.size
        self.mask = (1 << self.cell_width) - 1

    # -- helpers -----------------------------------------------------------
    def _index(self, index: int) -> int:
        if self.size == 0:
            raise InterpError(f"array '{self.name}' has zero size")
        if index < 0 or index >= self.size:
            # hardware index wrapping: the Tofino truncates the index to the
            # register's address width rather than faulting
            index = index % self.size
        return index

    def _clamp(self, value: int) -> int:
        return value & self.mask

    # -- Array module ------------------------------------------------------
    def get(self, index: int, memop: Optional[Memop] = None, arg: int = 0) -> int:
        """``Array.get(arr, index[, memop, arg])`` — read (and transform) a cell."""
        i = self._index(index)
        self.reads += 1
        value = self.cells[i]
        if memop is not None:
            return self._clamp(memop(value, arg))
        return value

    def set(self, index: int, value: Optional[int] = None,
            memop: Optional[Memop] = None, arg: int = 0) -> None:
        """``Array.set(arr, index, value)`` or ``Array.set(arr, index, memop, arg)``."""
        i = self._index(index)
        self.writes += 1
        if memop is not None:
            self.cells[i] = self._clamp(memop(self.cells[i], arg))
        else:
            self.cells[i] = self._clamp(value if value is not None else 0)

    def update(
        self,
        index: int,
        get_memop: Optional[Memop],
        get_arg: int,
        set_memop: Optional[Memop],
        set_arg: int,
    ) -> int:
        """``Array.update`` — return ``get_memop(cell, get_arg)`` and store
        ``set_memop(cell, set_arg)``, both computed from the *old* cell value
        (a parallel get and set, one stateful-ALU instruction)."""
        i = self._index(index)
        self.reads += 1
        self.writes += 1
        old = self.cells[i]
        result = self._clamp(get_memop(old, get_arg)) if get_memop else old
        self.cells[i] = self._clamp(set_memop(old, set_arg)) if set_memop else self._clamp(set_arg)
        return result

    # -- inspection ---------------------------------------------------------
    def snapshot(self) -> List[int]:
        return list(self.cells)

    def nonzero_entries(self) -> int:
        return sum(1 for cell in self.cells if cell != 0)

    def reset(self) -> None:
        """Zero every cell and the read/write counters (fresh-switch state).

        Mutates ``cells`` in place rather than rebinding it: the codegen
        engine binds the cell list itself into generated module namespaces,
        so the list identity must survive resets (and restores — see
        :meth:`repro.interp.network.Network.restore`)."""
        self.cells[:] = [0] * self.size
        self.reads = 0
        self.writes = 0
