"""Compiled-handler fast path for the Lucid interpreter.

The tree-walking :class:`~repro.interp.interpreter.HandlerInterpreter`
re-dispatches on AST node types for every statement and expression of every
event, so large :class:`~repro.interp.network.Network` simulations spend most
of their time in ``isinstance`` chains and dictionary lookups.  This module
lowers each checked handler body *once* into nested Python closures — one
closure per statement/expression — with

* **resolved variable slots**: locals and parameters live in a flat list
  frame indexed by compile-time slot numbers instead of a dict environment;
* **pre-bound memop callables**: ``Array.get(a, i, memop, x)`` captures the
  compiled memop function directly (via ``SwitchRuntime.memop_fn``);
* **pre-resolved array handles**: an ``Array.*`` call whose first argument
  names a global captures the :class:`~repro.interp.arrays.RuntimeArray`
  object itself; and
* **pre-folded constants**: ``const`` values, group literals, ``SELF``, and
  ``Sys.self`` become captured Python ints/tuples.

:class:`CompiledSwitchRuntime` is drop-in compatible with
``HandlerInterpreter`` (same ``run`` / ``call_function`` surface over the same
:class:`~repro.interp.interpreter.SwitchRuntime`), and any handler the
compiler cannot lower falls back to the tree walker, so behaviour is
identical by construction — the differential suite in
``tests/test_compiled_interp.py`` pins this across every bundled application.

Execution model: a statement closure takes ``(frame, result)`` and returns
``None`` to continue or a 1-tuple ``(value,)`` to signal ``return value``
(the tuple propagates through enclosing blocks, replacing the tree walker's
``_ReturnValue`` exception on the hot path).  An expression closure takes
``(frame, result)`` and returns the value.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import InterpError
from repro.frontend import ast
from repro.frontend.symbols import ARRAY_METHODS, EVENT_COMBINATORS, ProgramInfo
from repro.interp.events import EventInstance
from repro.interp.interpreter import (
    ExecutionResult,
    HandlerInterpreter,
    SwitchRuntime,
)
from repro.obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from repro.ops import div32 as _div, mod32 as _mod

# only touched behind an ``if _OBS.enabled:`` guard (see repro.obs.metrics)
_M_COMPILED_EVENTS = _REGISTRY.counter(
    "repro_engine_compiled_events_total",
    "Events executed through compiled handler closures.")
_M_COMPILED_FALLBACKS = _REGISTRY.counter(
    "repro_engine_compiled_fallbacks_total",
    "Events handled by the tree-walker because the handler did not compile.")

_MASK = 0xFFFFFFFF

#: frame sentinel for a declared-but-not-yet-initialised slot
_UNDEF = object()

#: dictionary sentinel distinguishing "no handler" from "tree-walk fallback"
_NO_HANDLER = object()

#: the return-signal for a bare ``return;``
_RETURN_NONE = (None,)

StmtFn = Callable[[List[object], ExecutionResult], Optional[tuple]]
ExprFn = Callable[[List[object], ExecutionResult], object]


# ---------------------------------------------------------------------------
# binary operators, one closure constructor per op (semantics identical to
# repro.ops.apply_binop, with the tree walker's short-circuit for && / ||)
# ---------------------------------------------------------------------------
def _make_binop_table():
    B = ast.BinOp
    return {
        B.ADD: lambda l, r: lambda f, res: (l(f, res) + r(f, res)) & _MASK,
        B.SUB: lambda l, r: lambda f, res: (l(f, res) - r(f, res)) & _MASK,
        B.MUL: lambda l, r: lambda f, res: (l(f, res) * r(f, res)) & _MASK,
        B.DIV: lambda l, r: lambda f, res: _div(l(f, res), r(f, res)),
        B.MOD: lambda l, r: lambda f, res: _mod(l(f, res), r(f, res)),
        B.BITAND: lambda l, r: lambda f, res: l(f, res) & r(f, res),
        B.BITOR: lambda l, r: lambda f, res: l(f, res) | r(f, res),
        B.BITXOR: lambda l, r: lambda f, res: l(f, res) ^ r(f, res),
        B.SHL: lambda l, r: lambda f, res: (l(f, res) << (r(f, res) & 31)) & _MASK,
        B.SHR: lambda l, r: lambda f, res: l(f, res) >> (r(f, res) & 31),
        B.EQ: lambda l, r: lambda f, res: 1 if l(f, res) == r(f, res) else 0,
        B.NEQ: lambda l, r: lambda f, res: 1 if l(f, res) != r(f, res) else 0,
        B.LT: lambda l, r: lambda f, res: 1 if l(f, res) < r(f, res) else 0,
        B.GT: lambda l, r: lambda f, res: 1 if l(f, res) > r(f, res) else 0,
        B.LE: lambda l, r: lambda f, res: 1 if l(f, res) <= r(f, res) else 0,
        B.GE: lambda l, r: lambda f, res: 1 if l(f, res) >= r(f, res) else 0,
    }


_BINOPS = _make_binop_table()


class _Scope:
    """Compile-time mapping from variable names to frame slots.

    Lucid handlers have a single flat scope (``if``/``match`` branches share
    it), so one slot table per handler/function body is exact: a name maps to
    the same slot wherever it appears.
    """

    __slots__ = ("slots",)

    def __init__(self, params: Sequence[ast.Param]):
        self.slots: Dict[str, int] = {p.name: i for i, p in enumerate(params)}

    def get(self, name: str) -> Optional[int]:
        return self.slots.get(name)

    def slot(self, name: str) -> int:
        s = self.slots.get(name)
        if s is None:
            s = self.slots[name] = len(self.slots)
        return s

    def size(self) -> int:
        return len(self.slots)


class _PrefixScope:
    """Scope view used when inlining a ``fun`` body into its caller.

    Every name is mangled with a prefix that cannot occur in Lucid source
    (it contains ``"\\x00"``), so the callee's parameters and locals land in
    private slots of the *caller's* frame: the callee cannot see caller
    locals (matching the tree walker's fresh-environment semantics) and
    nested inlining composes by prefix chaining.
    """

    __slots__ = ("parent", "prefix", "seen")

    def __init__(self, parent, prefix: str):
        self.parent = parent
        self.prefix = prefix
        #: every slot this callee touched — the caller resets these before
        #: each invocation so a second call site (whose mangled slots already
        #: exist) cannot observe stale locals from an earlier call
        self.seen: set = set()

    def get(self, name: str) -> Optional[int]:
        s = self.parent.get(self.prefix + name)
        if s is not None:
            self.seen.add(s)
        return s

    def slot(self, name: str) -> int:
        s = self.parent.slot(self.prefix + name)
        self.seen.add(s)
        return s

    def size(self) -> int:
        return self.parent.size()


class _FunctionEntry:
    """A compiled ``fun``: its body closure plus frame layout."""

    __slots__ = ("nparams", "frame_size", "body")

    def __init__(self, nparams: int):
        self.nparams = nparams
        self.frame_size = nparams
        self.body: Optional[StmtFn] = None


class CompiledHandler:
    """One lowered handler body."""

    __slots__ = ("name", "nparams", "frame_size", "body")

    def __init__(self, name: str, nparams: int, frame_size: int, body: Optional[StmtFn]):
        self.name = name
        self.nparams = nparams
        self.frame_size = frame_size
        self.body = body


class HandlerCompiler:
    """Lowers checked handler/function bodies into nested Python closures.

    A compiler instance is bound to one :class:`SwitchRuntime`: array handles
    and memop callables are resolved against that runtime at compile time.
    Mutable runtime state (the clock, the RNG, late-bound externs) is read
    through the captured runtime object at call time, so ``bind_extern`` and
    the scheduler's clock updates behave exactly as with the tree walker.
    """

    def __init__(self, runtime: SwitchRuntime):
        self.runtime = runtime
        self.info: ProgramInfo = runtime.info
        self._functions: Dict[str, _FunctionEntry] = {}
        #: functions currently being inlined (recursion falls back to frames)
        self._inlining: set = set()

    # -- entry points -------------------------------------------------------
    def compile_handler(self, handler: ast.DHandler) -> CompiledHandler:
        scope = _Scope(handler.params)
        body = self._compile_block(handler.body, scope)
        return CompiledHandler(
            name=handler.name,
            nparams=len(handler.params),
            frame_size=len(scope.slots),
            body=body,
        )

    def function_entry(self, name: str) -> _FunctionEntry:
        """Compile (and cache) one ``fun``.  The entry is registered before
        its body is lowered so self-referencing programs terminate compilation
        (and recurse at run time exactly like the tree walker would)."""
        entry = self._functions.get(name)
        if entry is not None:
            return entry
        fun = self.info.functions[name]
        entry = _FunctionEntry(nparams=len(fun.params))
        self._functions[name] = entry
        try:
            scope = _Scope(fun.params)
            entry.body = self._compile_block(fun.body, scope)
            entry.frame_size = len(scope.slots)
        except BaseException:
            del self._functions[name]
            raise
        return entry

    # -- statements ---------------------------------------------------------
    def _compile_block(self, stmts: Sequence[ast.Stmt], scope: _Scope) -> Optional[StmtFn]:
        fns = []
        for stmt in stmts:
            fn = self._compile_stmt(stmt, scope)
            if fn is not None:
                fns.append(fn)
        if not fns:
            return None
        if len(fns) == 1:
            return fns[0]
        fns = tuple(fns)

        def run_block(frame, res):
            for fn in fns:
                r = fn(frame, res)
                if r is not None:
                    return r
            return None

        return run_block

    def _compile_stmt(self, stmt: ast.Stmt, scope: _Scope) -> Optional[StmtFn]:
        if isinstance(stmt, ast.SNoop):
            return None
        if isinstance(stmt, ast.SLocal):
            init = self._compile_expr(stmt.init, scope)
            slot = scope.slot(stmt.name)

            def do_local(frame, res):
                frame[slot] = init(frame, res)
                return None

            return do_local
        if isinstance(stmt, ast.SAssign):
            name = stmt.name
            slot = scope.slot(name)
            value = self._compile_expr(stmt.value, scope)

            def do_assign(frame, res):
                if frame[slot] is _UNDEF:
                    raise InterpError(f"assignment to undeclared variable '{name}'")
                frame[slot] = value(frame, res)
                return None

            return do_assign
        if isinstance(stmt, ast.SIf):
            cond = self._compile_expr(stmt.cond, scope)
            then_fn = self._compile_block(stmt.then_body, scope)
            else_fn = self._compile_block(stmt.else_body, scope)
            if then_fn is not None and else_fn is not None:

                def do_if(frame, res):
                    if cond(frame, res):
                        return then_fn(frame, res)
                    return else_fn(frame, res)

            elif then_fn is not None:

                def do_if(frame, res):
                    if cond(frame, res):
                        return then_fn(frame, res)
                    return None

            elif else_fn is not None:

                def do_if(frame, res):
                    if not cond(frame, res):
                        return else_fn(frame, res)
                    return None

            else:

                def do_if(frame, res):
                    cond(frame, res)  # the condition may have side effects
                    return None

            return do_if
        if isinstance(stmt, ast.SMatch):
            scruts = tuple(self._compile_expr(e, scope) for e in stmt.scrutinees)
            branches = tuple(
                (tuple(pattern), self._compile_block(body, scope))
                for pattern, body in stmt.branches
            )

            def do_match(frame, res):
                values = [fn(frame, res) for fn in scruts]
                for pattern, body in branches:
                    matched = True
                    for p, v in zip(pattern, values):
                        if p is not None and p != v:
                            matched = False
                            break
                    if matched:
                        if body is not None:
                            return body(frame, res)
                        return None
                return None

            return do_match
        if isinstance(stmt, ast.SReturn):
            if stmt.value is None:

                def do_return(frame, res):
                    return _RETURN_NONE

                return do_return
            value = self._compile_expr(stmt.value, scope)

            def do_return(frame, res):
                return (value(frame, res),)

            return do_return
        if isinstance(stmt, ast.SGenerate):
            ev_fn = self._compile_expr(stmt.event, scope)

            def do_generate(frame, res):
                value = ev_fn(frame, res)
                if not isinstance(value, EventInstance):
                    raise InterpError("generate expects an event value")
                res.generated.append(value)
                return None

            return do_generate
        if isinstance(stmt, ast.SExpr):
            fn = self._compile_expr(stmt.expr, scope)

            def do_expr(frame, res):
                fn(frame, res)
                return None

            return do_expr
        if isinstance(stmt, ast.SSeq):
            return self._compile_block(stmt.body, scope)
        raise InterpError(f"unhandled statement {type(stmt).__name__}")

    # -- expressions --------------------------------------------------------
    def _compile_expr(self, expr: ast.Expr, scope: _Scope) -> ExprFn:
        if isinstance(expr, ast.EInt):
            value = expr.value
            return lambda frame, res: value
        if isinstance(expr, ast.EBool):
            value = 1 if expr.value else 0
            return lambda frame, res: value
        if isinstance(expr, ast.EVar):
            return self._compile_var(expr.name, scope)
        if isinstance(expr, ast.EUnary):
            operand = self._compile_expr(expr.operand, scope)
            if expr.op is ast.UnOp.NEG:
                return lambda frame, res: (-operand(frame, res)) & _MASK
            if expr.op is ast.UnOp.BITNOT:
                return lambda frame, res: ~operand(frame, res) & _MASK
            return lambda frame, res: 0 if operand(frame, res) else 1
        if isinstance(expr, ast.EBinary):
            left = self._compile_expr(expr.left, scope)
            right = self._compile_expr(expr.right, scope)
            if expr.op is ast.BinOp.AND:
                return lambda frame, res: (
                    0 if not left(frame, res) else (1 if right(frame, res) else 0)
                )
            if expr.op is ast.BinOp.OR:
                return lambda frame, res: (
                    1 if left(frame, res) else (1 if right(frame, res) else 0)
                )
            make = _BINOPS.get(expr.op)
            if make is None:
                raise InterpError(f"unsupported operator {expr.op}")
            return make(left, right)
        if isinstance(expr, ast.EGroup):
            members = tuple(self._compile_expr(m, scope) for m in expr.members)
            return lambda frame, res: tuple(fn(frame, res) for fn in members)
        if isinstance(expr, ast.EEvent):
            return self._compile_event_ctor(expr.name, expr.args, scope)
        if isinstance(expr, ast.ECall):
            return self._compile_call(expr, scope)
        raise InterpError(f"unhandled expression {type(expr).__name__}")

    def _compile_var(self, name: str, scope: _Scope) -> ExprFn:
        info = self.info
        # the fallback mirrors the tree walker's lookup chain for a name that
        # is not (yet) bound in the handler scope: SELF, then group constants,
        # then scalar constants, then global array handles
        have_fallback = True
        if name == "SELF":
            fallback = self.runtime.switch_id
        elif name in info.consts.groups:
            fallback = tuple(info.consts.groups[name])
        elif info.consts.lookup(name) is not None:
            fallback = info.consts.lookup(name)
        elif info.is_global(name):
            fallback = name  # arrays evaluate to their own name (a handle)
        else:
            have_fallback = False
            fallback = None
        slot = scope.get(name)
        if slot is None:
            # never declared up to this point of the body: the local frame can
            # not hold it when this expression runs, so resolve statically
            if have_fallback:
                return lambda frame, res: fallback
            def raise_undefined(frame, res):
                raise InterpError(f"undefined variable '{name}'")
            return raise_undefined
        if have_fallback:

            def read_with_fallback(frame, res):
                v = frame[slot]
                return fallback if v is _UNDEF else v

            return read_with_fallback

        def read(frame, res):
            v = frame[slot]
            if v is _UNDEF:
                raise InterpError(f"undefined variable '{name}'")
            return v

        return read

    def _compile_event_ctor(
        self, name: str, args: Sequence[ast.Expr], scope: _Scope
    ) -> ExprFn:
        arg_fns = tuple(self._compile_expr(a, scope) for a in args)
        source = self.runtime.switch_id

        def make_event(frame, res):
            return EventInstance(
                name=name,
                args=tuple(fn(frame, res) for fn in arg_fns),
                source=source,
            )

        return make_event

    # -- calls --------------------------------------------------------------
    def _compile_call(self, expr: ast.ECall, scope: _Scope) -> ExprFn:
        func = expr.func
        info = self.info
        runtime = self.runtime
        if func in ARRAY_METHODS:
            return self._compile_array_method(expr, scope)
        if func in EVENT_COMBINATORS:
            return self._compile_combinator(expr, scope)
        if func == "hash":
            width = expr.size_args[0] if expr.size_args else 32
            arg_fns = tuple(self._compile_expr(a, scope) for a in expr.args)
            # pre-build the packer for this call site's arity; semantics are
            # exactly lucid_hash(width, args, seed=0)
            pack = struct.Struct("<%dI" % (len(arg_fns) + 1)).pack
            crc32 = zlib.crc32
            if width >= 32:

                def do_hash(frame, res):
                    return crc32(
                        pack(0, *[fn(frame, res) & _MASK for fn in arg_fns])
                    )

            else:
                # width <= 0 degenerates to the constant 0, as lucid_hash does
                wmask = (1 << width) - 1 if width > 0 else 0

                def do_hash(frame, res):
                    return (
                        crc32(pack(0, *[fn(frame, res) & _MASK for fn in arg_fns]))
                        & wmask
                    )

            return do_hash
        if func == "Sys.time":
            return lambda frame, res: runtime.time_ns & _MASK
        if func == "Sys.self":
            sid = runtime.switch_id
            return lambda frame, res: sid
        if func == "Sys.random":
            if expr.args:
                bound_fn = self._compile_expr(expr.args[0], scope)
                return lambda frame, res: runtime.random(bound_fn(frame, res))
            return lambda frame, res: runtime.random()
        if func == "drop":

            def do_drop(frame, res):
                res.dropped = True
                return 0

            return do_drop
        if func == "forward":
            port_fn = self._compile_expr(expr.args[0], scope)

            def do_forward(frame, res):
                res.forwarded_port = port_fn(frame, res)
                return 0

            return do_forward
        if func == "flood":

            def do_flood(frame, res):
                res.flooded = True
                return 0

            return do_flood
        if func == "printf":
            arg_fns = tuple(self._compile_expr(a, scope) for a in expr.args)

            def do_printf(frame, res):
                res.prints.append(" ".join(str(fn(frame, res)) for fn in arg_fns))
                return 0

            return do_printf
        if info.is_function(func):
            return self._compile_user_call(func, expr.args, scope)
        if func in info.externs:
            arg_fns = tuple(self._compile_expr(a, scope) for a in expr.args)
            externs = runtime.externs

            def do_extern(frame, res):
                args = [fn(frame, res) for fn in arg_fns]
                fn = externs.get(func)
                if fn is None:
                    return 0
                return int(fn(*args))

            return do_extern
        if info.is_event(func):
            return self._compile_event_ctor(func, expr.args, scope)
        raise InterpError(f"call to unknown function '{func}'")

    def _compile_user_call(
        self, func: str, args: Sequence[ast.Expr], scope
    ) -> ExprFn:
        """A ``fun`` call.  Non-recursive functions are inlined into the
        caller's frame (their parameters and locals become mangled caller
        slots), eliminating the per-call frame allocation; recursive calls
        fall back to a framed call through :meth:`function_entry`.

        Argument handling matches the tree walker exactly: arguments are
        zip-truncated against the parameter list, and missing parameters
        resolve through the constant fallback chain.
        """
        fun = self.info.functions[func]
        nparams = len(fun.params)
        if func in self._inlining:
            return self._compile_framed_call(func, args, scope)
        self._inlining.add(func)
        try:
            inner = _PrefixScope(scope, func + "\x00")
            param_slots = [inner.slot(p.name) for p in fun.params]
            body_stmts = [s for s in fun.body if not isinstance(s, ast.SNoop)]
            arg_fns = tuple(self._compile_expr(a, scope) for a in args[:nparams])
            written_slots = tuple(param_slots[: len(arg_fns)])
            # fast case: a single `return <expr>;` body becomes the expression
            # itself — no return-signal tuple at all
            if len(body_stmts) == 1 and isinstance(body_stmts[0], ast.SReturn):
                ret = body_stmts[0]
                value_fn = (
                    self._compile_expr(ret.value, inner) if ret.value is not None else None
                )
                reset_slots = tuple(sorted(inner.seen - set(written_slots)))
                if not reset_slots and len(arg_fns) == 2 and value_fn is not None:
                    fn0, fn1 = arg_fns
                    s0, s1 = written_slots

                    def do_inline(frame, res):
                        v0 = fn0(frame, res)
                        v1 = fn1(frame, res)
                        frame[s0] = v0
                        frame[s1] = v1
                        return value_fn(frame, res)

                    return do_inline

                def do_inline(frame, res):
                    values = [fn(frame, res) for fn in arg_fns]
                    for s in reset_slots:
                        frame[s] = _UNDEF
                    i = 0
                    for s in written_slots:
                        frame[s] = values[i]
                        i += 1
                    if value_fn is None:
                        return 0
                    return value_fn(frame, res)

                return do_inline
            body = self._compile_block(fun.body, inner)
            reset_slots = tuple(sorted(inner.seen - set(written_slots)))

            def do_inline(frame, res):
                values = [fn(frame, res) for fn in arg_fns]
                for s in reset_slots:
                    frame[s] = _UNDEF
                i = 0
                for s in written_slots:
                    frame[s] = values[i]
                    i += 1
                if body is None:
                    return 0
                r = body(frame, res)
                if r is None:
                    return 0
                v = r[0]
                return 0 if v is None else v

            return do_inline
        finally:
            self._inlining.discard(func)

    def _compile_framed_call(
        self, func: str, args: Sequence[ast.Expr], scope
    ) -> ExprFn:
        """A ``fun`` call through a fresh frame (used for recursive calls)."""
        entry = self.function_entry(func)
        arg_fns = tuple(self._compile_expr(a, scope) for a in args[: entry.nparams])

        def do_call(frame, res):
            callee = [_UNDEF] * entry.frame_size
            i = 0
            for fn in arg_fns:
                callee[i] = fn(frame, res)
                i += 1
            body = entry.body
            if body is None:
                return 0
            r = body(callee, res)
            if r is None:
                return 0
            v = r[0]
            return 0 if v is None else v

        return do_call

    def _compile_combinator(self, expr: ast.ECall, scope: _Scope) -> ExprFn:
        func = expr.func
        ev_fn = self._compile_expr(expr.args[0], scope)
        arg_fn = self._compile_expr(expr.args[1], scope)
        if func == "Event.delay":

            def do_delay(frame, res):
                event = ev_fn(frame, res)
                if not isinstance(event, EventInstance):
                    raise InterpError(f"{func} expects an event value")
                return event.delay(arg_fn(frame, res))

            return do_delay

        def do_locate(frame, res):
            event = ev_fn(frame, res)
            if not isinstance(event, EventInstance):
                raise InterpError(f"{func} expects an event value")
            return event.locate(arg_fn(frame, res))

        return do_locate

    # -- array methods ------------------------------------------------------
    def _compile_array_method(self, expr: ast.ECall, scope: _Scope) -> ExprFn:
        info = self.info
        runtime = self.runtime
        arr_expr = expr.args[0]
        array = None  # statically resolved RuntimeArray, when possible
        get_array = None  # dynamic resolver, otherwise
        if isinstance(arr_expr, ast.EVar) and info.is_global(arr_expr.name):
            array = runtime.array(arr_expr.name)
        elif isinstance(arr_expr, ast.EVar):
            slot = scope.get(arr_expr.name)
            arrays = runtime.arrays
            if slot is None:

                def get_array(frame):
                    raise InterpError(
                        "the first argument of an Array method must be a global array"
                    )

            else:

                def get_array(frame):
                    value = frame[slot]
                    if isinstance(value, str):
                        arr = arrays.get(value)
                        if arr is not None:
                            return arr
                    raise InterpError(
                        "the first argument of an Array method must be a global array"
                    )

        else:

            def get_array(frame):
                raise InterpError(
                    "the first argument of an Array method must be a global array"
                )

        index_fn = self._compile_expr(expr.args[1], scope)
        memops: List[Callable[[int, int], int]] = []
        value_fns: List[ExprFn] = []
        for arg in expr.args[2:]:
            if isinstance(arg, ast.EVar) and info.is_memop(arg.name):
                memops.append(runtime.memop_fn(arg.name))
            else:
                value_fns.append(self._compile_expr(arg, scope))
        method = expr.func

        if method in ("Array.get", "Array.getm"):
            memop = memops[0] if memops else None
            arg_fn = value_fns[0] if value_fns else None
            if array is not None:
                if memop is None and arg_fn is None:

                    def do_get(frame, res):
                        return array.get(index_fn(frame, res), None, 0)

                else:

                    def do_get(frame, res):
                        idx = index_fn(frame, res)
                        arg = 0 if arg_fn is None else arg_fn(frame, res)
                        return array.get(idx, memop, arg)

            else:

                def do_get(frame, res):
                    arr = get_array(frame)
                    idx = index_fn(frame, res)
                    arg = 0 if arg_fn is None else arg_fn(frame, res)
                    return arr.get(idx, memop, arg)

            return do_get

        if method in ("Array.set", "Array.setm"):
            if memops:
                memop = memops[0]
                arg_fn = value_fns[0] if value_fns else None
                if array is not None:

                    def do_set(frame, res):
                        idx = index_fn(frame, res)
                        arg = 0 if arg_fn is None else arg_fn(frame, res)
                        array.set(idx, memop=memop, arg=arg)
                        return 0

                else:

                    def do_set(frame, res):
                        arr = get_array(frame)
                        idx = index_fn(frame, res)
                        arg = 0 if arg_fn is None else arg_fn(frame, res)
                        arr.set(idx, memop=memop, arg=arg)
                        return 0

            else:
                value_fn = value_fns[0] if value_fns else None
                if array is not None:

                    def do_set(frame, res):
                        idx = index_fn(frame, res)
                        value = 0 if value_fn is None else value_fn(frame, res)
                        array.set(idx, value=value)
                        return 0

                else:

                    def do_set(frame, res):
                        arr = get_array(frame)
                        idx = index_fn(frame, res)
                        value = 0 if value_fn is None else value_fn(frame, res)
                        arr.set(idx, value=value)
                        return 0

            return do_set

        if method == "Array.update":
            get_memop = memops[0] if memops else None
            set_memop = memops[1] if len(memops) > 1 else None
            if array is not None and len(value_fns) == 2:
                ga_fn, sa_fn = value_fns

                def do_update(frame, res):
                    idx = index_fn(frame, res)
                    return array.update(
                        idx, get_memop, ga_fn(frame, res), set_memop, sa_fn(frame, res)
                    )

            elif array is not None and len(value_fns) == 1:
                ga_fn = value_fns[0]

                def do_update(frame, res):
                    idx = index_fn(frame, res)
                    arg = ga_fn(frame, res)
                    return array.update(idx, get_memop, arg, set_memop, arg)

            elif array is not None:

                def do_update(frame, res):
                    return array.update(index_fn(frame, res), get_memop, 0, set_memop, 0)

            else:
                fns = tuple(value_fns)

                def do_update(frame, res):
                    arr = get_array(frame)
                    idx = index_fn(frame, res)
                    vals = [fn(frame, res) for fn in fns]
                    get_arg = vals[0] if vals else 0
                    set_arg = vals[1] if len(vals) > 1 else (vals[0] if vals else 0)
                    return arr.update(idx, get_memop, get_arg, set_memop, set_arg)

            return do_update

        raise InterpError(f"unhandled array method {method}")


class CompiledSwitchRuntime:
    """Executes handlers through compiled closures; drop-in compatible with
    :class:`~repro.interp.interpreter.HandlerInterpreter`.

    Handlers are lowered eagerly at construction.  Any handler the compiler
    cannot lower (e.g. hand-built ASTs with nodes the fast path does not
    model) silently falls back to the tree-walking interpreter, preserving
    exact behaviour — including where and how runtime errors are raised.
    """

    def __init__(self, runtime: SwitchRuntime):
        self.runtime = runtime
        self.info: ProgramInfo = runtime.info
        self._compiler = HandlerCompiler(runtime)
        self._tree_walker = HandlerInterpreter(runtime)
        self._handlers: Dict[str, Optional[CompiledHandler]] = {}
        for name, handler in self.info.handlers.items():
            try:
                self._handlers[name] = self._compiler.compile_handler(handler)
            except Exception:
                self._handlers[name] = None  # tree-walking fallback

    @property
    def fallback_handler_names(self) -> List[str]:
        """Handlers the compiler could not lower (they run through the tree
        walker instead).  Empty for every bundled application; the
        differential suite asserts this so a compiler regression cannot turn
        the conformance tests into a vacuous tree-walker-vs-tree-walker
        comparison."""
        return sorted(name for name, h in self._handlers.items() if h is None)

    # -- public entry --------------------------------------------------------
    def run(self, event: EventInstance) -> ExecutionResult:
        """Run the handler for ``event`` once, atomically."""
        handler = self._handlers.get(event.name, _NO_HANDLER)
        if handler is _NO_HANDLER:
            # events without handlers are legal: they exit the switch
            return ExecutionResult()
        if handler is None:
            if _OBS.enabled:
                _M_COMPILED_FALLBACKS.inc()
            return self._tree_walker.run(event)
        if _OBS.enabled:
            _M_COMPILED_EVENTS.inc()
        args = event.args
        if len(args) != handler.nparams:
            raise InterpError(
                f"event '{event.name}' carries {len(args)} arguments but the handler "
                f"expects {handler.nparams}"
            )
        result = ExecutionResult()
        frame = [_UNDEF] * handler.frame_size
        i = 0
        for arg in args:
            frame[i] = int(arg)
            i += 1
        body = handler.body
        if body is not None:
            body(frame, result)
        return result

    def call_function(self, name: str, args: Sequence[int]) -> int:
        """Call a ``fun`` directly (useful for tests)."""
        fun = self.info.functions[name]
        try:
            entry = self._compiler.function_entry(name)
        except Exception:
            return self._tree_walker.call_function(name, args)
        result = ExecutionResult()
        frame = [_UNDEF] * entry.frame_size
        for i, (_, arg) in enumerate(zip(fun.params, args)):
            frame[i] = arg
        if entry.body is None:
            return 0
        r = entry.body(frame, result)
        if r is None:
            return 0
        return r[0] if r[0] is not None else 0
