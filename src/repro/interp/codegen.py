"""Source-codegen fast path: compile checked handlers to flat Python source.

Where :mod:`repro.interp.compiled` lowers each handler into nested Python
closures (one closure call per AST node at run time), this module goes one
step further and emits *flat Python source text* for every handler — locals
instead of frame slots, memop bodies and the ``repro.ops`` ALU helpers
inlined at their call sites, constant-folded operands, and array cell lists
bound directly into the generated module — then compiles the whole program
once with :func:`compile`/``exec``.  A handler dispatch is then a single
Python function call with no interpretation overhead at all.

The generated module is keyed by :meth:`CheckedProgram.digest
<repro.frontend.type_checker.CheckedProgram.digest>` and cached process-wide,
so a fat-tree network running one application compiles each handler exactly
once no matter how many switches instantiate it.  Everything that may differ
between switches sharing a digest (the runtime clock/RNG, ``SELF``, group
member bindings, extern tables, array handles) is passed in through a
bindings dict consumed by the generated ``_build`` factory, which returns
per-switch handler functions closing over those bindings.

Semantics are pinned to the closure engine (and therefore to the tree
walker): identical results, identical error strings raised at the same
evaluation points, identical array read/write counter increments, identical
RNG and event-serial consumption order.  Any handler the emitter cannot
lower falls back to the tree walker, exactly like
:class:`~repro.interp.compiled.CompiledSwitchRuntime`; the differential
suites in ``tests/test_engines.py`` and ``repro.fuzz`` pin the parity.

Use ``repro.scenarios --engine codegen --dump-source`` (or
:func:`dump_program_source`) to inspect the generated text.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InterpError
from repro.frontend import ast
from repro.frontend.symbols import ARRAY_METHODS, EVENT_COMBINATORS, ProgramInfo
from repro.frontend.type_checker import CheckedProgram
from repro.interp.compiled import _NO_HANDLER, _UNDEF
from repro.interp.events import EventInstance
from repro.interp.interpreter import (
    ExecutionResult,
    HandlerInterpreter,
    SwitchRuntime,
)
from repro.obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from repro.ops import MASK32 as _MASK, apply_binop as _apply_binop

# only touched behind an ``if _OBS.enabled:`` guard (see repro.obs.metrics)
_M_CODEGEN_EVENTS = _REGISTRY.counter(
    "repro_engine_codegen_events_total",
    "Events executed through source-generated handler functions.")
_M_CODEGEN_FALLBACKS = _REGISTRY.counter(
    "repro_engine_codegen_fallbacks_total",
    "Events handled by the tree-walker because the handler did not codegen.")

#: shared result for handlers that provably produce no effects (and for
#: events with no handler at all).  Consumers of :class:`ExecutionResult`
#: only read it, so one immutable instance serves every such invocation.
_EMPTY_RESULT = ExecutionResult((), ())


class _EmitError(Exception):
    """The emitter cannot lower this handler (mirrors the closure compiler's
    compile-time ``InterpError``s): the handler falls back to the tree
    walker."""


# ---------------------------------------------------------------------------
# binary-operator source templates (semantics identical to repro.ops
# .apply_binop; && / || are special-cased for short-circuit evaluation)
# ---------------------------------------------------------------------------
def _binop_template(op: "ast.BinOp", left: str, right: str) -> str:
    B = ast.BinOp
    if op is B.ADD:
        return f"((({left}) + ({right})) & 4294967295)"
    if op is B.SUB:
        return f"((({left}) - ({right})) & 4294967295)"
    if op is B.MUL:
        return f"((({left}) * ({right})) & 4294967295)"
    if op is B.DIV:
        return f"(((({left}) // ({right})) if ({right}) else 0))"
    if op is B.MOD:
        return f"(((({left}) % ({right})) if ({right}) else 0))"
    if op is B.BITAND:
        return f"(({left}) & ({right}))"
    if op is B.BITOR:
        return f"(({left}) | ({right}))"
    if op is B.BITXOR:
        return f"(({left}) ^ ({right}))"
    if op is B.SHL:
        return f"((({left}) << (({right}) & 31)) & 4294967295)"
    if op is B.SHR:
        return f"(({left}) >> (({right}) & 31))"
    if op is B.AND:
        # strict form (memop context); handler context short-circuits instead
        return f"((1 if ({left}) and ({right}) else 0))"
    if op is B.OR:
        return f"((1 if ({left}) or ({right}) else 0))"
    py = _CMP_OPS.get(op)
    if py is None:
        raise _EmitError(f"unsupported operator {op}")
    return f"((1 if ({left}) {py} ({right}) else 0))"


_CMP_OPS = {
    ast.BinOp.EQ: "==",
    ast.BinOp.NEQ: "!=",
    ast.BinOp.LT: "<",
    ast.BinOp.GT: ">",
    ast.BinOp.LE: "<=",
    ast.BinOp.GE: ">=",
}

#: binary operators whose result templates cannot raise (division is guarded)
_PURE_BINOPS = frozenset(_CMP_OPS) | {
    ast.BinOp.ADD, ast.BinOp.SUB, ast.BinOp.MUL, ast.BinOp.DIV, ast.BinOp.MOD,
    ast.BinOp.BITAND, ast.BinOp.BITOR, ast.BinOp.BITXOR,
    ast.BinOp.SHL, ast.BinOp.SHR,
}

_HELPERS = '''\
def _chk(v, name):
    if v is _UNDEF:
        raise _IE("undefined variable '%s'" % (name,))
    return v


def _undef(name):
    raise _IE("undefined variable '%s'" % (name,))


def _extern(fns, name, args):
    fn = fns.get(name)
    if fn is None:
        return 0
    return int(fn(*args))


def _resolve(arrays, value):
    if isinstance(value, str):
        arr = arrays.get(value)
        if arr is not None:
            return arr
    raise _IE("the first argument of an Array method must be a global array")
'''


class CodegenModule:
    """One generated module: shared by every switch whose checked program has
    the same digest."""

    __slots__ = ("name", "digest", "source", "binding_keys", "build",
                 "fallback_names", "handler_names")

    def __init__(self, name: str, digest: str, source: str,
                 binding_keys: List[str], build: Callable,
                 fallback_names: List[str], handler_names: List[str]):
        self.name = name
        self.digest = digest
        self.source = source
        #: ordered binding keys the ``_build`` factory expects, e.g.
        #: ``"runtime"``, ``"cells:ip_counts"``, ``"memop:incr"``
        self.binding_keys = binding_keys
        self.build = build
        self.fallback_names = fallback_names
        self.handler_names = handler_names


#: process-wide digest -> generated-module cache (the codegen analogue of the
#: shared memop cache in repro.interp.interpreter)
_MODULE_CACHE: Dict[str, CodegenModule] = {}


def compile_program(checked: CheckedProgram) -> CodegenModule:
    """Emit (or fetch the cached) generated module for ``checked``."""
    key = checked.digest()
    module = _MODULE_CACHE.get(key)
    if module is None:
        module = HandlerSourceCompiler(checked).compile()
        _MODULE_CACHE[key] = module
    return module


def dump_program_source(checked: CheckedProgram) -> str:
    """The generated Python source for ``checked`` (``--dump-source``)."""
    return compile_program(checked).source


def _effective(stmts: Sequence[ast.Stmt]) -> List[ast.Stmt]:
    """Flatten SSeq and drop SNoop, mirroring the closure compiler's
    block-level filtering."""
    out: List[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.SNoop):
            continue
        if isinstance(stmt, ast.SSeq):
            out.extend(_effective(stmt.body))
        else:
            out.append(stmt)
    return out


class _Env:
    """Per-body name resolution state.

    ``scope`` maps Lucid names to generated Python locals and is *shared*
    mutable state threaded through branches in textual order — exactly like
    the closure compiler's flat ``_Scope`` — while ``defined`` (names known
    to hold a value on every path reaching this point) is copied per branch
    and intersected at joins."""

    __slots__ = ("scope", "defined")

    def __init__(self, scope: Dict[str, str], defined: Set[str]):
        self.scope = scope
        self.defined = defined

    def branch(self) -> "_Env":
        return _Env(self.scope, set(self.defined))


class HandlerSourceCompiler:
    """Walks every checked handler and emits one flat Python module."""

    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.info: ProgramInfo = checked.info
        # binding registry: key -> generated variable name, in first-use order
        self._binding_vars: Dict[str, str] = {}
        self._binding_order: List[str] = []
        self._pack_arities: Set[int] = set()
        self._memop_cache: Dict[str, tuple] = {}
        # per-handler emission state (reset by _emit_handler)
        self.lines: List[Tuple[int, str]] = []
        self.indent = 1
        self._temp_n = 0
        self._site_n = 0
        self._undef_inits: Set[str] = set()
        self._effects: Set[str] = set()
        self._ret_stack: List[tuple] = []
        self._inlining: Set[str] = set()

    # -- bindings -----------------------------------------------------------
    def _bind(self, kind: str, name: str = "") -> str:
        key = kind if not name else f"{kind}:{name}"
        var = self._binding_vars.get(key)
        if var is None:
            var = {
                "runtime": "_rt",
                "self": "_SELF",
                "externs": "_EXT",
                "arrays": "_ARRAYS",
                "array": f"_A_{name}",
                "cells": f"_C_{name}",
                "group": f"_G_{name}",
                "memop": f"_M_{name}",
            }[kind]
            self._binding_vars[key] = var
            self._binding_order.append(key)
        return var

    # -- program assembly ---------------------------------------------------
    def compile(self) -> CodegenModule:
        handler_srcs: Dict[str, List[Tuple[int, str]]] = {}
        fallbacks: List[str] = []
        for name, handler in self.info.handlers.items():
            mark = len(self._binding_order)
            packs = set(self._pack_arities)
            try:
                handler_srcs[name] = self._emit_handler(handler)
            except Exception:
                # roll back bindings registered by the failed handler so the
                # runtime never has to materialise them (e.g. a malformed
                # memop would make memop_fn raise at bind time)
                for key in self._binding_order[mark:]:
                    del self._binding_vars[key]
                del self._binding_order[mark:]
                self._pack_arities = packs
                fallbacks.append(name)
        source = self._assemble(handler_srcs)
        namespace = {
            "__name__": f"repro.interp.codegen.<{self.checked.name}>",
            "_IE": InterpError,
            "_EV": EventInstance,
            "_ER": ExecutionResult,
            "_UNDEF": _UNDEF,
            "_c32": zlib.crc32,
            "_EMPTY_R": _EMPTY_RESULT,
        }
        for n in sorted(self._pack_arities):
            namespace[f"_pk{n}"] = struct.Struct("<%dI" % n).pack
        code = compile(source, f"<codegen:{self.checked.name}>", "exec")
        exec(code, namespace)
        return CodegenModule(
            name=self.checked.name,
            digest=self.checked.digest(),
            source=source,
            binding_keys=list(self._binding_order),
            build=namespace["_build"],
            fallback_names=sorted(fallbacks),
            handler_names=sorted(handler_srcs),
        )

    def _assemble(self, handler_srcs: Dict[str, List[Tuple[int, str]]]) -> str:
        out: List[str] = [
            f"# Generated by repro.interp.codegen for program "
            f"{self.checked.name!r}.",
            "# Seeded globals: _IE (InterpError), _EV (EventInstance),",
            "# _ER (ExecutionResult), _EMPTY_R (shared no-effect result),",
            "# _UNDEF (undefined-slot sentinel), _c32 (zlib.crc32),",
            "# _pk<N> (struct '<NI' packers).",
            "",
            _HELPERS,
            "",
            "def _build(_B):",
        ]
        for key in self._binding_order:
            out.append(f"    {self._binding_vars[key]} = _B[{key!r}]")
        if not self._binding_order:
            out.append("    pass")
        for name in handler_srcs:
            out.append("")
            for level, text in handler_srcs[name]:
                out.append("    " * (level + 1) + text)
        out.append("")
        out.append("    return {")
        for name in handler_srcs:
            out.append(f"        {name!r}: _h_{name},")
        out.append("    }")
        out.append("")
        return "\n".join(out)

    # -- per-handler emission ----------------------------------------------
    def _emit_handler(self, handler: ast.DHandler) -> List[Tuple[int, str]]:
        self.lines = []
        self.indent = 1
        self._temp_n = 0
        self._site_n = 0
        self._undef_inits = set()
        self._ret_stack = [("handler",)]
        self._inlining = set()
        self._effects = self._scan_effects(handler.body, set())
        env = _Env({p.name: f"v_{p.name}" for p in handler.params},
                   {p.name for p in handler.params})
        terminated = self._stmts(handler.body, env)
        if not terminated:
            self._emit_result_return()
        body = self.lines
        # prologue: argc check, parameter binds, sentinel + effect inits
        head: List[Tuple[int, str]] = [(0, f"def _h_{handler.name}(_args):")]
        n = len(handler.params)
        head.append((1, f"if len(_args) != {n}:"))
        head.append((2,
            f"raise _IE(\"event '{handler.name}' carries %d arguments but "
            f"the handler expects {n}\" % (len(_args),))"))
        for i, p in enumerate(handler.params):
            head.append((1, f"v_{p.name} = int(_args[{i}])"))
        for py_name in sorted(self._undef_inits):
            head.append((1, f"{py_name} = _UNDEF"))
        eff = self._effects
        if "gen" in eff:
            head.append((1, "_gen = []"))
        if "prints" in eff:
            head.append((1, "_prints = []"))
        if "drop" in eff:
            head.append((1, "_drop = False"))
        if "fwd" in eff:
            head.append((1, "_fwd = None"))
        if "flood" in eff:
            head.append((1, "_flood = False"))
        src = head + body
        # compile the handler in isolation: an emitter bug becomes a tree
        # walker fallback instead of a broken module
        probe = "\n".join("    " * lv + tx for lv, tx in src)
        compile(probe, f"<codegen-probe:{handler.name}>", "exec")
        return src

    def _emit_result_return(self) -> None:
        eff = self._effects
        if not eff:
            # no generate/printf/drop/forward/flood anywhere in the handler
            # (or its callees): every invocation produces the same empty
            # result, so return a shared immutable singleton — consumers
            # only read results, never mutate them.
            self._line("return _EMPTY_R")
            return
        gen = "_gen" if "gen" in eff else "()"
        prints = "_prints" if "prints" in eff else "()"
        drop = "_drop" if "drop" in eff else "False"
        fwd = "_fwd" if "fwd" in eff else "None"
        flood = "_flood" if "flood" in eff else "False"
        self._line(f"return _ER({gen}, {prints}, {drop}, {fwd}, {flood})")

    def _scan_effects(self, stmts: Sequence[ast.Stmt], seen: Set[str]) -> Set[str]:
        eff: Set[str] = set()

        def walk_expr(e: ast.Expr) -> None:
            if isinstance(e, ast.ECall):
                f = e.func
                if f == "printf":
                    eff.add("prints")
                elif f == "drop":
                    eff.add("drop")
                elif f == "forward":
                    eff.add("fwd")
                elif f == "flood":
                    eff.add("flood")
                elif self.info.is_function(f) and f not in seen:
                    seen.add(f)
                    eff.update(self._scan_effects(self.info.functions[f].body, seen))
                elif self.info.is_event(f):
                    pass
                for a in e.args:
                    walk_expr(a)
            elif isinstance(e, ast.EUnary):
                walk_expr(e.operand)
            elif isinstance(e, ast.EBinary):
                walk_expr(e.left)
                walk_expr(e.right)
            elif isinstance(e, (ast.EGroup, ast.EEvent)):
                for a in (e.members if isinstance(e, ast.EGroup) else e.args):
                    walk_expr(a)

        def walk_stmt(s: ast.Stmt) -> None:
            if isinstance(s, ast.SLocal):
                walk_expr(s.init)
            elif isinstance(s, ast.SAssign):
                walk_expr(s.value)
            elif isinstance(s, ast.SIf):
                walk_expr(s.cond)
                for t in s.then_body:
                    walk_stmt(t)
                for t in s.else_body:
                    walk_stmt(t)
            elif isinstance(s, ast.SMatch):
                for e in s.scrutinees:
                    walk_expr(e)
                for _, body in s.branches:
                    for t in body:
                        walk_stmt(t)
            elif isinstance(s, ast.SReturn):
                if s.value is not None:
                    walk_expr(s.value)
            elif isinstance(s, ast.SGenerate):
                eff.add("gen")
                walk_expr(s.event)
            elif isinstance(s, ast.SExpr):
                walk_expr(s.expr)
            elif isinstance(s, ast.SSeq):
                for t in s.body:
                    walk_stmt(t)

        for s in stmts:
            walk_stmt(s)
        return eff

    # -- low-level emission helpers ----------------------------------------
    def _line(self, text: str) -> None:
        self.lines.append((self.indent, text))

    def _temp(self) -> str:
        self._temp_n += 1
        return f"_t{self._temp_n}"

    @staticmethod
    def _is_atom(s: str) -> bool:
        return s.isidentifier() or s.lstrip("-").isdigit() or (
            s.startswith("'") and s.endswith("'") and s.count("'") == 2)

    def _to_temp(self, s: str) -> str:
        t = self._temp()
        self._line(f"{t} = {s}")
        return t

    def _force_safe(self, s: str, safe: bool) -> str:
        """An expression string that may be re-evaluated / reordered freely."""
        if safe:
            return s
        return self._to_temp(s)

    def _bindable(self, s: str, safe: bool, uses: int = 1) -> str:
        """Hoist to a temp when unsafe, or when a non-atomic pure expression
        would be duplicated."""
        if not safe:
            return self._to_temp(s)
        if uses > 1 and not self._is_atom(s):
            return self._to_temp(s)
        return s

    def _buffered(self, fn, *args):
        """Run ``fn`` capturing emitted lines into a private buffer."""
        saved = self.lines
        self.lines = []
        try:
            result = fn(*args)
            return result, self.lines
        finally:
            self.lines = saved

    def _parts(self, exprs: Sequence[ast.Expr], env: _Env) -> List[Tuple[str, bool]]:
        """Compile sibling expressions preserving left-to-right evaluation:
        any unsafe part followed by a part with prelude statements is hoisted
        to a temp so its evaluation cannot drift past its siblings'."""
        compiled = []
        for e in exprs:
            (s, safe), buf = self._buffered(self._value, e, env)
            compiled.append([buf, s, safe])
        last_prelude = -1
        for i, (buf, _, _) in enumerate(compiled):
            if buf:
                last_prelude = i
        out: List[Tuple[str, bool]] = []
        for i, (buf, s, safe) in enumerate(compiled):
            self.lines.extend(buf)
            if i < last_prelude and not safe:
                out.append((self._to_temp(s), True))
            else:
                out.append((s, safe))
        return out

    # -- statements ---------------------------------------------------------
    def _stmts(self, stmts: Sequence[ast.Stmt], env: _Env) -> bool:
        terminated = False
        for stmt in _effective(stmts):
            if self._stmt(stmt, env):
                terminated = True
        return terminated

    def _stmt(self, stmt: ast.Stmt, env: _Env) -> bool:
        if isinstance(stmt, ast.SLocal):
            # the initialiser is compiled *before* the name is (re)declared,
            # mirroring the closure compiler's slot-allocation order
            s, safe = self._value(stmt.init, env)
            py = env.scope.get(stmt.name)
            if py is None:
                py = env.scope[stmt.name] = self._local_name(stmt.name)
            self._line(f"{py} = {s}")
            env.defined.add(stmt.name)
            return False
        if isinstance(stmt, ast.SAssign):
            name = stmt.name
            py = env.scope.get(name)
            if py is None:
                # never declared: the closure compiler allocates the slot,
                # compiles the value (compile errors still fall back), and
                # raises before evaluating it
                env.scope[name] = self._local_name(name)
                self._buffered(self._value, stmt.value, env)
                self._line(
                    f"raise _IE(\"assignment to undeclared variable '{name}'\")")
                return True
            if name not in env.defined:
                self._undef_inits.add(py)
                self._line(f"if {py} is _UNDEF:")
                self.indent += 1
                self._line(
                    f"raise _IE(\"assignment to undeclared variable '{name}'\")")
                self.indent -= 1
            s, _ = self._value(stmt.value, env)
            self._line(f"{py} = {s}")
            env.defined.add(name)
            return False
        if isinstance(stmt, ast.SIf):
            return self._stmt_if(stmt, env)
        if isinstance(stmt, ast.SMatch):
            return self._stmt_match(stmt, env)
        if isinstance(stmt, ast.SReturn):
            return self._stmt_return(stmt, env)
        if isinstance(stmt, ast.SGenerate):
            parts = self._parts([stmt.event], env)
            s, safe = parts[0]
            v = s if self._is_atom(s) else self._to_temp(s)
            if not self._statically_event(stmt.event):
                self._line(f"if not isinstance({v}, _EV):")
                self.indent += 1
                self._line("raise _IE(\"generate expects an event value\")")
                self.indent -= 1
            self._line(f"_gen.append({v})")
            return False
        if isinstance(stmt, ast.SExpr):
            s, safe = self._value(stmt.expr, env)
            if not safe:
                self._line(s)
            return False
        raise _EmitError(f"unhandled statement {type(stmt).__name__}")

    def _stmt_if(self, stmt: ast.SIf, env: _Env) -> bool:
        then_body = _effective(stmt.then_body)
        else_body = _effective(stmt.else_body)
        cond, safe = self._cond(stmt.cond, env)
        if not then_body and not else_body:
            # the condition may have side effects; a pure one can be elided
            if not safe:
                self._line(cond if not cond.startswith("not ") else f"({cond})")
            return False
        if not then_body:
            self._line(f"if not ({cond}):")
            self.indent += 1
            benv = env.branch()
            term = self._stmts(else_body, benv)
            self.indent -= 1
            env.defined &= benv.defined if not term else env.defined
            return False
        self._line(f"if {cond}:")
        self.indent += 1
        tenv = env.branch()
        tterm = self._stmts(then_body, tenv)
        self.indent -= 1
        if not else_body:
            if not tterm:
                env.defined &= tenv.defined
            return False
        self._line("else:")
        self.indent += 1
        eenv = env.branch()
        eterm = self._stmts(else_body, eenv)
        self.indent -= 1
        if tterm and eterm:
            return True
        if tterm:
            survivors = eenv.defined
        elif eterm:
            survivors = tenv.defined
        else:
            survivors = tenv.defined & eenv.defined
        env.defined.clear()
        env.defined.update(survivors)
        return False

    def _stmt_match(self, stmt: ast.SMatch, env: _Env) -> bool:
        # all scrutinees are evaluated first, even if no branch matches
        parts = self._parts(stmt.scrutinees, env)
        scruts = [self._force_safe(s, safe) for s, safe in parts]
        first = True
        emitted_catchall = False
        terms: List[bool] = []
        for pattern, body in stmt.branches:
            conds = [
                f"{scruts[i]} == {p}"
                for i, p in enumerate(pattern[: len(scruts)])
                if p is not None
            ]
            benv = env.branch()
            if not conds:
                if first:
                    terms.append(self._stmts(body, benv))
                else:
                    self._line("else:")
                    self.indent += 1
                    if not self._stmts(body, benv):
                        self._line("pass")
                        terms.append(False)
                    else:
                        terms.append(True)
                    self.indent -= 1
                emitted_catchall = True
                break
            kw = "if" if first else "elif"
            self._line(f"{kw} {' and '.join(conds)}:")
            self.indent += 1
            if not self._stmts(body, benv):
                self._line("pass")
                terms.append(False)
            else:
                terms.append(True)
            self.indent -= 1
            first = False
        # conservative join: declarations from branches stay maybe-undefined
        return emitted_catchall and bool(terms) and all(terms)

    def _stmt_return(self, stmt: ast.SReturn, env: _Env) -> bool:
        top = self._ret_stack[-1]
        if stmt.value is not None:
            s, safe = self._value(stmt.value, env)
        else:
            s, safe = None, True
        if top[0] == "handler":
            # handler-level return: the value is evaluated then discarded
            if s is not None and not safe:
                self._line(s)
            self._emit_result_return()
            return True
        ret_var = top[1]
        if s is None:
            self._line(f"{ret_var} = 0")
        else:
            self._line(f"{ret_var} = {s}")
        self._line("break")
        return True

    def _statically_event(self, e: ast.Expr) -> bool:
        if isinstance(e, ast.EEvent):
            return True
        if isinstance(e, ast.ECall):
            return e.func in EVENT_COMBINATORS or self.info.is_event(e.func)
        return False

    def _local_name(self, name: str) -> str:
        prefix = self._ret_stack[-1][2] if self._ret_stack[-1][0] == "fun" else "v_"
        return f"{prefix}{name}"

    def _flush(self, buf: List[Tuple[int, str]], delta: int = 0) -> None:
        if delta:
            self.lines.extend((lv + delta, tx) for lv, tx in buf)
        else:
            self.lines.extend(buf)

    # -- constant folding ---------------------------------------------------
    def _fold(self, e: ast.Expr, env: _Env) -> Optional[int]:
        if isinstance(e, ast.EInt):
            return e.value
        if isinstance(e, ast.EBool):
            return 1 if e.value else 0
        if isinstance(e, ast.EVar):
            name = e.name
            # SELF and group constants are bindings, never folded: they vary
            # between switches that share one generated module
            if name in env.scope or name == "SELF" or name in self.info.consts.groups:
                return None
            return self.info.consts.lookup(name)
        if isinstance(e, ast.EUnary):
            v = self._fold(e.operand, env)
            if v is None:
                return None
            if e.op is ast.UnOp.NEG:
                return (-v) & _MASK
            if e.op is ast.UnOp.BITNOT:
                return ~v & _MASK
            return 0 if v else 1
        if isinstance(e, ast.EBinary):
            left = self._fold(e.left, env)
            if left is None:
                return None
            right = self._fold(e.right, env)
            if right is None:
                return None
            if e.op is ast.BinOp.AND:
                return 0 if not left else (1 if right else 0)
            if e.op is ast.BinOp.OR:
                return 1 if left else (1 if right else 0)
            try:
                return _apply_binop(e.op, left, right)
            except Exception:
                return None
        return None

    # -- expressions --------------------------------------------------------
    def _value(self, e: ast.Expr, env: _Env) -> Tuple[str, bool]:
        folded = self._fold(e, env)
        if folded is not None:
            return (repr(folded), True)
        if isinstance(e, ast.EVar):
            return self._var(e.name, env)
        if isinstance(e, ast.EUnary):
            s, safe = self._value(e.operand, env)
            if e.op is ast.UnOp.NEG:
                return (f"((-({s})) & 4294967295)", safe)
            if e.op is ast.UnOp.BITNOT:
                return (f"((~({s})) & 4294967295)", safe)
            return (f"(0 if ({s}) else 1)", safe)
        if isinstance(e, ast.EBinary):
            return self._binary(e, env)
        if isinstance(e, ast.EGroup):
            parts = self._parts(e.members, env)
            if not parts:
                return ("()", True)
            items = ", ".join(f"({s})" for s, _ in parts)
            return (f"({items},)", all(safe for _, safe in parts))
        if isinstance(e, ast.EEvent):
            return self._event_ctor(e.name, e.args, env)
        if isinstance(e, ast.ECall):
            return self._call(e, env)
        raise _EmitError(f"unhandled expression {type(e).__name__}")

    def _var(self, name: str, env: _Env) -> Tuple[str, bool]:
        info = self.info
        # fallback chain for names not bound in the handler scope: SELF, then
        # group constants, then scalar constants, then global array handles
        have_fb = True
        if name == "SELF":
            fb = self._bind("self")
        elif name in info.consts.groups:
            fb = self._bind("group", name)
        elif info.consts.lookup(name) is not None:
            fb = repr(info.consts.lookup(name))
        elif info.is_global(name):
            fb = repr(name)
        else:
            have_fb = False
            fb = ""
        py = env.scope.get(name)
        if py is None:
            if have_fb:
                return (fb, True)
            return (f"_undef({name!r})", False)
        if name in env.defined:
            return (py, True)
        self._undef_inits.add(py)
        if have_fb:
            return (f"({fb} if {py} is _UNDEF else {py})", True)
        return (f"_chk({py}, {name!r})", False)

    def _binary(self, e: ast.EBinary, env: _Env) -> Tuple[str, bool]:
        op = e.op
        if op is ast.BinOp.AND or op is ast.BinOp.OR:
            ls, lsafe = self._value(e.left, env)
            (rs, rsafe), rbuf = self._buffered(self._value, e.right, env)
            if not rbuf:
                if op is ast.BinOp.AND:
                    return (f"(0 if not ({ls}) else (1 if ({rs}) else 0))",
                            lsafe and rsafe)
                return (f"(1 if ({ls}) else (1 if ({rs}) else 0))",
                        lsafe and rsafe)
            # the right operand needs statements: lower the short-circuit
            t = self._temp()
            if op is ast.BinOp.AND:
                self._line(f"{t} = 0")
                self._line(f"if ({ls}):")
            else:
                self._line(f"{t} = 1")
                self._line(f"if not ({ls}):")
            self.indent += 1
            self._flush(rbuf, 1)
            self._line(f"{t} = 1 if ({rs}) else 0")
            self.indent -= 1
            return (t, True)
        parts = self._parts([e.left, e.right], env)
        (ls, lsafe), (rs, rsafe) = parts
        if op in (ast.BinOp.DIV, ast.BinOp.MOD) and not self._is_atom(rs):
            # the guarded template duplicates the divisor; hoist it (and the
            # dividend first, to keep evaluation order) when not trivial
            if not lsafe:
                ls, lsafe = self._to_temp(ls), True
            rs, rsafe = self._to_temp(rs), True
        return (_binop_template(op, ls, rs), lsafe and rsafe)

    def _cond(self, e: ast.Expr, env: _Env) -> Tuple[str, bool]:
        folded = self._fold(e, env)
        if folded is not None:
            return (repr(folded), True)
        if isinstance(e, ast.EBinary):
            op = e.op
            if op in _CMP_OPS:
                parts = self._parts([e.left, e.right], env)
                (ls, lsafe), (rs, rsafe) = parts
                return (f"({ls}) {_CMP_OPS[op]} ({rs})", lsafe and rsafe)
            if op is ast.BinOp.AND or op is ast.BinOp.OR:
                ls, lsafe = self._cond(e.left, env)
                (rs, rsafe), rbuf = self._buffered(self._cond, e.right, env)
                if not rbuf:
                    kw = "and" if op is ast.BinOp.AND else "or"
                    return (f"({ls}) {kw} ({rs})", lsafe and rsafe)
                t = self._temp()
                if op is ast.BinOp.AND:
                    self._line(f"{t} = False")
                    self._line(f"if {ls}:")
                else:
                    self._line(f"{t} = True")
                    self._line(f"if not ({ls}):")
                self.indent += 1
                self._flush(rbuf, 1)
                self._line(f"{t} = {rs}")
                self.indent -= 1
                return (t, True)
        if isinstance(e, ast.EUnary) and e.op is ast.UnOp.NOT:
            s, safe = self._cond(e.operand, env)
            return (f"not ({s})", safe)
        return self._value(e, env)

    # -- calls --------------------------------------------------------------
    def _event_ctor(self, name: str, args: Sequence[ast.Expr], env: _Env) -> Tuple[str, bool]:
        parts = self._parts(args, env)
        if parts:
            items = ", ".join(f"({s})" for s, _ in parts)
            tup = f"({items},)"
        else:
            tup = "()"
        # EventInstance(name, args, delay_ns=0, location=LOCAL, group=None,
        # source=SELF); unsafe: allocation consumes the global serial counter
        return (f"_EV({name!r}, {tup}, 0, -1, None, {self._bind('self')})", False)

    def _call(self, e: ast.ECall, env: _Env) -> Tuple[str, bool]:
        func = e.func
        info = self.info
        if func in ARRAY_METHODS:
            return self._array_method(e, env)
        if func in EVENT_COMBINATORS:
            return self._combinator(e, env)
        if func == "hash":
            width = e.size_args[0] if e.size_args else 32
            parts = self._parts(e.args, env)
            n = len(parts) + 1
            self._pack_arities.add(n)
            if parts:
                args = ", ".join(f"(({s}) & 4294967295)" for s, _ in parts)
                core = f"_c32(_pk{n}(0, {args}))"
            else:
                core = f"_c32(_pk{n}(0))"
            safe = all(s for _, s in parts)
            if width >= 32:
                return (core, safe)
            wmask = (1 << width) - 1 if width > 0 else 0
            return (f"({core} & {wmask})", safe)
        if func == "Sys.time":
            return (f"({self._bind('runtime')}.time_ns & 4294967295)", True)
        if func == "Sys.self":
            return (self._bind("self"), True)
        if func == "Sys.random":
            rt = self._bind("runtime")
            if e.args:
                s, _ = self._value(e.args[0], env)
                return (f"{rt}.random({s})", False)
            return (f"{rt}.random()", False)
        if func == "drop":
            self._line("_drop = True")
            return ("0", True)
        if func == "forward":
            s, _ = self._value(e.args[0], env)
            self._line(f"_fwd = {s}")
            return ("0", True)
        if func == "flood":
            self._line("_flood = True")
            return ("0", True)
        if func == "printf":
            parts = self._parts(e.args, env)
            if not parts:
                self._line('_prints.append("")')
            elif len(parts) == 1:
                self._line(f"_prints.append(str({parts[0][0]}))")
            else:
                items = ", ".join(f"str({s})" for s, _ in parts)
                self._line(f'_prints.append(" ".join(({items},)))')
            return ("0", True)
        if info.is_function(func):
            return self._user_call(func, e.args, env)
        if func in info.externs:
            parts = self._parts(e.args, env)
            if parts:
                items = ", ".join(f"({s})" for s, _ in parts)
                tup = f"({items},)"
            else:
                tup = "()"
            return (f"_extern({self._bind('externs')}, {func!r}, {tup})", False)
        if info.is_event(func):
            return self._event_ctor(func, e.args, env)
        raise _EmitError(f"call to unknown function '{func}'")

    def _combinator(self, e: ast.ECall, env: _Env) -> Tuple[str, bool]:
        func = e.func
        ev_expr, arg_expr = e.args[0], e.args[1]
        s, _ = self._value(ev_expr, env)
        tv = s if self._is_atom(s) else self._to_temp(s)
        if not self._statically_event(ev_expr):
            self._line(f"if not isinstance({tv}, _EV):")
            self.indent += 1
            self._line(f"raise _IE(\"{func} expects an event value\")")
            self.indent -= 1
        # the second argument is evaluated only after the event-type check
        a, _ = self._value(arg_expr, env)
        method = "delay" if func == "Event.delay" else "locate"
        return (self._to_temp(f"{tv}.{method}({a})"), True)

    def _user_call(self, func: str, args: Sequence[ast.Expr], env: _Env) -> Tuple[str, bool]:
        if func in self._inlining:
            raise _EmitError(f"recursive function '{func}'")
        fun = self.info.functions[func]
        nparams = len(fun.params)
        self._inlining.add(func)
        try:
            self._site_n += 1
            prefix = f"f{self._site_n}_v_"
            callee = _Env({}, set())
            # arguments are zip-truncated; extra argument expressions are
            # never compiled, missing parameters read like undefined slots
            use_args = list(args[:nparams])
            for i, p in enumerate(fun.params):
                py = f"{prefix}{p.name}"
                callee.scope[p.name] = py
                if i < len(use_args):
                    s, _ = self._value(use_args[i], env)
                    self._line(f"{py} = {s}")
                    callee.defined.add(p.name)
                else:
                    self._undef_inits.add(py)
            body = _effective(fun.body)
            if len(body) == 1 and isinstance(body[0], ast.SReturn):
                ret = body[0]
                if ret.value is None:
                    return ("0", True)
                return self._value(ret.value, callee)
            ret_var = f"f{self._site_n}_r"
            self._line(f"{ret_var} = 0")
            self._line("while True:")
            self.indent += 1
            self._ret_stack.append(("fun", ret_var, prefix))
            try:
                self._stmts(body, callee)
            finally:
                self._ret_stack.pop()
            self._line("break")
            self.indent -= 1
            return (ret_var, True)
        finally:
            self._inlining.discard(func)

    # -- array methods ------------------------------------------------------
    def _anchor(self, e: Optional[ast.Expr], env: _Env) -> str:
        """Evaluate an array-method operand to a reusable atom *now*, keeping
        the closure engine's operand evaluation order and its position
        relative to the read/write counter bumps."""
        if e is None:
            return "0"
        s, _ = self._value(e, env)
        if self._is_atom(s):
            return s
        return self._to_temp(s)

    def _array_method(self, e: ast.ECall, env: _Env) -> Tuple[str, bool]:
        info = self.info
        arr_expr = e.args[0]
        idx_expr = e.args[1]
        memop_names: List[str] = []
        value_exprs: List[ast.Expr] = []
        for a in e.args[2:]:
            if isinstance(a, ast.EVar) and info.is_memop(a.name):
                memop_names.append(a.name)
            else:
                value_exprs.append(a)
        method = e.func
        static = isinstance(arr_expr, ast.EVar) and info.is_global(arr_expr.name)
        if static:
            return self._static_array_method(
                method, arr_expr.name, idx_expr, memop_names, value_exprs, env)
        return self._dynamic_array_method(
            method, arr_expr, idx_expr, memop_names, value_exprs, env)

    def _static_array_method(self, method: str, arr_name: str,
                             idx_expr: ast.Expr, memop_names: List[str],
                             value_exprs: List[ast.Expr], env: _Env) -> Tuple[str, bool]:
        g = self.info.globals[arr_name]
        size = g.size
        if not isinstance(size, int) or size < 1:
            raise _EmitError(f"array '{arr_name}' has no static size")
        cm = _MASK & ((1 << g.cell_width) - 1)
        arr = self._bind("array", arr_name)
        cells = self._bind("cells", arr_name)

        if method in ("Array.get", "Array.getm"):
            memop = memop_names[0] if memop_names else None
            arg_e = value_exprs[0] if value_exprs else None
            if memop is None and arg_e is None:
                idx_s, _ = self._value(idx_expr, env)
                ti = self._to_temp(f"(({idx_s}) % {size})")
                self._line(f"{arr}.reads += 1")
                return (f"{cells}[{ti}]", False)
            ir = self._memop_ir(memop) if memop is not None else None
            idx_a = self._anchor(idx_expr, env)
            arg_a = self._anchor(arg_e, env)
            ti = self._to_temp(f"({idx_a}) % {size}")
            self._line(f"{arr}.reads += 1")
            if ir is None:
                return (f"{cells}[{ti}]", False)
            to = self._to_temp(f"{cells}[{ti}]")
            body = self._memop_str(ir, to, arg_a)
            return (f"(({body}) & {cm})", True)

        if method in ("Array.set", "Array.setm"):
            ir = self._memop_ir(memop_names[0]) if memop_names else None
            return self._static_array_set(arr, cells, size, cm, ir,
                                          idx_expr, value_exprs, env)

        if method == "Array.update":
            gir = self._memop_ir(memop_names[0]) if memop_names else None
            sir = self._memop_ir(memop_names[1]) if len(memop_names) > 1 else None
            idx_a = self._anchor(idx_expr, env)
            if len(value_exprs) >= 2:
                ga = self._anchor(value_exprs[0], env)
                sa = self._anchor(value_exprs[1], env)
            elif len(value_exprs) == 1:
                ga = sa = self._anchor(value_exprs[0], env)
            else:
                ga = sa = "0"
            ti = self._to_temp(f"({idx_a}) % {size}")
            self._line(f"{arr}.reads += 1")
            self._line(f"{arr}.writes += 1")
            to = self._to_temp(f"{cells}[{ti}]")
            if gir is not None:
                rt = self._to_temp(f"(({self._memop_str(gir, to, ga)}) & {cm})")
            else:
                rt = to
            if sir is not None:
                self._line(f"{cells}[{ti}] = (({self._memop_str(sir, to, sa)}) & {cm})")
            else:
                self._line(f"{cells}[{ti}] = (({sa}) & {cm})")
            return (rt, True)

        raise _EmitError(f"unhandled array method {method}")

    def _static_array_set(self, arr: str, cells: str, size: int, cm: int,
                          ir: Optional[tuple], idx_expr: ast.Expr,
                          value_exprs: List[ast.Expr], env: _Env) -> Tuple[str, bool]:
        if ir is not None:
            # memop variant: closure evaluates idx, then the memop argument,
            # then wraps the index, bumps, reads the old cell, stores
            idx_a = self._anchor(idx_expr, env)
            arg_a = self._anchor(value_exprs[0] if value_exprs else None, env)
            ti = self._to_temp(f"({idx_a}) % {size}")
            self._line(f"{arr}.writes += 1")
            to = self._to_temp(f"{cells}[{ti}]")
            self._line(f"{cells}[{ti}] = (({self._memop_str(ir, to, arg_a)}) & {cm})")
            return ("0", True)
        idx_a = self._anchor(idx_expr, env)
        val_a = self._anchor(value_exprs[0] if value_exprs else None, env)
        ti = self._to_temp(f"({idx_a}) % {size}")
        self._line(f"{arr}.writes += 1")
        self._line(f"{cells}[{ti}] = (({val_a}) & {cm})")
        return ("0", True)

    def _dynamic_array_method(self, method: str, arr_expr: ast.Expr,
                              idx_expr: ast.Expr, memop_names: List[str],
                              value_exprs: List[ast.Expr], env: _Env) -> Tuple[str, bool]:
        bad = "the first argument of an Array method must be a global array"
        if not isinstance(arr_expr, ast.EVar) or arr_expr.name not in env.scope:
            self._line(f"raise _IE({bad!r})")
            return ("0", True)
        py = env.scope[arr_expr.name]
        if arr_expr.name not in env.defined:
            # the closure engine reads the raw slot here (no _UNDEF check):
            # the sentinel is not a string, so _resolve raises the same error
            self._undef_inits.add(py)
        # validated (and bound) mirrors of the closure compiler's
        # compile-time memop_fn calls
        mvars = []
        for name in memop_names:
            self._memop_ir(name)
            mvars.append(self._bind("memop", name))
        tarr = self._to_temp(f"_resolve({self._bind('arrays')}, {py})")

        if method in ("Array.get", "Array.getm"):
            mv = mvars[0] if mvars else "None"
            idx_a = self._anchor(idx_expr, env)
            arg_a = self._anchor(value_exprs[0] if value_exprs else None, env)
            return (self._to_temp(f"{tarr}.get({idx_a}, {mv}, {arg_a})"), True)

        if method in ("Array.set", "Array.setm"):
            idx_a = self._anchor(idx_expr, env)
            if mvars:
                arg_a = self._anchor(value_exprs[0] if value_exprs else None, env)
                self._line(f"{tarr}.set({idx_a}, memop={mvars[0]}, arg={arg_a})")
            else:
                val_a = self._anchor(value_exprs[0] if value_exprs else None, env)
                self._line(f"{tarr}.set({idx_a}, value={val_a})")
            return ("0", True)

        if method == "Array.update":
            gmv = mvars[0] if mvars else "None"
            smv = mvars[1] if len(mvars) > 1 else "None"
            idx_a = self._anchor(idx_expr, env)
            anchors = [self._anchor(v, env) for v in value_exprs]
            ga = anchors[0] if anchors else "0"
            sa = anchors[1] if len(anchors) > 1 else (anchors[0] if anchors else "0")
            return (self._to_temp(
                f"{tarr}.update({idx_a}, {gmv}, {ga}, {smv}, {sa})"), True)

        raise _EmitError(f"unhandled array method {method}")

    # -- memop inlining -----------------------------------------------------
    def _memop_ir(self, name: str) -> tuple:
        """Validate a memop declaration (mirroring ``SwitchRuntime.memop_fn``)
        and return its body shape for inlining; any violation aborts the
        handler to the tree walker, which re-raises the original error."""
        cached = self._memop_cache.get(name)
        if cached is not None:
            return cached
        decl = self.info.memops.get(name)
        if decl is None:
            raise _EmitError(f"no memop named '{name}'")
        if len(decl.params) != 2:
            raise _EmitError(f"memop '{name}' must take exactly two parameters")
        stored, local = decl.params[0].name, decl.params[1].name
        if stored == local:
            raise _EmitError(f"memop '{name}' parameter names collide")
        body = [s for s in decl.body if not isinstance(s, ast.SNoop)]
        if not body:
            raise _EmitError(f"memop '{name}' has an empty body")
        stmt = body[0]
        if isinstance(stmt, ast.SReturn):
            if stmt.value is None:
                raise _EmitError(f"memop '{name}' returns no value")
            ir = ("ret", stored, local, stmt.value)
        elif isinstance(stmt, ast.SIf):
            then_b = [s for s in stmt.then_body if not isinstance(s, ast.SNoop)]
            else_b = [s for s in stmt.else_body if not isinstance(s, ast.SNoop)]
            if not then_b or not else_b:
                raise _EmitError(f"memop '{name}' missing a branch return")
            for b in (then_b, else_b):
                if not isinstance(b[0], ast.SReturn) or b[0].value is None:
                    raise _EmitError(f"memop '{name}' branch is not a return")
            ir = ("if", stored, local, stmt.cond, then_b[0].value, else_b[0].value)
        else:
            raise _EmitError(f"memop '{name}' body shape unsupported")
        # validate every expression up front (the closure compiler does this
        # inside memop_fn at handler-compile time)
        self._memop_str(ir, "_s", "_l")
        self._memop_cache[name] = ir
        return ir

    def _memop_str(self, ir: tuple, stored_atom: str, local_atom: str) -> str:
        if ir[0] == "ret":
            return self._memop_expr(ir[3], ir[1], ir[2], stored_atom, local_atom)
        cond = self._memop_expr(ir[3], ir[1], ir[2], stored_atom, local_atom)
        then = self._memop_expr(ir[4], ir[1], ir[2], stored_atom, local_atom)
        els = self._memop_expr(ir[5], ir[1], ir[2], stored_atom, local_atom)
        return f"(({then}) if ({cond}) else ({els}))"

    def _memop_expr(self, e: ast.Expr, stored: str, local: str,
                    stored_atom: str, local_atom: str) -> str:
        if isinstance(e, ast.EInt):
            return repr(e.value)
        if isinstance(e, ast.EBool):
            return "1" if e.value else "0"
        if isinstance(e, ast.EVar):
            if e.name == stored:
                return stored_atom
            if e.name == local:
                return local_atom
            const = self.info.consts.lookup(e.name)
            if const is not None:
                return repr(const)
            raise _EmitError(f"undefined variable '{e.name}' in memop")
        if isinstance(e, ast.EUnary):
            x = self._memop_expr(e.operand, stored, local, stored_atom, local_atom)
            if e.op is ast.UnOp.NEG:
                return f"(-({x}))"  # memop negation is unmasked
            if e.op is ast.UnOp.BITNOT:
                return f"((~({x})) & 4294967295)"
            return f"(0 if ({x}) else 1)"
        if isinstance(e, ast.EBinary):
            l = self._memop_expr(e.left, stored, local, stored_atom, local_atom)
            r = self._memop_expr(e.right, stored, local, stored_atom, local_atom)
            return _binop_template(e.op, l, r)
        raise _EmitError("expression is not allowed in memop")


class CodegenSwitchRuntime:
    """Executes handlers through source-generated functions; drop-in
    compatible with :class:`~repro.interp.interpreter.HandlerInterpreter`
    and :class:`~repro.interp.compiled.CompiledSwitchRuntime`.

    The generated module is shared across every switch whose checked program
    has the same digest; this wrapper only materialises the per-switch
    bindings (array handles, cell lists, group tuples, memop callables, the
    runtime itself) and keeps the tree walker around for handlers the emitter
    could not lower.
    """

    def __init__(self, runtime: SwitchRuntime):
        self.runtime = runtime
        self.info: ProgramInfo = runtime.info
        self._tree_walker = HandlerInterpreter(runtime)
        self.module = compile_program(runtime.checked)
        bindings: Dict[str, object] = {}
        for key in self.module.binding_keys:
            kind, _, rest = key.partition(":")
            if kind == "runtime":
                bindings[key] = runtime
            elif kind == "self":
                bindings[key] = runtime.switch_id
            elif kind == "externs":
                bindings[key] = runtime.externs
            elif kind == "arrays":
                bindings[key] = runtime.arrays
            elif kind == "array":
                bindings[key] = runtime.array(rest)
            elif kind == "cells":
                bindings[key] = runtime.array(rest).cells
            elif kind == "group":
                bindings[key] = tuple(self.info.consts.groups[rest])
            elif kind == "memop":
                bindings[key] = runtime.memop_fn(rest)
        built = self.module.build(bindings)
        self._handlers: Dict[str, Optional[Callable]] = {
            name: built.get(name) for name in self.info.handlers
        }
        self.run_fast = self._make_run_fast()

    @property
    def fallback_handler_names(self) -> List[str]:
        """Handlers the emitter could not lower (they run through the tree
        walker instead).  Empty for every bundled application — asserted by
        the differential suite, like the closure engine's equivalent."""
        return sorted(name for name, h in self._handlers.items() if h is None)

    # -- public entry --------------------------------------------------------
    def run(self, event: EventInstance) -> ExecutionResult:
        """Run the handler for ``event`` once, atomically."""
        fn = self._handlers.get(event.name, _NO_HANDLER)
        if fn is _NO_HANDLER:
            # events without handlers are legal: they exit the switch
            return _EMPTY_RESULT
        if fn is None:
            if _OBS.enabled:
                _M_CODEGEN_FALLBACKS.inc()
            return self._tree_walker.run(event)
        if _OBS.enabled:
            _M_CODEGEN_EVENTS.inc()
        return fn(event.args)

    def _make_run_fast(self) -> Callable[[EventInstance], ExecutionResult]:
        """Build the obs-free dispatch used by the network's inlined batch
        drain.  The drain only engages when obs metrics are disabled (see
        ``Network._fast_eligible``), so the per-event ``_OBS.enabled`` checks
        in :meth:`run` would always be false there — this closure hoists them
        (and the attribute lookups) out of the per-event path.  Behaviour is
        otherwise identical to :meth:`run`."""
        get = self._handlers.get
        walker_run = self._tree_walker.run

        def run_fast(event: EventInstance) -> ExecutionResult:
            fn = get(event.name, _NO_HANDLER)
            if fn is _NO_HANDLER:
                return _EMPTY_RESULT
            if fn is None:
                return walker_run(event)
            return fn(event.args)

        return run_fast

    def call_function(self, name: str, args: Sequence[int]) -> int:
        """Call a ``fun`` directly (useful for tests); the tree walker is
        semantically identical, so no source is generated for this path."""
        return self._tree_walker.call_function(name, args)
