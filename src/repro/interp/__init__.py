"""The Lucid interpreter: event-driven execution of Lucid programs on a
simulated switch or network of switches."""

from repro.interp.arrays import RuntimeArray
from repro.interp.compiled import CompiledSwitchRuntime, HandlerCompiler
from repro.interp.engine import (
    ENGINE_NAMES,
    ENGINES,
    CompiledEngine,
    PisaEngine,
    ReferenceEngine,
    SwitchEngine,
    make_engine,
    register_engine,
    resolve_engine_name,
)
from repro.interp.events import LOCAL, EventInstance
from repro.interp.interpreter import (
    ExecutionResult,
    HandlerInterpreter,
    SwitchRuntime,
    lucid_hash,
)
from repro.interp.network import (
    CONTROL,
    Network,
    SchedulerConfig,
    Switch,
    SwitchStats,
    TraceEntry,
    single_switch_network,
)

__all__ = [
    "RuntimeArray",
    "EventInstance",
    "LOCAL",
    "CONTROL",
    "SwitchEngine",
    "ReferenceEngine",
    "CompiledEngine",
    "PisaEngine",
    "ENGINES",
    "ENGINE_NAMES",
    "make_engine",
    "register_engine",
    "resolve_engine_name",
    "HandlerInterpreter",
    "CompiledSwitchRuntime",
    "HandlerCompiler",
    "SwitchRuntime",
    "ExecutionResult",
    "lucid_hash",
    "Network",
    "Switch",
    "SwitchStats",
    "SchedulerConfig",
    "TraceEntry",
    "single_switch_network",
]
