"""Pluggable switch execution engines.

A :class:`~repro.interp.network.Switch` executes events through a
*switch engine* — the substrate that runs one handler invocation and
returns what it produced.  Four engines ship with the repository:

``reference``
    The tree-walking :class:`~repro.interp.interpreter.HandlerInterpreter`.
    Slow, obviously-correct AST interpretation; the semantic baseline.

``compiled``
    The closure-compiling fast path
    (:class:`~repro.interp.compiled.CompiledSwitchRuntime`), behaviourally
    identical to the reference engine and several times faster.  The
    default.

``pisa``
    The hardware-accurate model: the program is lowered **once** through
    the full compiler backend (:func:`repro.backend.compiler.compile_checked`
    — normalisation, branch elimination, table merging, stage layout) and
    every event then executes through the resulting
    :class:`~repro.backend.layout.PipelineLayout` stage by stage via
    :class:`~repro.pisa.pipeline.PisaPipeline`, over the *same*
    :class:`~repro.interp.interpreter.SwitchRuntime` (register file, clock,
    PRNG, externs) the network simulation owns.  On top of executing, it
    charges the PISA substrate costs: recirculation-port bandwidth per
    locally generated event and pausable-delay-queue passes for delayed
    events (:mod:`repro.pisa.queues` semantics), with a bounded
    recirculation queue whose overflow surfaces as the scheduler's
    ``recirc_drops`` counter.

``codegen``
    The source-generating fast path (:mod:`repro.interp.codegen`): each
    handler body is emitted as flat Python source — slot-free locals,
    inlined memops and ALU helpers, constant-folded operands, pre-bound
    array cell lists — compiled once per program digest with
    :func:`compile`/``exec`` and shared by every switch running the same
    program.  Behaviourally identical to ``compiled`` and several times
    faster again.

All four produce :class:`~repro.interp.interpreter.ExecutionResult`
values, so the network scheduler is engine-agnostic: generated events —
including delayed and multicast ones — round-trip through the same
scheduler heap regardless of the substrate that produced them.  Identical
invariant verdicts and final array digests across engines are pinned by
the scenario parity suite (``tests/test_engines.py`` and
``python -m repro.scenarios run NAME --all-engines``).

Engines are registered by name in :data:`ENGINES`; ``register_engine``
admits project-specific substrates (e.g. a remote-switch RPC shim)
without touching the scheduler.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional, Type

from repro.errors import SimulationError
from repro.interp.events import EventInstance
from repro.interp.interpreter import ExecutionResult, HandlerInterpreter, SwitchRuntime
from repro.obs.metrics import OBS as _OBS, REGISTRY

# PISA-engine instruments; only touched behind an ``if _OBS.enabled:`` guard
_M_PISA_EVENTS = REGISTRY.counter(
    "repro_engine_pisa_events_total",
    "Events executed through the PISA pipeline engine.")
_M_PISA_STAGES = REGISTRY.counter(
    "repro_engine_pisa_stages_traversed_total",
    "Physical stages traversed by PISA-engine events.")
_M_PISA_TABLES = REGISTRY.counter(
    "repro_engine_pisa_tables_executed_total",
    "Match-action tables executed by PISA-engine events.")
_M_PISA_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_engine_pisa_recirc_queue_depth",
    "In-flight locally recirculating events (max across switches).")
_M_PISA_DELAY_PASSES = REGISTRY.counter(
    "repro_engine_pisa_delay_passes_total",
    "Recirculation passes charged for delayed local events.")


class SwitchEngine:
    """One execution substrate for one switch.

    Subclasses implement :meth:`run`.  The scheduler hooks
    (:meth:`admit_recirculation`, :meth:`on_recirculate`,
    :meth:`on_recirc_arrival`) are optional accounting callbacks invoked by
    :class:`~repro.interp.network.Network` around locally recirculated
    events; the interpreter engines leave them as no-ops.
    """

    #: registry name; subclasses must override
    name = "abstract"

    def __init__(self, runtime: SwitchRuntime, config: Optional[object] = None):
        self.runtime = runtime
        self.config = config
        #: the underlying executor object (``Switch.interpreter`` aliases it);
        #: engines wrapping a distinct executor overwrite this
        self.executor = self

    # -- execution ---------------------------------------------------------
    def run(self, event: EventInstance) -> ExecutionResult:
        raise NotImplementedError

    # -- scheduler hooks ---------------------------------------------------
    def admit_recirculation(self, event: EventInstance) -> bool:
        """Whether a locally generated event fits in the recirculation path.

        Returning ``False`` drops the event (counted as ``recirc_drops`` by
        the scheduler) — only capacity-modelling engines ever refuse."""
        return True

    def on_recirculate(self, event: EventInstance) -> None:
        """A locally generated event was scheduled back into this switch."""

    def on_recirc_arrival(self, event: EventInstance) -> None:
        """A previously recirculated event is about to be handled."""

    # -- lifecycle / reporting --------------------------------------------
    def reset(self) -> None:
        """Clear engine-side accounting (called by ``Network.reset()``)."""

    def pipeline_stats(self, duration_ns: int = 0) -> Optional[Dict[str, object]]:
        """Per-switch substrate statistics, or ``None`` when the engine does
        not model a pipeline (the interpreter engines)."""
        return None

    # -- checkpointing -----------------------------------------------------
    def snapshot_state(self) -> Optional[Dict[str, object]]:
        """Engine-side mutable state as a JSON-serialisable dict, or ``None``
        for engines that keep none (the interpreter engines: all their state
        lives in the shared :class:`SwitchRuntime`, which the network
        snapshot captures).  Must round-trip through :meth:`restore_state`
        so a restored run is byte-identical to an uninterrupted one."""
        return None

    def restore_state(self, state: Optional[Dict[str, object]]) -> None:
        """Restore the state produced by :meth:`snapshot_state`.  Engines
        without checkpoint support must refuse non-empty state rather than
        silently resuming wrong."""
        if state:
            raise SimulationError(
                f"engine '{self.name}' does not support restoring engine state"
            )


class ReferenceEngine(SwitchEngine):
    """Tree-walking AST interpretation (the semantic baseline)."""

    name = "reference"

    def __init__(self, runtime: SwitchRuntime, config: Optional[object] = None):
        super().__init__(runtime, config)
        self.executor = HandlerInterpreter(runtime)
        self.run = self.executor.run  # direct bind: zero indirection per event


class CompiledEngine(SwitchEngine):
    """Closure-compiled handlers (the fast path)."""

    name = "compiled"

    def __init__(self, runtime: SwitchRuntime, config: Optional[object] = None):
        super().__init__(runtime, config)
        # imported lazily to keep module import order flexible
        from repro.interp.compiled import CompiledSwitchRuntime

        self.executor = CompiledSwitchRuntime(runtime)
        self.run = self.executor.run


class CodegenEngine(SwitchEngine):
    """Source-generated handlers: each handler body is emitted as flat
    Python source, compiled once per program digest, and shared across
    switches (see :mod:`repro.interp.codegen`)."""

    name = "codegen"

    def __init__(self, runtime: SwitchRuntime, config: Optional[object] = None):
        super().__init__(runtime, config)
        # imported lazily to keep module import order flexible
        from repro.interp.codegen import CodegenSwitchRuntime

        self.executor = CodegenSwitchRuntime(runtime)
        self.run = self.executor.run
        # obs-free dispatch for the network's inlined batch drain (which only
        # engages when nothing — tracer, profiler, obs — watches per-event)
        self.run_fast = self.executor.run_fast


def _compiled_for(checked) -> "object":
    """Lower ``checked`` through the backend once, caching the result on the
    checked program itself — switches sharing one checked program (every
    switch of a topology with identical group bindings) share one layout."""
    compiled = getattr(checked, "_engine_compiled", None)
    if compiled is None:
        from repro.backend.compiler import CompilerOptions, compile_checked

        compiled = compile_checked(checked, options=CompilerOptions(emit_p4=False))
        try:
            checked._engine_compiled = compiled
        except AttributeError:  # pragma: no cover - exotic frozen subclasses
            pass
    return compiled


class PisaEngine(SwitchEngine):
    """Execute events through the compiled pipeline layout, with PISA
    recirculation and pausable-delay-queue cost accounting.

    ``recirc_queue_capacity`` bounds the number of in-flight locally
    recirculating/parked events; beyond it, newly generated local events are
    dropped and counted as ``recirc_drops`` (``None`` = unbounded, the
    default, so engine parity with the interpreters is exact).
    """

    name = "pisa"

    def __init__(
        self,
        runtime: SwitchRuntime,
        config: Optional[object] = None,
        recirc_queue_capacity: Optional[int] = None,
    ):
        super().__init__(runtime, config)
        from repro.pisa.pipeline import PisaPipeline
        from repro.pisa.recirculation import RecirculationPort

        self.pipeline = PisaPipeline(_compiled_for(runtime.checked), runtime=runtime)
        self.port = RecirculationPort()
        self.recirc_queue_capacity = recirc_queue_capacity
        # counters
        self.events = 0
        self.stages_traversed = 0
        self.max_stages_traversed = 0
        self.tables_executed = 0
        self.recirculated_events = 0
        self.queue_depth = 0
        self.peak_queue_depth = 0

    # -- execution ---------------------------------------------------------
    def run(self, event: EventInstance) -> ExecutionResult:
        passed = self.pipeline.process(event)
        self.events += 1
        self.stages_traversed += passed.stages_traversed
        if passed.stages_traversed > self.max_stages_traversed:
            self.max_stages_traversed = passed.stages_traversed
        self.tables_executed += passed.tables_executed
        if _OBS.enabled:
            _M_PISA_EVENTS.inc()
            _M_PISA_STAGES.inc(passed.stages_traversed)
            _M_PISA_TABLES.inc(passed.tables_executed)
        return ExecutionResult(
            generated=passed.generated,
            prints=passed.prints,
            dropped=passed.dropped,
            forwarded_port=passed.forwarded_port,
            flooded=passed.flooded,
        )

    # -- scheduler hooks ---------------------------------------------------
    def _delay_passes(self, delay_ns: int) -> int:
        """Recirculation passes one locally generated event costs.

        With the pausable delay queue, a parked packet recirculates once per
        release until its delay expires (``ceil(delay / release_interval)``
        passes, the :class:`~repro.pisa.queues.PausableDelayQueue`
        behaviour); without it, the packet loops continuously.  An undelayed
        event makes the single pass every local generate pays."""
        config = self.config
        if delay_ns <= 0:
            return 1
        if config is not None and not getattr(config, "use_delay_queue", True):
            latency = max(1, getattr(config, "recirculation_latency_ns", 600))
            return 1 + delay_ns // latency
        interval = max(1, getattr(config, "delay_release_interval_ns", 100_000))
        return max(1, -(-delay_ns // interval))

    def admit_recirculation(self, event: EventInstance) -> bool:
        capacity = self.recirc_queue_capacity
        return capacity is None or self.queue_depth < capacity

    def on_recirculate(self, event: EventInstance) -> None:
        self.queue_depth += 1
        if self.queue_depth > self.peak_queue_depth:
            self.peak_queue_depth = self.queue_depth
        passes = self._delay_passes(event.delay_ns)
        if _OBS.enabled:
            _M_PISA_QUEUE_DEPTH.set_max(self.queue_depth)
            _M_PISA_DELAY_PASSES.inc(passes)
        self.port.recirculate(event.payload_bytes(), passes=passes)

    def on_recirc_arrival(self, event: EventInstance) -> None:
        self.recirculated_events += 1
        if self.queue_depth > 0:
            self.queue_depth -= 1

    # -- lifecycle / reporting --------------------------------------------
    def reset(self) -> None:
        self.port.reset()
        self.events = 0
        self.stages_traversed = 0
        self.max_stages_traversed = 0
        self.tables_executed = 0
        self.recirculated_events = 0
        self.queue_depth = 0
        self.peak_queue_depth = 0

    # -- checkpointing -----------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "stages_traversed": self.stages_traversed,
            "max_stages_traversed": self.max_stages_traversed,
            "tables_executed": self.tables_executed,
            "recirculated_events": self.recirculated_events,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "recirc_port_packets": self.port.packets,
            "recirc_port_bytes": self.port.bytes,
        }

    def restore_state(self, state: Optional[Dict[str, object]]) -> None:
        if not state:
            raise SimulationError(
                "pisa engine restore requires the engine state captured by "
                "snapshot_state (got none)"
            )
        self.events = state["events"]
        self.stages_traversed = state["stages_traversed"]
        self.max_stages_traversed = state["max_stages_traversed"]
        self.tables_executed = state["tables_executed"]
        self.recirculated_events = state["recirculated_events"]
        self.queue_depth = state["queue_depth"]
        self.peak_queue_depth = state["peak_queue_depth"]
        self.port.packets = state["recirc_port_packets"]
        self.port.bytes = state["recirc_port_bytes"]

    def pipeline_stats(self, duration_ns: int = 0) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "stages": self.pipeline.layout.num_stages(),
            "events": self.events,
            "stages_traversed": self.stages_traversed,
            "max_stages_traversed": self.max_stages_traversed,
            "tables_executed": self.tables_executed,
            "recirculated_events": self.recirculated_events,
            "queue_depth": self.queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "recirc_passes": self.port.packets,
            "recirc_bytes": self.port.bytes,
        }
        if duration_ns > 0:
            stats["recirc_bandwidth_bps"] = round(self.port.bandwidth_bps(duration_ns), 1)
            stats["recirc_utilisation"] = round(self.port.utilisation(duration_ns), 6)
        return stats


#: engine registry: name -> constructor ``(runtime, config=...) -> SwitchEngine``
ENGINES: Dict[str, Type[SwitchEngine]] = {
    ReferenceEngine.name: ReferenceEngine,
    CompiledEngine.name: CompiledEngine,
    PisaEngine.name: PisaEngine,
    CodegenEngine.name: CodegenEngine,
}

#: the bundled engine names, in semantic-baseline-first order
ENGINE_NAMES = ("reference", "compiled", "pisa", "codegen")


def register_engine(cls: Type[SwitchEngine]) -> Type[SwitchEngine]:
    """Register a custom engine class under ``cls.name`` (decorator-friendly)."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise SimulationError("engine classes must define a non-default 'name'")
    ENGINES[cls.name] = cls
    return cls


def resolve_engine_name(
    engine: Optional[str] = None,
    fast_path: Optional[bool] = None,
    default: str = "compiled",
) -> str:
    """Resolve the ``engine=`` / deprecated ``fast_path=`` parameter pair.

    ``engine`` wins when both are given (and they must agree); ``fast_path``
    is kept as a compatibility alias: ``True`` → ``"compiled"``, ``False`` →
    ``"reference"``.  Passing ``fast_path`` emits a :class:`DeprecationWarning`.
    """
    if fast_path is not None:
        warnings.warn(
            "fast_path= is deprecated; use engine='compiled' / engine='reference'",
            DeprecationWarning,
            stacklevel=3,
        )
    if engine is not None:
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine '{engine}'; known engines: {sorted(ENGINES)}"
            )
        if fast_path is not None:
            alias = "compiled" if fast_path else "reference"
            if alias != engine:
                raise SimulationError(
                    f"conflicting engine selection: engine='{engine}' but "
                    f"fast_path={fast_path} (the deprecated alias for '{alias}')"
                )
        return engine
    if fast_path is not None:
        return "compiled" if fast_path else "reference"
    return default


def make_engine(
    name: str, runtime: SwitchRuntime, config: Optional[object] = None
) -> SwitchEngine:
    """Instantiate the engine registered under ``name``."""
    try:
        cls = ENGINES[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine '{name}'; known engines: {sorted(ENGINES)}"
        ) from None
    return cls(runtime, config=config)
