"""Runtime event values and the event combinators (Section 3.1).

An event instance is the four-tuple the paper describes: a *name*, carried
*data*, a *time* (here: an extra delay in nanoseconds), and a *place* (a
switch id, a named multicast group, or ``LOCAL``).  ``Event.delay`` and
``Event.locate`` return new values; events are immutable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

#: sentinel location meaning "the switch that generated the event"
LOCAL = -1

_serial = itertools.count()


@dataclass(frozen=True)
class EventInstance:
    """A concrete event awaiting (or undergoing) handling."""

    name: str
    args: Tuple[int, ...] = ()
    delay_ns: int = 0
    location: int = LOCAL
    group: Optional[Tuple[int, ...]] = None
    #: switch that generated the event (filled by the scheduler)
    source: Optional[int] = None
    #: span id of the dispatch that generated this event, when a tracer is
    #: attached (see :mod:`repro.obs.trace`); pure observability context —
    #: never part of the event's value, never serialised into checkpoints
    #: (tracing is for bounded runs, checkpoints for trace-free long ones)
    trace_parent: Optional[int] = field(default=None, compare=False, repr=False)
    #: monotonically increasing id used for deterministic tie-breaking; not
    #: part of the event's value (two events are equal iff name, data, time,
    #: place, and source agree — regardless of when they were allocated)
    serial: int = field(default_factory=lambda: next(_serial), compare=False)

    # -- combinators --------------------------------------------------------
    def delay(self, extra_ns: int) -> "EventInstance":
        """``Event.delay(e, t)`` — execute ``e`` at least ``t`` ns in the future."""
        return replace(self, delay_ns=self.delay_ns + int(extra_ns), serial=next(_serial))

    def locate(self, location: Union[int, Tuple[int, ...], List[int]]) -> "EventInstance":
        """``Event.locate(e, loc)`` — execute ``e`` at switch ``loc`` (or at every
        member of a group)."""
        if isinstance(location, (tuple, list)):
            return replace(self, group=tuple(int(l) for l in location), serial=next(_serial))
        return replace(self, location=int(location), serial=next(_serial))

    # -- helpers -------------------------------------------------------------
    def is_local(self) -> bool:
        return self.group is None and self.location == LOCAL

    def targets(self, self_id: int) -> List[int]:
        """The switch ids this event must be delivered to."""
        if self.group is not None:
            return list(self.group)
        if self.location == LOCAL:
            return [self_id]
        return [self.location]

    def payload_bytes(self) -> int:
        """Wire size of the serialised event packet (used by the recirculation
        and bandwidth models): Ethernet + Lucid header + 4 bytes per argument,
        subject to the 64 B minimum frame size."""
        raw = 14 + 13 + 4 * len(self.args)
        return max(64, raw)

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable value form (everything except ``serial``, which
        is allocation order, not part of the event's value) — the wire format
        of checkpoints (:meth:`repro.interp.network.Network.snapshot`)."""
        return {
            "name": self.name,
            "args": list(self.args),
            "delay_ns": self.delay_ns,
            "location": self.location,
            "group": list(self.group) if self.group is not None else None,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EventInstance":
        group = data.get("group")
        return cls(
            name=data["name"],
            args=tuple(data.get("args", ())),
            delay_ns=data.get("delay_ns", 0),
            location=data.get("location", LOCAL),
            group=tuple(group) if group is not None else None,
            source=data.get("source"),
        )

    def describe(self) -> str:
        where = "local"
        if self.group is not None:
            where = f"group{list(self.group)}"
        elif self.location != LOCAL:
            where = f"switch {self.location}"
        return f"{self.name}({', '.join(map(str, self.args))}) @ {where} +{self.delay_ns}ns"
