"""Runtime event values and the event combinators (Section 3.1).

An event instance is the four-tuple the paper describes: a *name*, carried
*data*, a *time* (here: an extra delay in nanoseconds), and a *place* (a
switch id, a named multicast group, or ``LOCAL``).  ``Event.delay`` and
``Event.locate`` return new values; events are immutable by convention.

``EventInstance`` is a hand-written ``__slots__`` class rather than a frozen
dataclass: event allocation sits on the hottest path of every engine (each
dispatched and each generated event allocates one), and the dataclass
machinery (``__init__`` with default factories, frozen ``__setattr__``)
costs ~6x more per instance than a plain slotted class.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

#: sentinel location meaning "the switch that generated the event"
LOCAL = -1

_serial = itertools.count()


class EventInstance:
    """A concrete event awaiting (or undergoing) handling.

    Two events are equal iff name, data, time, place, and source agree —
    regardless of when they were allocated (``serial``) or which dispatch
    generated them (``trace_parent``).
    """

    __slots__ = (
        "name",
        "args",
        "delay_ns",
        "location",
        "group",
        "source",
        "trace_parent",
        "serial",
    )

    def __init__(
        self,
        name: str,
        args: Tuple[int, ...] = (),
        delay_ns: int = 0,
        location: int = LOCAL,
        group: Optional[Tuple[int, ...]] = None,
        source: Optional[int] = None,
        trace_parent: Optional[int] = None,
        serial: Optional[int] = None,
    ) -> None:
        self.name = name
        self.args = args
        self.delay_ns = delay_ns
        self.location = location
        self.group = group
        #: switch that generated the event (filled by the scheduler)
        self.source = source
        #: span id of the dispatch that generated this event, when a tracer is
        #: attached (see :mod:`repro.obs.trace`); pure observability context —
        #: never part of the event's value, never serialised into checkpoints
        #: (tracing is for bounded runs, checkpoints for trace-free long ones)
        self.trace_parent = trace_parent
        #: monotonically increasing id used for deterministic tie-breaking;
        #: not part of the event's value
        self.serial = next(_serial) if serial is None else serial

    def __repr__(self) -> str:
        return (
            f"EventInstance(name={self.name!r}, args={self.args!r}, "
            f"delay_ns={self.delay_ns!r}, location={self.location!r}, "
            f"group={self.group!r}, source={self.source!r}, serial={self.serial!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not EventInstance:
            return NotImplemented
        return (
            self.name == other.name
            and self.args == other.args
            and self.delay_ns == other.delay_ns
            and self.location == other.location
            and self.group == other.group
            and self.source == other.source
        )

    def __hash__(self) -> int:
        return hash(
            (self.name, self.args, self.delay_ns, self.location, self.group, self.source)
        )

    # -- combinators --------------------------------------------------------
    def delay(self, extra_ns: int) -> "EventInstance":
        """``Event.delay(e, t)`` — execute ``e`` at least ``t`` ns in the future."""
        return EventInstance(
            self.name,
            self.args,
            self.delay_ns + int(extra_ns),
            self.location,
            self.group,
            self.source,
            self.trace_parent,
        )

    def locate(self, location: Union[int, Tuple[int, ...], List[int]]) -> "EventInstance":
        """``Event.locate(e, loc)`` — execute ``e`` at switch ``loc`` (or at every
        member of a group)."""
        if isinstance(location, (tuple, list)):
            return EventInstance(
                self.name,
                self.args,
                self.delay_ns,
                self.location,
                tuple(int(l) for l in location),
                self.source,
                self.trace_parent,
            )
        return EventInstance(
            self.name,
            self.args,
            self.delay_ns,
            int(location),
            self.group,
            self.source,
            self.trace_parent,
        )

    # -- helpers -------------------------------------------------------------
    def is_local(self) -> bool:
        return self.group is None and self.location == LOCAL

    def targets(self, self_id: int) -> List[int]:
        """The switch ids this event must be delivered to."""
        if self.group is not None:
            return list(self.group)
        if self.location == LOCAL:
            return [self_id]
        return [self.location]

    def payload_bytes(self) -> int:
        """Wire size of the serialised event packet (used by the recirculation
        and bandwidth models): Ethernet + Lucid header + 4 bytes per argument,
        subject to the 64 B minimum frame size."""
        raw = 14 + 13 + 4 * len(self.args)
        return max(64, raw)

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable value form (everything except ``serial``, which
        is allocation order, not part of the event's value) — the wire format
        of checkpoints (:meth:`repro.interp.network.Network.snapshot`)."""
        return {
            "name": self.name,
            "args": list(self.args),
            "delay_ns": self.delay_ns,
            "location": self.location,
            "group": list(self.group) if self.group is not None else None,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EventInstance":
        group = data.get("group")
        return cls(
            name=data["name"],
            args=tuple(data.get("args", ())),
            delay_ns=data.get("delay_ns", 0),
            location=data.get("location", LOCAL),
            group=tuple(group) if group is not None else None,
            source=data.get("source"),
        )

    def describe(self) -> str:
        where = "local"
        if self.group is not None:
            where = f"group{list(self.group)}"
        elif self.location != LOCAL:
            where = f"switch {self.location}"
        return f"{self.name}({', '.join(map(str, self.args))}) @ {where} +{self.delay_ns}ns"
