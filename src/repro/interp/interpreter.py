"""Direct interpretation of checked Lucid handlers.

The interpreter plays the role of the Lucid repository's own interpreter: it
executes handler bodies over runtime arrays so applications can be prototyped
and tested without a Tofino.  One call to :meth:`HandlerInterpreter.run`
corresponds to one pass of an event packet through the pipeline: it runs the
handler atomically, applies its stateful operations, and returns the list of
events the handler generated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import InterpError
from repro.frontend import ast
from repro.frontend.symbols import ARRAY_METHODS, EVENT_COMBINATORS, ProgramInfo
from repro.frontend.type_checker import CheckedProgram
from repro.interp.arrays import RuntimeArray
from repro.interp.events import LOCAL, EventInstance
from repro.obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from repro.ops import apply_binop, lucid_hash, mask32

# only touched behind an ``if _OBS.enabled:`` guard (see repro.obs.metrics);
# counts compiled-engine fallbacks too — every tree-walked event lands here
_M_TREEWALK_EVENTS = _REGISTRY.counter(
    "repro_engine_reference_events_total",
    "Events executed by the tree-walking interpreter "
    "(including compiled-engine fallbacks).")

# canonical ALU semantics live in repro.ops; these aliases keep the historic
# import sites (tests, the pipeline executor of older checkouts) working
_mask32 = mask32
_apply_binop = apply_binop

__all__ = [
    "ExecutionResult",
    "HandlerInterpreter",
    "SwitchRuntime",
    "lucid_hash",
]


class _ReturnValue(Exception):
    """Internal control flow for ``return`` statements."""

    def __init__(self, value: Optional[int]):
        self.value = value


#: Compiled memop callables shared across every switch running the same
#: checked program, keyed by ``(CheckedProgram.digest(), memop name)``.
#: Memop bodies close over nothing switch-specific (only the two parameters
#: and program constants, which the digest covers), so a fat-tree full of
#: switches running one app compiles each memop once.
_SHARED_MEMOPS: Dict[Tuple[str, str], Callable[[int, int], int]] = {}


class ExecutionResult:
    """What one handler invocation produced.

    A hand-written ``__slots__`` class (one is allocated per dispatched
    event, so construction cost is hot-path cost).  ``generated`` and
    ``prints`` may be any sequence — the codegen engine reuses shared empty
    tuples for handlers that provably generate/print nothing — so equality
    normalises both sides to lists.
    """

    __slots__ = ("generated", "prints", "dropped", "forwarded_port", "flooded")

    def __init__(
        self,
        generated: Optional[List[EventInstance]] = None,
        prints: Optional[List[str]] = None,
        dropped: bool = False,
        forwarded_port: Optional[int] = None,
        flooded: bool = False,
    ) -> None:
        self.generated = [] if generated is None else generated
        self.prints = [] if prints is None else prints
        self.dropped = dropped
        self.forwarded_port = forwarded_port
        self.flooded = flooded

    def __repr__(self) -> str:
        return (
            f"ExecutionResult(generated={self.generated!r}, prints={self.prints!r}, "
            f"dropped={self.dropped!r}, forwarded_port={self.forwarded_port!r}, "
            f"flooded={self.flooded!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not ExecutionResult:
            return NotImplemented
        return (
            list(self.generated) == list(other.generated)
            and list(self.prints) == list(other.prints)
            and self.dropped == other.dropped
            and self.forwarded_port == other.forwarded_port
            and self.flooded == other.flooded
        )


class SwitchRuntime:
    """Per-switch runtime state: arrays, memops, externs, and the clock."""

    def __init__(self, checked: CheckedProgram, switch_id: int = 0, fast_path: bool = True):
        self.checked = checked
        self.info: ProgramInfo = checked.info
        self.switch_id = switch_id
        #: whether handlers should run through the compiled-closure engine
        #: (:class:`repro.interp.compiled.CompiledSwitchRuntime`) instead of the
        #: tree-walking :class:`HandlerInterpreter`
        self.fast_path = fast_path
        self.time_ns = 0
        self.arrays: Dict[str, RuntimeArray] = {
            g.name: RuntimeArray(name=g.name, size=g.size, cell_width=g.cell_width)
            for g in self.info.globals.values()
        }
        self.externs: Dict[str, Callable[..., int]] = {}
        self.random_state = 0x12345678
        self._memop_cache: Dict[str, Callable[[int, int], int]] = {}

    # -- bindings ------------------------------------------------------------
    def bind_extern(self, name: str, fn: Callable[..., int]) -> None:
        if name not in self.info.externs:
            raise InterpError(f"program declares no extern named '{name}'")
        self.externs[name] = fn

    def array(self, name: str) -> RuntimeArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise InterpError(f"no global array named '{name}'") from None

    # -- memops ----------------------------------------------------------------
    def memop_fn(self, name: str) -> Callable[[int, int], int]:
        """Compile (and cache) a memop declaration into a Python callable.

        The body shape is validated once, here, so malformed declarations (an
        empty body, a missing branch, a non-``return`` statement) surface as
        :class:`InterpError` naming the memop instead of a bare ``IndexError``
        or ``AssertionError`` at call time.
        """
        if name in self._memop_cache:
            return self._memop_cache[name]
        shared_key = (self.checked.digest(), name)
        shared = _SHARED_MEMOPS.get(shared_key)
        if shared is not None:
            self._memop_cache[name] = shared
            return shared
        decl = self.info.memops.get(name)
        if decl is None:
            raise InterpError(f"no memop named '{name}'")
        if len(decl.params) != 2:
            raise InterpError(
                f"memop '{name}' must take exactly two parameters "
                f"(found {len(decl.params)})"
            )
        stored_name, local_name = (p.name for p in decl.params)
        if stored_name == local_name:
            raise InterpError(
                f"memop '{name}' declares both parameters with the same name "
                f"'{stored_name}'"
            )
        body = [s for s in decl.body if not isinstance(s, ast.SNoop)]
        if not body:
            raise InterpError(f"memop '{name}' has an empty body")
        stmt = body[0]

        def compile_return(ret: ast.Stmt, where: str) -> Callable[[int, int], int]:
            if not isinstance(ret, ast.SReturn) or ret.value is None:
                raise InterpError(
                    f"memop '{name}': the {where} must be a 'return <expr>;' statement"
                )
            return _compile_memop_expr(ret.value, name, stored_name, local_name, self.info)

        if isinstance(stmt, ast.SReturn):
            value_fn = compile_return(stmt, "body")

            def run(stored: int, local: int) -> int:
                return _mask32(value_fn(stored, local))

        elif isinstance(stmt, ast.SIf):
            cond_fn = _compile_memop_expr(stmt.cond, name, stored_name, local_name, self.info)
            then_body = [s for s in stmt.then_body if not isinstance(s, ast.SNoop)]
            else_body = [s for s in stmt.else_body if not isinstance(s, ast.SNoop)]
            if not then_body or not else_body:
                raise InterpError(
                    f"memop '{name}' must return a value in both branches of its "
                    "if statement"
                )
            then_fn = compile_return(then_body[0], "then-branch")
            else_fn = compile_return(else_body[0], "else-branch")

            def run(stored: int, local: int) -> int:
                if cond_fn(stored, local):
                    return _mask32(then_fn(stored, local))
                return _mask32(else_fn(stored, local))

        else:
            raise InterpError(
                f"memop '{name}' body must be a single return statement or an if "
                "statement with one return in each branch"
            )

        _SHARED_MEMOPS[shared_key] = run
        self._memop_cache[name] = run
        return run

    # -- misc -------------------------------------------------------------------
    def random(self, bound: Optional[int] = None) -> int:
        # xorshift32: deterministic, seedable, and fast
        x = self.random_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.random_state = x & 0xFFFFFFFF
        if bound:
            return self.random_state % bound
        return self.random_state


def _compile_memop_expr(
    expr: ast.Expr, memop_name: str, stored_name: str, local_name: str, info: ProgramInfo
) -> Callable[[int, int], int]:
    """Compile a memop-body expression into a closure over ``(stored, local)``.

    Memop bodies are restricted to pure arithmetic over the two parameters
    and program constants; the AST is walked once at compile time instead of
    on every stateful operation.
    """
    if isinstance(expr, ast.EInt):
        value = expr.value
        return lambda stored, local: value
    if isinstance(expr, ast.EBool):
        value = 1 if expr.value else 0
        return lambda stored, local: value
    if isinstance(expr, ast.EVar):
        if expr.name == stored_name:
            return lambda stored, local: stored
        if expr.name == local_name:
            return lambda stored, local: local
        const = info.consts.lookup(expr.name)
        if const is not None:
            return lambda stored, local: const
        raise InterpError(
            f"undefined variable '{expr.name}' in memop '{memop_name}'"
        )
    if isinstance(expr, ast.EUnary):
        operand = _compile_memop_expr(expr.operand, memop_name, stored_name, local_name, info)
        if expr.op is ast.UnOp.NEG:
            return lambda stored, local: -operand(stored, local)
        if expr.op is ast.UnOp.BITNOT:
            return lambda stored, local: ~operand(stored, local) & 0xFFFFFFFF
        return lambda stored, local: 0 if operand(stored, local) else 1
    if isinstance(expr, ast.EBinary):
        left = _compile_memop_expr(expr.left, memop_name, stored_name, local_name, info)
        right = _compile_memop_expr(expr.right, memop_name, stored_name, local_name, info)
        op = expr.op
        return lambda stored, local: _apply_binop(op, left(stored, local), right(stored, local))
    raise InterpError(f"expression is not allowed in memop '{memop_name}'")


class HandlerInterpreter:
    """Executes handlers of one program against a :class:`SwitchRuntime`."""

    def __init__(self, runtime: SwitchRuntime):
        self.runtime = runtime
        self.info = runtime.info

    # -- public entry --------------------------------------------------------
    def run(self, event: EventInstance) -> ExecutionResult:
        """Run the handler for ``event`` once, atomically."""
        handler = self.info.handlers.get(event.name)
        if handler is None:
            # events without handlers are legal: they exit the switch (e.g.
            # packets forwarded to end hosts); nothing happens locally.
            return ExecutionResult()
        if _OBS.enabled:
            _M_TREEWALK_EVENTS.inc()
        if len(event.args) != len(handler.params):
            raise InterpError(
                f"event '{event.name}' carries {len(event.args)} arguments but the handler "
                f"expects {len(handler.params)}"
            )
        result = ExecutionResult()
        env: Dict[str, object] = {
            param.name: int(arg) for param, arg in zip(handler.params, event.args)
        }
        try:
            self._exec_block(handler.body, env, result)
        except _ReturnValue:
            pass
        return result

    def call_function(self, name: str, args: Sequence[int]) -> int:
        """Call a ``fun`` directly (useful for tests)."""
        fun = self.info.functions[name]
        env: Dict[str, object] = {p.name: a for p, a in zip(fun.params, args)}
        result = ExecutionResult()
        try:
            self._exec_block(fun.body, env, result)
        except _ReturnValue as ret:
            return ret.value if ret.value is not None else 0
        return 0

    # -- statements ------------------------------------------------------------
    def _exec_block(self, stmts: List[ast.Stmt], env: Dict[str, object], result: ExecutionResult) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, result)

    def _exec_stmt(self, stmt: ast.Stmt, env: Dict[str, object], result: ExecutionResult) -> None:
        if isinstance(stmt, ast.SNoop):
            return
        if isinstance(stmt, ast.SLocal):
            env[stmt.name] = self._eval(stmt.init, env, result)
            return
        if isinstance(stmt, ast.SAssign):
            if stmt.name not in env:
                raise InterpError(f"assignment to undeclared variable '{stmt.name}'")
            env[stmt.name] = self._eval(stmt.value, env, result)
            return
        if isinstance(stmt, ast.SIf):
            # if/match branches execute in the handler's own scope (Lucid has a
            # single flat handler scope): locals declared or assigned inside a
            # branch remain visible after it.
            branch = stmt.then_body if self._truthy(stmt.cond, env, result) else stmt.else_body
            self._exec_block(branch, env, result)
            return
        if isinstance(stmt, ast.SMatch):
            values = [self._as_int(self._eval(e, env, result)) for e in stmt.scrutinees]
            for pattern, body in stmt.branches:
                if all(p is None or p == v for p, v in zip(pattern, values)):
                    self._exec_block(body, env, result)
                    return
            return
        if isinstance(stmt, ast.SReturn):
            value = self._eval(stmt.value, env, result) if stmt.value is not None else None
            raise _ReturnValue(self._as_int(value) if value is not None else None)
        if isinstance(stmt, ast.SGenerate):
            value = self._eval(stmt.event, env, result)
            if not isinstance(value, EventInstance):
                raise InterpError("generate expects an event value")
            result.generated.append(value)
            return
        if isinstance(stmt, ast.SExpr):
            self._eval(stmt.expr, env, result)
            return
        if isinstance(stmt, ast.SSeq):
            self._exec_block(stmt.body, env, result)
            return
        raise InterpError(f"unhandled statement {type(stmt).__name__}")

    def _truthy(self, expr: ast.Expr, env: Dict[str, object], result: ExecutionResult) -> bool:
        return bool(self._as_int(self._eval(expr, env, result)))

    @staticmethod
    def _as_int(value: object) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        raise InterpError(f"expected an integer, found {type(value).__name__}")

    # -- expressions -------------------------------------------------------------
    def _eval(self, expr: ast.Expr, env: Dict[str, object], result: ExecutionResult) -> object:
        if isinstance(expr, ast.EInt):
            return expr.value
        if isinstance(expr, ast.EBool):
            return 1 if expr.value else 0
        if isinstance(expr, ast.EVar):
            return self._eval_var(expr, env)
        if isinstance(expr, ast.EUnary):
            value = self._as_int(self._eval(expr.operand, env, result))
            if expr.op is ast.UnOp.NEG:
                return _mask32(-value)
            if expr.op is ast.UnOp.BITNOT:
                return ~value & 0xFFFFFFFF
            return 0 if value else 1
        if isinstance(expr, ast.EBinary):
            left = self._as_int(self._eval(expr.left, env, result))
            # short-circuit booleans
            if expr.op is ast.BinOp.AND and not left:
                return 0
            if expr.op is ast.BinOp.OR and left:
                return 1
            right = self._as_int(self._eval(expr.right, env, result))
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, ast.EGroup):
            return tuple(self._as_int(self._eval(m, env, result)) for m in expr.members)
        if isinstance(expr, ast.EEvent):
            args = tuple(self._as_int(self._eval(a, env, result)) for a in expr.args)
            return EventInstance(name=expr.name, args=args, source=self.runtime.switch_id)
        if isinstance(expr, ast.ECall):
            return self._eval_call(expr, env, result)
        raise InterpError(f"unhandled expression {type(expr).__name__}")

    def _eval_var(self, expr: ast.EVar, env: Dict[str, object]) -> object:
        name = expr.name
        if name in env:
            return env[name]
        if name == "SELF":
            return self.runtime.switch_id
        if name in self.info.consts.groups:
            return tuple(self.info.consts.groups[name])
        const = self.info.consts.lookup(name)
        if const is not None:
            return const
        if self.info.is_global(name):
            return name  # arrays evaluate to their own name (a handle)
        raise InterpError(f"undefined variable '{name}'")

    # -- calls ----------------------------------------------------------------------
    def _eval_call(self, expr: ast.ECall, env: Dict[str, object], result: ExecutionResult) -> object:
        func = expr.func
        if func in ARRAY_METHODS:
            return self._eval_array_method(expr, env, result)
        if func in EVENT_COMBINATORS:
            return self._eval_combinator(expr, env, result)
        if func == "hash":
            args = [self._as_int(self._eval(a, env, result)) for a in expr.args]
            width = expr.size_args[0] if expr.size_args else 32
            return lucid_hash(width, args)
        if func == "Sys.time":
            return self.runtime.time_ns & 0xFFFFFFFF
        if func == "Sys.self":
            return self.runtime.switch_id
        if func == "Sys.random":
            bound = (
                self._as_int(self._eval(expr.args[0], env, result)) if expr.args else None
            )
            return self.runtime.random(bound)
        if func == "drop":
            result.dropped = True
            return 0
        if func == "forward":
            result.forwarded_port = self._as_int(self._eval(expr.args[0], env, result))
            return 0
        if func == "flood":
            result.flooded = True
            return 0
        if func == "printf":
            rendered = []
            for arg in expr.args:
                rendered.append(str(self._eval(arg, env, result)))
            result.prints.append(" ".join(rendered))
            return 0
        if self.info.is_function(func):
            fun = self.info.functions[func]
            call_env: Dict[str, object] = {}
            for param, arg in zip(fun.params, expr.args):
                call_env[param.name] = self._eval(arg, env, result)
            try:
                self._exec_block(fun.body, call_env, result)
            except _ReturnValue as ret:
                return ret.value if ret.value is not None else 0
            return 0
        if func in self.info.externs:
            fn = self.runtime.externs.get(func)
            args = [self._as_int(self._eval(a, env, result)) for a in expr.args]
            if fn is None:
                return 0
            return int(fn(*args))
        if self.info.is_event(func):
            args = tuple(self._as_int(self._eval(a, env, result)) for a in expr.args)
            return EventInstance(name=func, args=args, source=self.runtime.switch_id)
        raise InterpError(f"call to unknown function '{func}'")

    def _eval_array_method(
        self, expr: ast.ECall, env: Dict[str, object], result: ExecutionResult
    ) -> object:
        array_name = self._array_name(expr.args[0], env)
        array = self.runtime.array(array_name)
        index = self._as_int(self._eval(expr.args[1], env, result))
        rest = expr.args[2:]
        memops: List[str] = []
        values: List[int] = []
        for arg in rest:
            if isinstance(arg, ast.EVar) and self.info.is_memop(arg.name):
                memops.append(arg.name)
            else:
                values.append(self._as_int(self._eval(arg, env, result)))
        method = expr.func
        if method in ("Array.get", "Array.getm"):
            memop = self.runtime.memop_fn(memops[0]) if memops else None
            arg = values[0] if values else 0
            return array.get(index, memop, arg)
        if method in ("Array.set", "Array.setm"):
            if memops:
                memop = self.runtime.memop_fn(memops[0])
                array.set(index, memop=memop, arg=values[0] if values else 0)
            else:
                array.set(index, value=values[0] if values else 0)
            return 0
        if method == "Array.update":
            get_memop = self.runtime.memop_fn(memops[0]) if memops else None
            set_memop = self.runtime.memop_fn(memops[1]) if len(memops) > 1 else None
            get_arg = values[0] if values else 0
            set_arg = values[1] if len(values) > 1 else (values[0] if values else 0)
            return array.update(index, get_memop, get_arg, set_memop, set_arg)
        raise InterpError(f"unhandled array method {method}")

    def _array_name(self, expr: ast.Expr, env: Dict[str, object]) -> str:
        if isinstance(expr, ast.EVar):
            if self.info.is_global(expr.name):
                return expr.name
            value = env.get(expr.name)
            if isinstance(value, str) and self.info.is_global(value):
                return value
        raise InterpError("the first argument of an Array method must be a global array")

    def _eval_combinator(
        self, expr: ast.ECall, env: Dict[str, object], result: ExecutionResult
    ) -> EventInstance:
        event = self._eval(expr.args[0], env, result)
        if not isinstance(event, EventInstance):
            raise InterpError(f"{expr.func} expects an event value")
        arg = self._eval(expr.args[1], env, result)
        if expr.func == "Event.delay":
            return event.delay(self._as_int(arg))
        if isinstance(arg, tuple):
            return event.locate(arg)
        return event.locate(self._as_int(arg))
