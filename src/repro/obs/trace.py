"""Event-lifecycle tracing: span trees over simulated time, exported as
Chrome trace-event JSON (viewable in Perfetto / chrome://tracing).

Every dispatched event becomes one span.  The parent link travels on
``EventInstance.trace_parent``: when a handler generates follow-up events the
scheduler stamps the generating span's id onto each child, so a chain
``generate → handle → recirc → cross-switch hop`` renders as one tree with
flow arrows between switches.

Determinism contract: span ids are ``(seed & 0xFFFF) << 48 | n`` where ``n``
is the dispatch ordinal, and span content is *simulated* time only — no wall
clocks, no engine names.  Since all three engines dispatch the identical
event sequence (pinned by the parity suites), the serialized trace is
byte-identical across engines for the same seed, so traces diff cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Span", "Tracer", "validate_chrome_trace"]

#: bump when the exported JSON layout changes shape
TRACE_FORMAT_VERSION = 1

# hop classification for a span, derived from where the event came from
HOP_INJECT = "inject"    # external traffic entering the network
HOP_RECIRC = "recirc"    # generated locally, re-entered via the recirc port
HOP_LINK = "link"        # crossed a link from another switch


@dataclass
class Span:
    """One handled event.  Times are simulated nanoseconds."""

    span_id: int
    parent_id: Optional[int]
    name: str
    switch: int
    ts_ns: int
    dur_ns: int
    hop: str
    args: tuple
    delay_ns: int


class Tracer:
    """Collects spans during a run; attach via ``network.tracer = Tracer(seed)``.

    The scheduler calls :meth:`begin_handle` once per dispatched event and
    stamps the returned id onto every event that dispatch generates.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.spans: List[Span] = []
        self._next = 0
        self._id_base = (self.seed & 0xFFFF) << 48

    def begin_handle(self, event, switch_id: int, time_ns: int,
                     dur_ns: int) -> int:
        """Record a span for ``event`` being handled now; returns its id."""
        parent = getattr(event, "trace_parent", None)
        if parent is None:
            hop = HOP_INJECT
        elif event.source == switch_id:
            hop = HOP_RECIRC
        else:
            hop = HOP_LINK
        span_id = self._id_base | self._next
        self._next += 1
        self.spans.append(Span(
            span_id=span_id,
            parent_id=parent,
            name=event.name,
            switch=switch_id,
            ts_ns=time_ns,
            dur_ns=dur_ns,
            hop=hop,
            args=tuple(event.args),
            delay_ns=event.delay_ns,
        ))
        return span_id

    # -- tree views -------------------------------------------------------
    def span_tree(self) -> List[dict]:
        """Nested {span, children} dicts, roots first, in dispatch order."""
        nodes: Dict[int, dict] = {}
        roots: List[dict] = []
        for span in self.spans:
            node = {
                "id": _hex_id(span.span_id),
                "name": span.name,
                "switch": span.switch,
                "ts_ns": span.ts_ns,
                "hop": span.hop,
                "children": [],
            }
            nodes[span.span_id] = node
            parent = nodes.get(span.parent_id) if span.parent_id is not None else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    # -- chrome export ----------------------------------------------------
    def chrome_trace(self) -> dict:
        """Chrome trace-event document: one process per switch, "X" complete
        events on the simulated clock, "s"/"f" flow arrows for parent links."""
        events: List[dict] = []
        for switch in sorted({span.switch for span in self.spans}):
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": switch,
                "tid": 0,
                "args": {"name": f"switch {switch}"},
            })
        known = {span.span_id: span for span in self.spans}
        for span in self.spans:
            ts_us = span.ts_ns / 1000.0
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.hop,
                "pid": span.switch,
                "tid": 0,
                "ts": ts_us,
                "dur": span.dur_ns / 1000.0,
                "args": {
                    "span": _hex_id(span.span_id),
                    "parent": _hex_id(span.parent_id) if span.parent_id is not None else "",
                    "event_args": list(span.args),
                    "delay_ns": span.delay_ns,
                },
            })
            parent = known.get(span.parent_id) if span.parent_id is not None else None
            if parent is not None:
                flow_id = _hex_id(span.span_id)
                events.append({
                    "ph": "s",
                    "id": flow_id,
                    "name": "event-flow",
                    "cat": span.hop,
                    "pid": parent.switch,
                    "tid": 0,
                    "ts": parent.ts_ns / 1000.0,
                })
                events.append({
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "name": "event-flow",
                    "cat": span.hop,
                    "pid": span.switch,
                    "tid": 0,
                    "ts": ts_us,
                })
        return {
            "displayTimeUnit": "ns",
            "otherData": {
                "format_version": TRACE_FORMAT_VERSION,
                "seed": self.seed,
                "spans": len(self.spans),
            },
            "traceEvents": events,
        }

    def to_json_bytes(self) -> bytes:
        """Deterministic serialization: sorted keys, no whitespace."""
        return json.dumps(self.chrome_trace(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def write(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the number of spans."""
        payload = self.to_json_bytes()
        with open(path, "wb") as fh:
            fh.write(payload)
            fh.write(b"\n")
        return len(self.spans)


def _hex_id(span_id: int) -> str:
    return f"0x{span_id:x}"


def validate_chrome_trace(doc: dict) -> dict:
    """Structural validation of a Chrome trace document.

    Raises ``ValueError`` on the first problem; returns summary counts on
    success.  Mirrors ``tests/schemas/chrome_trace.schema.json`` for use
    without jsonschema installed.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    counts = {"M": 0, "X": 0, "s": 0, "f": 0}
    span_ids = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in counts:
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
        counts[ph] += 1
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"traceEvents[{i}]: {key} must be an int")
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
            raise ValueError(f"traceEvents[{i}]: ts must be a non-negative number")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                raise ValueError(f"traceEvents[{i}]: dur must be non-negative")
            args = ev.get("args")
            if not isinstance(args, dict) or "span" not in args:
                raise ValueError(f"traceEvents[{i}]: X event needs args.span")
            span_ids.add(args["span"])
        elif ph in ("s", "f") and "id" not in ev:
            raise ValueError(f"traceEvents[{i}]: flow event needs an id")
    # every parent referenced by an X event must itself exist as a span
    for i, ev in enumerate(events):
        if ev.get("ph") == "X":
            parent = ev["args"].get("parent", "")
            if parent and parent not in span_ids:
                raise ValueError(
                    f"traceEvents[{i}]: parent {parent} has no matching span")
    if counts["s"] != counts["f"]:
        raise ValueError(
            f"unbalanced flow events: {counts['s']} starts, {counts['f']} ends")
    return counts
