"""Profiling hooks: per-handler and per-pipeline-stage wall/sim-time
accounting.

:class:`HandlerProfiler` attaches to a :class:`~repro.interp.network.Network`
(``network.profiler = HandlerProfiler()``) and is fed by ``_dispatch`` with
one sample per handled event: the handler name, the wall-clock seconds the
engine spent executing it, and the simulated nanoseconds the event occupies
(one pipeline pass).  :class:`StageProfiler` attaches to a
:class:`~repro.pisa.pipeline.PisaPipeline` (``pipeline.stage_prof``) and
times each physical stage's table walk.

Both are pull-based: nothing is printed until :meth:`format_report` /
:meth:`top` is asked for, so benchmarks can embed the numbers in their JSON
reports and the CLI can print a top-N table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["HandlerProfiler", "StageProfiler", "merge_stage_rows"]


class HandlerProfiler:
    """Accumulates per-handler call counts, wall seconds, and sim ns."""

    __slots__ = ("_calls", "_wall_s", "_sim_ns")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._wall_s: Dict[str, float] = {}
        self._sim_ns: Dict[str, int] = {}

    def record(self, name: str, wall_s: float, sim_ns: int) -> None:
        self._calls[name] = self._calls.get(name, 0) + 1
        self._wall_s[name] = self._wall_s.get(name, 0.0) + wall_s
        self._sim_ns[name] = self._sim_ns.get(name, 0) + sim_ns

    @property
    def total_calls(self) -> int:
        return sum(self._calls.values())

    @property
    def total_wall_s(self) -> float:
        return sum(self._wall_s.values())

    def top(self, n: int = 10) -> List[dict]:
        """Hottest handlers by cumulative wall time, with shares."""
        total_wall = self.total_wall_s or 1.0
        rows = []
        for name in sorted(self._wall_s, key=self._wall_s.get, reverse=True)[:n]:
            calls = self._calls[name]
            wall = self._wall_s[name]
            rows.append({
                "handler": name,
                "calls": calls,
                "wall_s": round(wall, 6),
                "wall_share": round(wall / total_wall, 4),
                "us_per_call": round(wall * 1e6 / calls, 3) if calls else 0.0,
                "sim_ns": self._sim_ns[name],
            })
        return rows

    def format_report(self, n: int = 10) -> str:
        rows = self.top(n)
        if not rows:
            return "(no handler samples)"
        headers = ["handler", "calls", "wall_s", "wall_share", "us_per_call", "sim_ns"]
        cells = [[str(row[h]) for h in headers] for row in rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells))
            for i, h in enumerate(headers)
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


class StageProfiler:
    """Per-physical-stage accounting for one PISA pipeline.

    The pipeline calls :meth:`record` once per stage an event traverses,
    with the number of tables that actually executed and the wall seconds
    spent walking the stage.
    """

    __slots__ = ("_events", "_tables", "_wall_s")

    def __init__(self, num_stages: int) -> None:
        self._events = [0] * num_stages
        self._tables = [0] * num_stages
        self._wall_s = [0.0] * num_stages

    def record(self, stage: int, tables: int, wall_s: float) -> None:
        self._events[stage] += 1
        self._tables[stage] += tables
        self._wall_s[stage] += wall_s

    def rows(self) -> List[dict]:
        return [
            {
                "stage": i,
                "events": self._events[i],
                "tables_executed": self._tables[i],
                "wall_s": round(self._wall_s[i], 6),
            }
            for i in range(len(self._events))
        ]


def merge_stage_rows(profilers: List[Optional[StageProfiler]]) -> List[dict]:
    """Sum stage rows across switches (pipelines may differ in depth)."""
    merged: Dict[int, dict] = {}
    for prof in profilers:
        if prof is None:
            continue
        for row in prof.rows():
            slot = merged.setdefault(
                row["stage"],
                {"stage": row["stage"], "events": 0, "tables_executed": 0,
                 "wall_s": 0.0},
            )
            slot["events"] += row["events"]
            slot["tables_executed"] += row["tables_executed"]
            slot["wall_s"] = round(slot["wall_s"] + row["wall_s"], 6)
    return [merged[stage] for stage in sorted(merged)]
