"""Metrics registry: counters, gauges, histograms with Prometheus-style text
exposition and a near-zero-cost disabled mode.

Hot loops (``Network._dispatch`` runs ~100k times/sec) cannot afford per-event
attribute chains or method calls when nobody is looking.  The design therefore
splits the cost into two tiers:

* a module-level :class:`ObsState` singleton (:data:`OBS`) whose single
  ``enabled`` bool is the *only* thing hot paths read when observability is
  off.  Instrumented call sites hoist one ``if _OBS.enabled:`` check around
  the whole metric block, so the disabled cost is one attribute load + branch
  (~30ns against a ~10µs dispatch).
* instrument objects (created once at import time via get-or-create
  registration) that do real work only inside that guard.

A registry constructed with ``enabled=True`` owns a private, always-on state
object — the telemetry emitter uses one so service-mode sampling works even
while the global registry stays dark.

Values survive ``enable()``/``disable()`` flips; :meth:`MetricsRegistry.reset`
zeroes values in place without invalidating instrument references held by
modules.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "OBS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsState",
    "enable",
    "disable",
    "enabled",
    "parse_text_exposition",
]


class ObsState:
    """Mutable on/off switch shared by a registry and its instruments."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled


#: process-global switch guarded by hot call sites; off by default so the
#: simulator pays (almost) nothing unless observability is requested
OBS = ObsState(False)


# Default histogram buckets, in seconds — tuned for per-event dispatch times
# that range from ~2µs (compiled closures) to ~100µs (pisa stage walk).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2,
)

# Buckets for simulated delays, in nanoseconds.
DEFAULT_NS_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    for raw, escaped in _LABEL_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _format_value(value: float) -> str:
    # Prometheus exposition prints integers without a trailing ".0".
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


class _Instrument:
    """Common parent-child label bookkeeping for all instrument kinds."""

    kind = "untyped"
    __slots__ = ("name", "help", "_state", "_labelnames", "_children", "_labelvalues")

    def __init__(
        self,
        name: str,
        help: str,
        state: ObsState,
        labelnames: Sequence[str] = (),
        labelvalues: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._state = state
        self._labelnames = tuple(labelnames)
        self._labelvalues = labelvalues
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    def labels(self, *values) -> "_Instrument":
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self._labelnames):
                raise ValueError(
                    f"{self.name}: expected {len(self._labelnames)} label values, "
                    f"got {len(key)}"
                )
            child = type(self)._make_child(self, key)
            self._children[key] = child
        return child

    @classmethod
    def _make_child(cls, parent: "_Instrument", key: Tuple[str, ...]):
        raise NotImplementedError

    def _reset_value(self) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        self._reset_value()
        for child in self._children.values():
            child.reset()

    def _samples(self) -> List[Tuple[Dict[str, str], str, float]]:
        """Yield (labels, name-suffix, value) rows for text exposition."""
        raise NotImplementedError

    def _label_dict(self) -> Dict[str, str]:
        if self._labelvalues is None:
            return {}
        return dict(zip(self._labelnames, self._labelvalues))

    def collect(self) -> List[Tuple[Dict[str, str], str, float]]:
        rows: List[Tuple[Dict[str, str], str, float]] = []
        if self._labelvalues is not None or not self._labelnames:
            rows.extend(self._samples())
        for key in sorted(self._children):
            rows.extend(self._children[key].collect())
        return rows


class Counter(_Instrument):
    """Monotonically increasing count.  ``inc`` is a no-op while disabled."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name, help, state, labelnames=(), labelvalues=None):
        super().__init__(name, help, state, labelnames, labelvalues)
        self._value = 0

    @classmethod
    def _make_child(cls, parent, key):
        return cls(parent.name, parent.help, parent._state,
                   parent._labelnames, key)

    def inc(self, amount: int = 1) -> None:
        if self._state.enabled:
            self._value += amount

    # alias: reads better at call sites accumulating batch quantities
    add = inc

    @property
    def value(self):
        return self._value

    def _reset_value(self) -> None:
        self._value = 0

    def _samples(self):
        return [(self._label_dict(), "", self._value)]


class Gauge(_Instrument):
    """Point-in-time value (heap depth, sim clock, queue occupancy)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name, help, state, labelnames=(), labelvalues=None):
        super().__init__(name, help, state, labelnames, labelvalues)
        self._value = 0

    @classmethod
    def _make_child(cls, parent, key):
        return cls(parent.name, parent.help, parent._state,
                   parent._labelnames, key)

    def set(self, value) -> None:
        if self._state.enabled:
            self._value = value

    def inc(self, amount=1) -> None:
        if self._state.enabled:
            self._value += amount

    def dec(self, amount=1) -> None:
        if self._state.enabled:
            self._value -= amount

    def set_max(self, value) -> None:
        if self._state.enabled and value > self._value:
            self._value = value

    @property
    def value(self):
        return self._value

    def _reset_value(self) -> None:
        self._value = 0

    def _samples(self):
        return [(self._label_dict(), "", self._value)]


class Histogram(_Instrument):
    """Fixed-boundary histogram with cumulative bucket exposition."""

    kind = "histogram"
    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(self, name, help, state, labelnames=(), labelvalues=None,
                 buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS):
        super().__init__(name, help, state, labelnames, labelvalues)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    @classmethod
    def _make_child(cls, parent, key):
        return cls(parent.name, parent.help, parent._state,
                   parent._labelnames, key, buckets=parent.buckets)

    def observe(self, value: float) -> None:
        if self._state.enabled:
            self._counts[bisect_left(self.buckets, value)] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def _reset_value(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def _samples(self):
        labels = self._label_dict()
        rows = []
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            row_labels = dict(labels)
            row_labels["le"] = _format_le(bound)
            rows.append((row_labels, "_bucket", cumulative))
        row_labels = dict(labels)
        row_labels["le"] = "+Inf"
        rows.append((row_labels, "_bucket", self._count))
        rows.append((labels, "_sum", self._sum))
        rows.append((labels, "_count", self._count))
        return rows


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instrument store with text exposition.

    Registration is idempotent by name: the second ``counter("x")`` call
    returns the first instrument, so modules can declare their metrics at
    import time without coordinating.  Re-registering under a different kind
    or label set is a programming error and raises.
    """

    def __init__(self, enabled: Optional[bool] = None,
                 state: Optional[ObsState] = None) -> None:
        if state is None:
            state = ObsState(bool(enabled))
        elif enabled is not None:
            state.enabled = enabled
        self.state = state
        self._instruments: Dict[str, _Instrument] = {}

    # -- switches ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.state.enabled

    def enable(self) -> None:
        self.state.enabled = True

    def disable(self) -> None:
        self.state.enabled = False

    # -- registration -----------------------------------------------------
    def _register(self, kind: str, name: str, help: str, labelnames, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"not {kind}")
            if tuple(labelnames) != existing._labelnames:
                raise ValueError(
                    f"metric {name!r} label names {existing._labelnames} != "
                    f"{tuple(labelnames)}")
            return existing
        instrument = _KINDS[kind](name, help, self.state,
                                  labelnames=labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._register("counter", name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._register("gauge", name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames=(),
                  buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> Histogram:
        return self._register("histogram", name, help, labelnames,
                              buckets=buckets)

    # -- introspection ----------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def value(self, name: str, labels: Optional[Sequence[str]] = None):
        instrument = self._instruments[name]
        if labels:
            instrument = instrument.labels(*labels)
        return instrument.value

    def reset(self) -> None:
        """Zero every value in place; instrument references stay valid."""
        for instrument in self._instruments.values():
            instrument.reset()

    # -- cross-process aggregation ----------------------------------------
    def dump_values(self) -> Dict[str, Dict[str, object]]:
        """Serialise every instrument's raw values (parents and label
        children) for transport across a process boundary — the shard
        workers ship these to the coordinator, which folds them back in
        with :meth:`merge_values`."""
        out: Dict[str, Dict[str, object]] = {}
        for name, instrument in self._instruments.items():
            entry: Dict[str, object] = {"kind": instrument.kind}
            nodes = [((), instrument)] + [
                (key, child) for key, child in instrument._children.items()
            ]
            values = {}
            for key, node in nodes:
                if node.kind == "histogram":
                    values[key] = (list(node._counts), node._sum, node._count)
                else:
                    values[key] = node._value
            entry["values"] = values
            out[name] = entry
        return out

    def merge_values(self, dump: Dict[str, Dict[str, object]]) -> None:
        """Fold a worker's :meth:`dump_values` into this registry: counters
        and histograms add, gauges keep the max (they are point-in-time
        levels — heap depth, sim clock — where the fleet-wide peak is the
        meaningful aggregate).  Unknown instruments are skipped (the worker
        may have registered metrics this process never imported).  Mutates
        raw values directly, so it works with the registry disabled."""
        for name, entry in dump.items():
            instrument = self._instruments.get(name)
            if instrument is None or instrument.kind != entry["kind"]:
                continue
            for key, value in entry["values"].items():
                node = instrument if key == () else instrument.labels(*key)
                if node.kind == "histogram":
                    counts, total, count = value
                    if len(counts) == len(node._counts):
                        node._counts = [a + b for a, b in zip(node._counts, counts)]
                        node._sum += total
                        node._count += count
                elif node.kind == "counter":
                    node._value += value
                else:  # gauge
                    node._value = max(node._value, value)

    # -- exposition -------------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for labels, suffix, value in instrument.collect():
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(str(val))}"'
                        for key, val in labels.items()
                    )
                    lines.append(
                        f"{name}{suffix}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def parse_text_exposition(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse :meth:`MetricsRegistry.render_text` output back into values.

    Returns ``{sample_name: {((label, value), ...): number}}`` where the
    sample name includes histogram suffixes (``_bucket``/``_sum``/``_count``).
    Used by tests to round-trip exposition through the telemetry emitter.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, value_text = line.rpartition(" ")
        if "{" in body:
            name, _, label_blob = body.partition("{")
            label_blob = label_blob.rstrip("}")
            labels = []
            for part in _split_labels(label_blob):
                key, _, raw = part.partition("=")
                labels.append((key, raw.strip('"')))
            key_tuple = tuple(labels)
        else:
            name = body
            key_tuple = ()
        number = float(value_text) if value_text != "+Inf" else float("inf")
        out.setdefault(name, {})[key_tuple] = number
    return out


def _split_labels(blob: str) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas that sit outside quotes."""
    part = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            part.append(ch)
            escaped = False
            continue
        if ch == "\\":
            part.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            yield "".join(part)
            part = []
        else:
            part.append(ch)
    if part:
        yield "".join(part)


#: process-global registry wired to :data:`OBS`; instruments declared at
#: module import time all hang off this object
REGISTRY = MetricsRegistry(state=OBS)


def enable() -> None:
    """Turn on the global registry (hot paths start recording)."""
    OBS.enabled = True


def disable() -> None:
    """Turn off the global registry (hot paths fall back to the no-op path)."""
    OBS.enabled = False


def enabled() -> bool:
    return OBS.enabled
