"""Observability CLI: ``python -m repro.obs validate-trace out.json``.

Validates a Chrome trace-event JSON file produced by ``--trace``: first the
built-in structural validator, then (when ``--schema`` is given and the
``jsonschema`` package is importable) the checked-in JSON Schema.  Exits
non-zero on the first problem — used by the CI ``obs-smoke`` job.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.trace import validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser("validate-trace",
                              help="validate a Chrome trace JSON file")
    validate.add_argument("path", help="trace file written by --trace")
    validate.add_argument("--schema", default="",
                          help="optional JSON Schema file to validate against")
    args = parser.parse_args(argv)

    with open(args.path) as fh:
        doc = json.load(fh)
    try:
        counts = validate_chrome_trace(doc)
    except ValueError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if args.schema:
        try:
            import jsonschema
        except ImportError:
            print("note: jsonschema not installed, structural checks only")
        else:
            with open(args.schema) as fh:
                schema = json.load(fh)
            try:
                jsonschema.validate(doc, schema)
            except jsonschema.ValidationError as exc:
                print(f"INVALID (schema): {exc.message}", file=sys.stderr)
                return 1
    spans = counts["X"]
    print(f"ok: {spans} spans, {counts['M']} metadata, "
          f"{counts['s']}+{counts['f']} flow events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
