"""First-class observability: metrics, event-lifecycle tracing, profiling.

Three cooperating layers, all off by default and (near) free when disabled:

* :mod:`repro.obs.metrics` — a Prometheus-style registry.  Hot loops guard
  entire instrument blocks behind one ``if OBS.enabled:`` check against the
  module-level :data:`~repro.obs.metrics.OBS` singleton, so the disabled
  cost is a single attribute load + branch per event.
* :mod:`repro.obs.trace` — span trees over simulated time.  A
  :class:`Tracer` attached to a network records one span per dispatched
  event, linked parent→child through ``EventInstance.trace_parent``, and
  exports Chrome trace-event JSON (Perfetto-compatible) that is
  byte-identical across execution engines for the same seed.
* :mod:`repro.obs.profile` — per-handler and per-PISA-stage wall/sim-time
  accounting, surfaced as a top-N hot-handler report by the scenario CLI
  and embedded in benchmark JSON.

Metric naming convention
========================

``repro_<subsystem>_<quantity>[_<unit>][_total]``

* ``<subsystem>`` is the owning module family: ``network`` (the event
  scheduler), ``engine`` (per-engine dispatch), ``pisa`` (pipeline, delay
  queue, recirculation port), ``telemetry`` (service-mode sampling gauges).
* counters end in ``_total`` and only ever increase; gauges carry no
  suffix; histograms carry the unit (``_seconds``, ``_ns``) and expose
  ``_bucket``/``_sum``/``_count`` samples.
* units are base SI: seconds for wall time, nanoseconds (``_ns``) for
  simulated time, bytes for payload volume.
* labels are few and low-cardinality by design: ``event`` (handler name),
  ``engine`` (one of reference/compiled/pisa).  Never label by per-run
  values (switch count is fine as a gauge; switch *id* is not a label).

Catalogue (declared at import time in their owning modules): see the
README's Observability section for the full table with meanings.
"""

from repro.obs.metrics import (
    OBS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    parse_text_exposition,
)
from repro.obs.profile import HandlerProfiler, StageProfiler, merge_stage_rows
from repro.obs.trace import Span, Tracer, validate_chrome_trace

__all__ = [
    "OBS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "HandlerProfiler",
    "StageProfiler",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "merge_stage_rows",
    "parse_text_exposition",
    "validate_chrome_trace",
]
