"""Reproduction of "Lucid: a language for control in the data plane" (SIGCOMM 2021).

The top-level package exposes the most commonly used entry points; see
:mod:`repro.core` for the full public API.
"""

__version__ = "1.0.0"

from repro.frontend import check_program, parse_program  # noqa: F401

__all__ = ["check_program", "parse_program", "__version__"]
