"""Shared arithmetic and hash primitives of the Lucid data plane.

Every execution substrate in this repository — the tree-walking
interpreter (:mod:`repro.interp.interpreter`), the compiled-closure fast
path (:mod:`repro.interp.compiled`), the source-codegen engine
(:mod:`repro.interp.codegen`), and the PISA pipeline executor
(:mod:`repro.pisa.pipeline`) — must agree bit-for-bit on what one ALU
operation computes.  This module is the single definition they all
consume; keeping it dependency-free (it imports only the AST operator
enum) lets any layer use it without pulling in an engine.

All arithmetic is 32-bit: results are masked to ``0xFFFFFFFF``, division
and modulo by zero yield 0 (matching the Tofino's saturating behaviour in
the reference runtime), and shifts use only the low five bits of their
right operand, as the hardware barrel shifter does.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.errors import InterpError
from repro.frontend import ast

MASK32 = 0xFFFFFFFF

#: pre-built struct packers per hash arity (format-string construction is
#: measurable in invariant observers that hash on every handled event)
_HASH_PACKERS: dict = {}


def mask32(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit word."""
    return value & MASK32


def div32(left: int, right: int) -> int:
    """32-bit division; division by zero yields 0."""
    return left // right if right else 0


def mod32(left: int, right: int) -> int:
    """32-bit modulo; modulo by zero yields 0."""
    return left % right if right else 0


def lucid_hash(width: int, args: Sequence[int], seed: int = 0) -> int:
    """The deterministic hash used for ``hash<<w>>(...)`` — a CRC32 over the
    argument words, truncated to ``w`` bits (the Tofino's hash units compute
    CRC-family hashes).

    Degenerate widths are total rather than partial so every engine agrees:
    ``w >= 32`` keeps the full CRC word, ``w <= 0`` yields 0 (a zero-bit
    hash has exactly one value), and an empty argument list hashes just the
    seed word."""
    n = len(args) + 1
    packer = _HASH_PACKERS.get(n)
    if packer is None:
        packer = _HASH_PACKERS[n] = struct.Struct("<%dI" % n).pack
    value = zlib.crc32(
        packer(seed & MASK32, *[int(arg) & MASK32 for arg in args])
    )
    if width >= 32:
        return value
    if width <= 0:
        return 0
    return value & ((1 << width) - 1)


def apply_binop(op: ast.BinOp, left: int, right: int) -> int:
    """Apply one Lucid binary operator over 32-bit operands.

    Comparison and boolean operators return 0/1.  ``&&``/``||`` here are the
    *strict* forms; engines that implement short-circuit evaluation do so
    before calling in (both orders are observationally identical because
    Lucid expressions this deep are pure).
    """
    if op is ast.BinOp.ADD:
        return (left + right) & MASK32
    if op is ast.BinOp.SUB:
        return (left - right) & MASK32
    if op is ast.BinOp.MUL:
        return (left * right) & MASK32
    if op is ast.BinOp.DIV:
        return div32(left, right)
    if op is ast.BinOp.MOD:
        return mod32(left, right)
    if op is ast.BinOp.BITAND:
        return left & right
    if op is ast.BinOp.BITOR:
        return left | right
    if op is ast.BinOp.BITXOR:
        return left ^ right
    if op is ast.BinOp.SHL:
        return (left << (right & 31)) & MASK32
    if op is ast.BinOp.SHR:
        return left >> (right & 31)
    if op is ast.BinOp.EQ:
        return int(left == right)
    if op is ast.BinOp.NEQ:
        return int(left != right)
    if op is ast.BinOp.LT:
        return int(left < right)
    if op is ast.BinOp.GT:
        return int(left > right)
    if op is ast.BinOp.LE:
        return int(left <= right)
    if op is ast.BinOp.GE:
        return int(left >= right)
    if op is ast.BinOp.AND:
        return int(bool(left) and bool(right))
    if op is ast.BinOp.OR:
        return int(bool(left) or bool(right))
    raise InterpError(f"unsupported operator {op}")
