"""Consistent shared state (SRO) — strongly consistent distributed arrays.

A designated sequencer switch orders writes by stamping them with a sequence
number; the write is then synchronised to every replica, which applies it only
if the sequence number is newer than the one it holds for that key.  Reads are
served locally.  Control events carry the synchronisation.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Strongly consistent replicated arrays via a data-plane sequencer.
symbolic size STORE_SZ = 1024;
const int SEQUENCER = 0;
const group REPLICAS = {0, 1, 2};

global next_seq = new Array<<32>>(4);
global seqs = new Array<<32>>(STORE_SZ);
global values = new Array<<32>>(STORE_SZ);

memop keep(int stored, int unused) { return stored; }
memop plus(int stored, int x) { return stored + x; }
memop overwrite(int stored, int newval) { return newval; }
memop max_update(int stored, int candidate) {
  if (candidate > stored) { return candidate; } else { return stored; }
}

event write_req(int key, int value);
event write_ordered(int key, int value, int seq);
event read_req(int key, int client);
event read_reply(int key, int value, int client);

// A write request reaches the sequencer, gets a global order, and fans out.
handle write_req(int key, int value) {
  int seq = Array.update(next_seq, 0, plus, 1, plus, 1);
  mgenerate Event.locate(write_ordered(key, value, seq), REPLICAS);
}

// Replicas apply a write only if it is newer than what they already hold.
handle write_ordered(int key, int value, int seq) {
  int held = Array.update(seqs, key, keep, 0, max_update, seq);
  if (seq > held) {
    Array.set(values, key, overwrite, value);
  }
}

// Reads are served from the local replica.
handle read_req(int key, int client) {
  int value = Array.get(values, key);
  generate Event.locate(read_reply(key, value, client), client);
}
"""

APP = Application(
    key="SRO",
    name="Consistent Shared State",
    description="Strongly consistent distributed arrays; control events "
    "synchronise writes across replicas.",
    control_role="Control events synchronize writes",
    source=SOURCE,
    paper_lucid_loc=94,
    paper_p4_loc=897,
    paper_stages=11,
    invariants=("sro-replicas-consistent", "sequencer-monotone"),
)
