"""The fast rerouter (RR) — the paper's driving example (Section 2, Figure 2).

Forwarding looks up a next hop and checks that it is still reachable; fault
detection pings neighbours on a timer; rerouting queries all neighbours for
their path length and adopts the best reply.  All three components are control
events interleaved with packet forwarding.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Fast rerouter: forwarding + fault detection + distributed rerouting.
symbolic size TBL_SZ = 64;
const int INFINITY = 1048576;
const int PROBE_DELAY_NS = 1000000;
const int SCAN_DELAY_NS = 1000;
const int LINK_FRESH = 3;
const group NEIGHBORS = {1, 2, 3};

global pathlens = new Array<<32>>(TBL_SZ);
global nexthops = new Array<<32>>(TBL_SZ);
global linkstat = new Array<<32>>(128);

memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }
memop min_update(int stored, int candidate) {
  if (candidate < stored) { return candidate; } else { return stored; }
}
memop decay(int stored, int unused) {
  if (stored > 0) { return stored - 1; } else { return stored; }
}

event data_pkt(int dst);
event route_query(int sender_id, int dst);
event route_reply(int sender_id, int dst, int pathlen);
event check_route(int dst);
event link_probe(int sender_id);
event link_probe_reply(int sender_id);
event probe_links();
event age_links(int port);

fun int get_pathlen(int dst) {
  return Array.get(pathlens, dst);
}

// Forwarding: look up the next hop, verify the link, reroute if it is down.
handle data_pkt(int dst) {
  int hop = Array.get(nexthops, dst);
  int alive = Array.get(linkstat, hop);
  if (alive == 0) {
    // next hop unreachable: ask every neighbour for its path length
    mgenerate Event.locate(route_query(SELF, dst), NEIGHBORS);
  } else {
    forward(hop);
  }
}

// Routing: answer queries with our own path length, adopt shorter replies.
handle route_query(int sender_id, int dst) {
  int pathlen = get_pathlen(dst);
  event reply = route_reply(SELF, dst, pathlen);
  generate Event.locate(reply, sender_id);
}

handle route_reply(int sender_id, int dst, int pathlen) {
  int candidate = pathlen + 1;
  int old = Array.update(pathlens, dst, keep, 0, min_update, candidate);
  if (candidate < old) {
    Array.set(nexthops, dst, overwrite, sender_id);
  }
}

// Periodic route-table scan: re-query routes that have become unreachable.
handle check_route(int dst) {
  int pathlen = get_pathlen(dst);
  if (pathlen >= INFINITY) {
    mgenerate Event.locate(route_query(SELF, dst), NEIGHBORS);
  }
  int next = dst + 1;
  if (next == TBL_SZ) {
    next = 0;
  }
  generate Event.delay(check_route(next), SCAN_DELAY_NS);
}

// Fault detection: ping all neighbours, age the link table between pings.
handle probe_links() {
  mgenerate Event.locate(link_probe(SELF), NEIGHBORS);
  generate Event.delay(probe_links(), PROBE_DELAY_NS);
}

handle link_probe(int sender_id) {
  generate Event.locate(link_probe_reply(SELF), sender_id);
}

handle link_probe_reply(int sender_id) {
  Array.set(linkstat, sender_id, overwrite, LINK_FRESH);
}

handle age_links(int port) {
  Array.set(linkstat, port, decay, 0);
  int next = port + 1;
  if (next == 128) {
    next = 0;
  }
  generate Event.delay(age_links(next), SCAN_DELAY_NS);
}
"""

APP = Application(
    key="RR",
    name="Fast Rerouter",
    description="Forwards packets, identifies failures, and routes around them.",
    control_role="Control events perform fault detection and routing",
    source=SOURCE,
    paper_lucid_loc=115,
    paper_p4_loc=899,
    paper_stages=8,
    invariants=("reroute-recovers",),
)
