"""Single-destination RIP (RIP) — classic distance-vector routing.

Each switch keeps its distance to the destination and the neighbour that
advertised it.  Control events periodically advertise the local distance to
all neighbours; receiving an advertisement with a shorter path updates the
local route.  Data packets simply follow the current next hop.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Single-destination Routing Information Protocol in the data plane.
const int INFINITY = 1048576;
const int ADVERTISE_DELAY_NS = 1000000;
const group NEIGHBORS = {1, 2, 3};

global dist = new Array<<32>>(4);
global nexthop = new Array<<32>>(4);

memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }
memop min_update(int stored, int candidate) {
  if (candidate < stored) { return candidate; } else { return stored; }
}

event advertise(int sender_id, int sender_dist);
event periodic_advertise();
event data_pkt(int dst);

// An advertisement updates the route if it offers a shorter path.
handle advertise(int sender_id, int sender_dist) {
  int candidate = sender_dist + 1;
  int old = Array.update(dist, 0, keep, 0, min_update, candidate);
  if (candidate < old) {
    Array.set(nexthop, 0, overwrite, sender_id);
  }
}

// The control thread: advertise our distance to every neighbour on a timer.
handle periodic_advertise() {
  int mine = Array.get(dist, 0);
  if (mine < INFINITY) {
    mgenerate Event.locate(advertise(SELF, mine), NEIGHBORS);
  }
  generate Event.delay(periodic_advertise(), ADVERTISE_DELAY_NS);
}

// Forwarding: follow the current next hop (drop if we have no route yet).
handle data_pkt(int dst) {
  int mine = Array.get(dist, 0);
  int hop = Array.get(nexthop, 0);
  if (mine >= INFINITY) {
    drop();
  } else {
    forward(hop);
  }
}
"""

APP = Application(
    key="RIP",
    name="Single-dest. RIP",
    description="Routing with the classic Routing Information Protocol; "
    "control events distribute routes.",
    control_role="Control events distribute routes",
    source=SOURCE,
    paper_lucid_loc=81,
    paper_p4_loc=764,
    paper_stages=8,
    invariants=("rip-converged",),
)
