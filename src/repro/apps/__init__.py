"""The ten data-plane applications of Figure 9, written in Lucid.

``ALL_APPLICATIONS`` maps the short keys used throughout the evaluation
(``SFW``, ``RR``, ``DNS``, ``*Flow``, ``SRO``, ``DFW``, ``DFW(a)``, ``RIP``,
``NAT``, ``CM``) to :class:`~repro.apps.base.Application` records carrying the
Lucid source and the paper's reported numbers for comparison.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.base import Application
from repro.apps import (
    countmin,
    dist_firewall,
    dns_defense,
    fast_rerouter,
    nat,
    rip,
    sro,
    starflow,
    stateful_firewall,
)
from repro.apps.stateful_firewall import FirewallExperiment

#: every application of Figure 9, in the paper's order
ALL_APPLICATIONS: Dict[str, Application] = {
    app.key: app
    for app in (
        stateful_firewall.APP,
        fast_rerouter.APP,
        dns_defense.APP,
        starflow.APP,
        sro.APP,
        dist_firewall.APP,
        dist_firewall.AGING_APP,
        rip.APP,
        nat.APP,
        countmin.APP,
    )
}

__all__ = ["Application", "ALL_APPLICATIONS", "FirewallExperiment"]
