"""*Flow — a telemetry cache that batches per-flow packet records (SF).

Packets append a compact record (timestamp, size) to a per-flow slot in a
cache.  When a new flow collides with a cached one, the old flow's batch is
evicted to the telemetry collector and its memory is handed to the new flow.
Control events perform the eviction and the memory allocation, exactly the
split described for *Flow in the paper's Figure 9.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// *Flow-style telemetry cache: batch per-flow records, evict on collision.
symbolic size CACHE_SLOTS = 1024;
const int BATCH_LIMIT = 8;
const int COLLECTOR = 9;
const int SEED = 77;

global slot_key = new Array<<32>>(CACHE_SLOTS);
global slot_count = new Array<<32>>(CACHE_SLOTS);
global slot_bytes = new Array<<32>>(CACHE_SLOTS);
global slot_start = new Array<<32>>(CACHE_SLOTS);
global free_head = new Array<<32>>(4);

memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }
memop plus(int stored, int x) { return stored + x; }
memop zero(int stored, int unused) { return 0; }
memop bump(int stored, int x) { return stored + x; }

event pkt(int src, int dst, int len);
event evict_slot(int idx, int oldkey);
event export_batch(int key, int count, int bytes, int start);
event alloc_slot(int idx, int key);

fun int cache_index(int src, int dst) {
  return hash<<10>>(src, dst, SEED);
}

// Data path: append the packet's record to its flow's cache slot.
handle pkt(int src, int dst, int len) {
  int key = hash<<32>>(src, dst, SEED);
  int idx = cache_index(src, dst);
  int old = Array.update(slot_key, idx, keep, 0, overwrite, key);
  if (old == key || old == 0) {
    // the flow already owns the slot (or it was free): extend the batch
    int count = Array.update(slot_count, idx, plus, 1, plus, 1);
    Array.set(slot_bytes, idx, plus, len);
    if (count >= BATCH_LIMIT) {
      generate evict_slot(idx, key);
    }
  } else {
    // collision: evict the previous flow's batch, then allocate for ours
    generate evict_slot(idx, old);
    generate alloc_slot(idx, key);
  }
  forward(1);
}

// Control: eviction reads out the batch and ships it to the collector.
handle evict_slot(int idx, int oldkey) {
  int count = Array.update(slot_count, idx, keep, 0, zero, 0);
  int bytes = Array.update(slot_bytes, idx, keep, 0, zero, 0);
  int start = Array.update(slot_start, idx, keep, 0, zero, 0);
  event record = export_batch(oldkey, count, bytes, start);
  generate Event.locate(record, COLLECTOR);
}

// Control: allocation initialises the slot for the new flow.
handle alloc_slot(int idx, int key) {
  Array.set(slot_count, idx, overwrite, 1);
  Array.set(slot_bytes, idx, overwrite, 0);
  Array.set(slot_start, idx, overwrite, Sys.time());
  Array.set(free_head, 0, bump, 1);
}
"""

APP = Application(
    key="*Flow",
    name="*Flow Telemetry Cache",
    description="Batches packet tuples by flow to accelerate analytics; "
    "control events allocate memory and evict batches.",
    control_role="Control events allocate memory",
    source=SOURCE,
    paper_lucid_loc=149,
    paper_p4_loc=1927,
    paper_stages=12,
)
