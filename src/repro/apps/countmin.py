"""Historical probabilistic queries (CM) — count-min sketches with periodic
export, Figure 9's last row.

Packets update a two-row count-min sketch.  A control thread walks the sketch
on a timer, exports each cell to a collector switch, and clears it, so the
collector accumulates a history of per-epoch sketches that can answer
historical queries.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Count-min sketch with periodic export for historical queries.
symbolic size SKETCH_COLS = 1024;
const int SEED_A = 5;
const int SEED_B = 211;
const int EXPORT_DELAY_NS = 1000000;
const int COLLECTOR = 9;

global epoch = new Array<<32>>(4);
global row_a = new Array<<32>>(SKETCH_COLS);
global row_b = new Array<<32>>(SKETCH_COLS);

memop plus(int stored, int x) { return stored + x; }
memop keep(int stored, int unused) { return stored; }
memop zero(int stored, int unused) { return 0; }

event pkt(int src, int dst);
event export_cell(int idx);
event cell_record(int epoch_id, int idx, int count_a, int count_b);
event query(int src, int dst, int client);
event query_reply(int estimate, int client);

// Data path: update both sketch rows.
handle pkt(int src, int dst) {
  int ha = hash<<10>>(src, dst, SEED_A);
  int hb = hash<<10>>(src, dst, SEED_B);
  Array.set(row_a, ha, plus, 1);
  Array.set(row_b, hb, plus, 1);
  forward(1);
}

// Control: walk the sketch, export each cell to the collector, reset it.
handle export_cell(int idx) {
  int epoch_id = Array.get(epoch, 0);
  int count_a = Array.update(row_a, idx, keep, 0, zero, 0);
  int count_b = Array.update(row_b, idx, keep, 0, zero, 0);
  event record = cell_record(epoch_id, idx, count_a, count_b);
  generate Event.locate(record, COLLECTOR);
  int next = idx + 1;
  if (next == SKETCH_COLS) {
    next = 0;
    generate bump_epoch();
  }
  generate Event.delay(export_cell(next), EXPORT_DELAY_NS);
}

event bump_epoch();
handle bump_epoch() {
  Array.set(epoch, 0, plus, 1);
}

// Queries read the current estimate (the minimum of the two rows).
handle query(int src, int dst, int client) {
  int ha = hash<<10>>(src, dst, SEED_A);
  int hb = hash<<10>>(src, dst, SEED_B);
  int count_a = Array.get(row_a, ha);
  int count_b = Array.get(row_b, hb);
  int estimate = count_a;
  if (count_b < count_a) {
    estimate = count_b;
  }
  generate Event.locate(query_reply(estimate, client), client);
}
"""

APP = Application(
    key="CM",
    name="Historical Prob. Queries",
    description="Measures flows with sketches for historical queries; control "
    "events age and export state periodically.",
    control_role="Control events age and export state periodically",
    source=SOURCE,
    paper_lucid_loc=93,
    paper_p4_loc=856,
    paper_stages=5,
    invariants=("sketch-conservation",),
)
