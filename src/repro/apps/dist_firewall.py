"""The distributed probabilistic firewall (DFW), with and without aging.

Every border switch holds a replicated Bloom filter of allowed flows.  When a
trusted host opens a flow through any switch, that switch sets the flow's bits
locally and synchronises the update to its peers, so return traffic is
admitted no matter which border switch it enters through.  The aging variant
(DFW(a) in Figure 9) adds a second filter generation and control events that
rotate and clear the filters so stale entries eventually expire.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Distributed Bloom-filter firewall: updates are synchronised to all peers.
symbolic size FILTER_BITS = 4096;
const int SEED_A = 3;
const int SEED_B = 59;
const group PEERS = {1, 2, 3};
const int TRUSTED_PORT = 1;
const int UNTRUSTED_PORT = 2;

global bloom_a = new Array<<32>>(FILTER_BITS);
global bloom_b = new Array<<32>>(FILTER_BITS);

memop mark(int stored, int unused) { return 1; }

event pkt_out(int src, int dst);
event pkt_in(int src, int dst);
event sync_add(int ha, int hb);

fun int hash_a(int src, int dst) { return hash<<12>>(src, dst, SEED_A); }
fun int hash_b(int src, int dst) { return hash<<12>>(src, dst, SEED_B); }

// Outbound traffic marks the flow as allowed and tells the other borders.
handle pkt_out(int src, int dst) {
  int ha = hash_a(src, dst);
  int hb = hash_b(src, dst);
  Array.set(bloom_a, ha, mark, 0);
  Array.set(bloom_b, hb, mark, 0);
  mgenerate Event.locate(sync_add(ha, hb), PEERS);
  forward(UNTRUSTED_PORT);
}

// Return traffic is admitted only if the flow is in the filter.
handle pkt_in(int src, int dst) {
  int ha = hash_a(dst, src);
  int hb = hash_b(dst, src);
  int hit_a = Array.get(bloom_a, ha);
  int hit_b = Array.get(bloom_b, hb);
  if (hit_a == 1 && hit_b == 1) {
    forward(TRUSTED_PORT);
  } else {
    drop();
  }
}

// Peers apply synchronised updates directly.
handle sync_add(int ha, int hb) {
  Array.set(bloom_a, ha, mark, 0);
  Array.set(bloom_b, hb, mark, 0);
}
"""

AGING_SOURCE = r"""
// Distributed Bloom-filter firewall with aging: two filter generations are
// kept; lookups accept a flow present in either, inserts go to the active
// generation, and a control thread periodically clears the inactive one and
// swaps the active generation (rotate).
symbolic size FILTER_BITS = 4096;
const int SEED_A = 3;
const int SEED_B = 59;
const group PEERS = {1, 2, 3};
const int TRUSTED_PORT = 1;
const int UNTRUSTED_PORT = 2;
const int CLEAR_DELAY_NS = 100000;

global generation = new Array<<32>>(4);
global young_a = new Array<<32>>(FILTER_BITS);
global young_b = new Array<<32>>(FILTER_BITS);
global old_a = new Array<<32>>(FILTER_BITS);
global old_b = new Array<<32>>(FILTER_BITS);

memop mark(int stored, int unused) { return 1; }
memop clear(int stored, int unused) { return 0; }
memop keep(int stored, int unused) { return stored; }
memop plus(int stored, int x) { return stored + x; }

event pkt_out(int src, int dst);
event pkt_in(int src, int dst);
event sync_add(int ha, int hb);
event age_clear(int idx);
event rotate();

fun int hash_a(int src, int dst) { return hash<<12>>(src, dst, SEED_A); }
fun int hash_b(int src, int dst) { return hash<<12>>(src, dst, SEED_B); }

handle pkt_out(int src, int dst) {
  int ha = hash_a(src, dst);
  int hb = hash_b(src, dst);
  Array.set(young_a, ha, mark, 0);
  Array.set(young_b, hb, mark, 0);
  mgenerate Event.locate(sync_add(ha, hb), PEERS);
  forward(UNTRUSTED_PORT);
}

handle pkt_in(int src, int dst) {
  int ha = hash_a(dst, src);
  int hb = hash_b(dst, src);
  int young_hit_a = Array.get(young_a, ha);
  int young_hit_b = Array.get(young_b, hb);
  int old_hit_a = Array.get(old_a, ha);
  int old_hit_b = Array.get(old_b, hb);
  int young_hit = 0;
  if (young_hit_a == 1 && young_hit_b == 1) {
    young_hit = 1;
  }
  int old_hit = 0;
  if (old_hit_a == 1 && old_hit_b == 1) {
    old_hit = 1;
  }
  if (young_hit == 1 || old_hit == 1) {
    forward(TRUSTED_PORT);
  } else {
    drop();
  }
}

handle sync_add(int ha, int hb) {
  Array.set(young_a, ha, mark, 0);
  Array.set(young_b, hb, mark, 0);
}

// Aging: clear the old generation one cell per pass, then rotate.
handle age_clear(int idx) {
  Array.set(old_a, idx, clear, 0);
  Array.set(old_b, idx, clear, 0);
  int next = idx + 1;
  if (next == FILTER_BITS) {
    generate rotate();
  } else {
    generate Event.delay(age_clear(next), CLEAR_DELAY_NS);
  }
}

handle rotate() {
  // swap generations: the young filter becomes old and a fresh scan begins
  Array.set(generation, 0, plus, 1);
  generate Event.delay(age_clear(0), CLEAR_DELAY_NS);
}
"""

APP = Application(
    key="DFW",
    name="Distributed Prob. Firewall",
    description="Distributed Bloom-filter firewall; control events synchronise "
    "updates between border switches.",
    control_role="Control events sync updates",
    source=SOURCE,
    paper_lucid_loc=66,
    paper_p4_loc=1073,
    paper_stages=10,
    invariants=("dfw-filters-consistent",),
)

AGING_APP = Application(
    key="DFW(a)",
    name="Distributed Prob. Firewall + Aging",
    description="DFW plus control events that age and rotate the Bloom filters.",
    control_role="Control events sync updates and age filters",
    source=AGING_SOURCE,
    paper_lucid_loc=119,
    paper_p4_loc=1595,
    paper_stages=10,
)
