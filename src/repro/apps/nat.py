"""Simple NAT (NAT) — basic network address translation.

Internal flows are mapped to external ports allocated from a counter; the
mapping is installed by a control event, and packets of unmapped flows are
(conceptually) buffered by re-generating them with a small delay until the
mapping exists — the idiom the paper's Figure 9 describes as "control events
buffer packets and install entries".
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Simple NAT: allocate external ports in the data plane.
symbolic size NAT_SLOTS = 1024;
const int SEED = 97;
const int FIRST_PORT = 1024;
const int RETRY_DELAY_NS = 10000;
const int WAN_PORT = 2;
const int LAN_PORT = 1;

global next_port = new Array<<32>>(4);
global map_key = new Array<<32>>(NAT_SLOTS);
global map_port = new Array<<32>>(NAT_SLOTS);

memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }
memop plus(int stored, int x) { return stored + x; }
memop set_if_empty(int stored, int newval) {
  if (stored == 0) { return newval; } else { return stored; }
}

event pkt_internal(int src, int dst);
event pkt_external(int dst, int port);
event add_mapping(int src, int dst);

fun int nat_index(int src, int dst) {
  return hash<<10>>(src, dst, SEED);
}

// Outbound packet: translate if a mapping exists, otherwise install one and
// retry the packet shortly after (buffering via a delayed event).
handle pkt_internal(int src, int dst) {
  int key = hash<<32>>(src, dst, SEED);
  int idx = nat_index(src, dst);
  int held = Array.get(map_key, idx);
  int port = Array.get(map_port, idx);
  if (held == key) {
    forward(WAN_PORT);
  } else {
    generate add_mapping(src, dst);
    generate Event.delay(pkt_internal(src, dst), RETRY_DELAY_NS);
  }
}

// Control: allocate a fresh external port and pin the mapping.
handle add_mapping(int src, int dst) {
  int key = hash<<32>>(src, dst, SEED);
  int idx = nat_index(src, dst);
  int offset = Array.update(next_port, 0, plus, 1, plus, 1);
  int claimed = Array.update(map_key, idx, keep, 0, set_if_empty, key);
  if (claimed == 0) {
    Array.set(map_port, idx, overwrite, FIRST_PORT + offset);
  }
}

// Inbound packet: reverse translation by external port.
handle pkt_external(int dst, int port) {
  int idx = hash<<10>>(dst, port, SEED);
  int held = Array.get(map_key, idx);
  if (held == 0) {
    drop();
  } else {
    forward(LAN_PORT);
  }
}
"""

APP = Application(
    key="NAT",
    name="Simple NAT",
    description="Basic network address translation; control events buffer "
    "packets and install entries.",
    control_role="Control events buffer packets and install entries",
    source=SOURCE,
    paper_lucid_loc=41,
    paper_p4_loc=707,
    paper_stages=11,
    invariants=("nat-bijective",),
)
