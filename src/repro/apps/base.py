"""Common infrastructure for the example applications (Figure 9).

Every application module defines a Lucid source program plus a small Python
driver that knows how to exercise it in the interpreter.  The
:class:`Application` record ties the pieces together and is what the
benchmarks iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.backend.compiler import CompiledProgram, CompilerOptions, compile_program


@dataclass(frozen=True)
class Application:
    """One data-plane application with integrated control."""

    #: short key used in tables (e.g. "SFW")
    key: str
    #: human readable name (Figure 9's "Application" column)
    name: str
    #: one-line description
    description: str
    #: the role of control events, as bolded in Figure 9
    control_role: str
    #: Lucid source text
    source: str
    #: the Lucid LoC / Tofino stage numbers reported in Figure 9 of the paper
    paper_lucid_loc: int = 0
    paper_p4_loc: int = 0
    paper_stages: int = 0
    #: names of the safety/consistency invariants this application upholds,
    #: resolved against the scenario engine's invariant registry
    #: (:mod:`repro.scenarios.invariants`) by :meth:`make_invariants`
    invariants: Tuple[str, ...] = ()

    def compile(
        self, options: Optional[CompilerOptions] = None, emit_naive_p4: bool = True
    ) -> CompiledProgram:
        """Compile this application with the Lucid compiler."""
        if options is None:
            options = CompilerOptions(emit_naive_p4=emit_naive_p4)
        return compile_program(self.source, name=self.key, options=options)

    def make_invariants(self) -> List[object]:
        """Instantiate this application's default invariant checks.

        The invariant classes live in :mod:`repro.scenarios.invariants`; the
        import is deferred so the application catalogue stays importable
        without the scenario engine (and without import cycles).
        """
        from repro.scenarios.invariants import make_invariant

        return [make_invariant(name) for name in self.invariants]
