"""The stateful firewall (SFW) — the paper's running case study (Section 7.4).

Outbound flows from trusted hosts are inserted into a cuckoo hash table with
two possible locations per flow and a stash; inbound packets are only allowed
if their (reversed) flow key is present.  Control events perform cuckoo
installation (with bounded re-install recursion) and a periodic timeout scan
that ages out idle entries — both entirely in the data plane.

The module also provides :class:`FirewallExperiment`, the driver used by the
Figure 17 benchmark: it replays a flow workload through the interpreter,
measures per-flow installation time (data-plane integrated control), and
compares against the Mantis-style remote controller model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.base import Application
from repro.control import ControlPlaneConfig, RemoteController
from repro.frontend.type_checker import check_program
from repro.interp import EventInstance, Network, SchedulerConfig, single_switch_network
from repro.interp.interpreter import lucid_hash
from repro.workloads import FlowWorkload

SOURCE = r"""
// Stateful firewall with a data-plane cuckoo hash table (Section 7.4).
// Flow keys live in two tables (one per hash function) plus a stash that
// holds a victim while it is being re-installed, so installs are transparent
// to concurrent lookups.
symbolic size TBL_SLOTS = 1024;
const int SEED1 = 10398247;
const int SEED2 = 1295981879;
const int MAX_CUCKOO_RETRIES = 2;
const int TIMEOUT_NS = 100000000;
const int SCAN_DELAY_NS = 100000;
const int TRUSTED_PORT = 1;
const int UNTRUSTED_PORT = 2;

global keys1 = new Array<<32>>(TBL_SLOTS);
global keys2 = new Array<<32>>(TBL_SLOTS);
global stash = new Array<<32>>(4);
global ts1 = new Array<<32>>(TBL_SLOTS);
global ts2 = new Array<<32>>(TBL_SLOTS);

// memops: one stateful-ALU operation each
memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }
memop set_if_empty(int stored, int newval) {
  if (stored == 0) { return newval; } else { return stored; }
}
memop refresh(int stored, int now) { return now; }

event pkt_out(int src, int dst);
event pkt_in(int src, int dst);
event install(int key, int retries);
event evict_slot(int slot, int idx);
event scan_timeouts(int idx);

fun int flow_key(int src, int dst) {
  return hash<<32>>(src, dst, SEED1);
}

handle pkt_out(int src, int dst) {
  int key = flow_key(src, dst);
  int h1 = hash<<10>>(key, SEED1);
  int h2 = hash<<10>>(key, SEED2);
  // opportunistic install: claim an empty slot during this packet's own pass,
  // so most flows install with an effective latency of 0 ns (Section 7.4)
  int k1 = Array.update(keys1, h1, keep, 0, set_if_empty, key);
  if (k1 == 0 || k1 == key) {
    Array.set(ts1, h1, refresh, Sys.time());
  } else {
    int k2 = Array.update(keys2, h2, keep, 0, set_if_empty, key);
    if (k2 == 0 || k2 == key) {
      Array.set(ts2, h2, refresh, Sys.time());
    } else {
      // both slots hold other flows: run a cuckoo install as a control event
      generate install(key, 0);
    }
  }
  forward(UNTRUSTED_PORT);
}

handle pkt_in(int src, int dst) {
  // return traffic: allowed only when the outbound flow was installed
  int key = flow_key(dst, src);
  int h1 = hash<<10>>(key, SEED1);
  int h2 = hash<<10>>(key, SEED2);
  int k1 = Array.get(keys1, h1);
  int k2 = Array.get(keys2, h2);
  int stashed = Array.get(stash, 0);
  if (k1 == key || k2 == key || stashed == key) {
    forward(TRUSTED_PORT);
  } else {
    drop();
  }
}

handle install(int key, int retries) {
  int h1 = hash<<10>>(key, SEED1);
  int old1 = Array.update(keys1, h1, keep, 0, set_if_empty, key);
  if (old1 == 0) {
    Array.set(ts1, h1, refresh, Sys.time());
  } else {
    if (old1 != key) {
      int h2 = hash<<10>>(key, SEED2);
      int old2 = Array.update(keys2, h2, keep, 0, overwrite, key);
      if (old2 != 0 && old2 != key) {
        // we evicted a victim: stash it and re-install it with a new pass
        Array.set(stash, 0, overwrite, old2);
        if (retries < MAX_CUCKOO_RETRIES) {
          generate install(old2, retries + 1);
        }
      }
      Array.set(ts2, h2, refresh, Sys.time());
    }
  }
}

handle evict_slot(int slot, int idx) {
  // delete a timed-out entry; issued by the timeout scan
  if (slot == 1) {
    Array.set(keys1, idx, overwrite, 0);
  } else {
    Array.set(keys2, idx, overwrite, 0);
  }
}

handle scan_timeouts(int idx) {
  int seen1 = Array.get(ts1, idx);
  int seen2 = Array.get(ts2, idx);
  int now = Sys.time();
  if (seen1 != 0 && now - seen1 > TIMEOUT_NS) {
    generate evict_slot(1, idx);
  }
  if (seen2 != 0 && now - seen2 > TIMEOUT_NS) {
    generate evict_slot(2, idx);
  }
  int next = idx + 1;
  if (next == TBL_SLOTS) {
    next = 0;
  }
  generate Event.delay(scan_timeouts(next), SCAN_DELAY_NS);
}
"""

APP = Application(
    key="SFW",
    name="Stateful Firewall",
    description="Blocks connections not initiated by trusted hosts; control "
    "events update a cuckoo hash table.",
    control_role="Control events update a Cuckoo hash table",
    source=SOURCE,
    paper_lucid_loc=189,
    paper_p4_loc=2267,
    paper_stages=10,
    invariants=("firewall-solicited-only",),
)


# ---------------------------------------------------------------------------
# Figure 17 driver
# ---------------------------------------------------------------------------
@dataclass
class InstallMeasurement:
    """Flow-installation latency for one flow."""

    flow_key: int
    first_packet_ns: int
    installed_ns: int

    @property
    def latency_ns(self) -> int:
        return self.installed_ns - self.first_packet_ns


@dataclass
class FirewallExperiment:
    """Replays a flow workload through the Lucid stateful firewall and
    measures flow-installation time (the Figure 17 metric)."""

    table_slots: int = 1024
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: execution engine name ("reference", "compiled", or "pisa"); the
    #: compiled-closure engine is several times faster than the reference
    #: interpreter and behaviourally identical
    engine: str = "compiled"

    def _flow_key(self, src: int, dst: int) -> int:
        return lucid_hash(32, [src, dst, 10398247])

    def run_data_plane(self, workload: FlowWorkload) -> List[InstallMeasurement]:
        """Integrated control: install happens via data-plane events."""
        checked = check_program(
            SOURCE, name="SFW", symbolic_bindings={"TBL_SLOTS": self.table_slots}
        )
        network, switch = single_switch_network(
            checked, config=self.scheduler, engine=self.engine
        )
        first_packet: Dict[int, int] = {}
        installed: Dict[int, int] = {}
        keys1 = switch.array("keys1")
        keys2 = switch.array("keys2")
        stash = switch.array("stash")

        def _is_installed(key: int) -> bool:
            h1 = lucid_hash(10, [key, 10398247])
            h2 = lucid_hash(10, [key, 1295981879])
            return (
                keys1.cells[h1 % keys1.size] == key
                or keys2.cells[h2 % keys2.size] == key
                or stash.cells[0] == key
            )

        def on_handle(entry) -> None:
            # an install completes at the end of whichever pass wrote the key:
            # the first packet's own pass (0 ns) or a later cuckoo recirculation
            if entry.event.name == "pkt_out":
                key = self._flow_key(entry.event.args[0], entry.event.args[1])
            elif entry.event.name == "install":
                key = entry.event.args[0]
            else:
                return
            if key not in installed and _is_installed(key):
                installed[key] = entry.time_ns

        network.on_handle = on_handle
        for flow in workload:
            if not flow.outbound:
                continue
            key = self._flow_key(flow.src, flow.dst)
            first_packet.setdefault(key, flow.start_ns)
            for t in flow.packet_times():
                network.inject(0, EventInstance("pkt_out", (flow.src, flow.dst)), at_ns=t)
        network.run()
        measurements = []
        for key, first_ns in first_packet.items():
            done_ns = installed.get(key)
            if done_ns is None:
                # installed during the first packet's own pipeline pass
                done_ns = first_ns
            measurements.append(
                InstallMeasurement(flow_key=key, first_packet_ns=first_ns, installed_ns=max(done_ns, first_ns))
            )
        return measurements

    def run_remote_control(
        self, workload: FlowWorkload, config: Optional[ControlPlaneConfig] = None
    ) -> List[InstallMeasurement]:
        """Baseline: every new flow is installed by the switch-CPU controller."""
        controller = RemoteController(config=config)
        measurements = []
        seen: Dict[int, int] = {}
        for flow in sorted((f for f in workload if f.outbound), key=lambda f: f.start_ns):
            key = self._flow_key(flow.src, flow.dst)
            if key in seen:
                continue
            seen[key] = flow.start_ns
            record = controller.install_flow(key, flow.start_ns)
            measurements.append(
                InstallMeasurement(
                    flow_key=key,
                    first_packet_ns=flow.start_ns,
                    installed_ns=record.completed_at_ns,
                )
            )
        return measurements

    @staticmethod
    def latency_cdf(measurements: List[InstallMeasurement]) -> List[Tuple[int, float]]:
        """(latency_ns, cumulative probability) points for a CDF plot."""
        latencies = sorted(m.latency_ns for m in measurements)
        n = len(latencies)
        return [(lat, (i + 1) / n) for i, lat in enumerate(latencies)]
