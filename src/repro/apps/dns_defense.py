"""The closed-loop DNS reflection defense (DNS).

Queries from internal clients mark a Bloom filter of solicited (client,
server) pairs; responses that do not match the filter are counted per client
in a count-min sketch; clients whose unsolicited-response count crosses a
threshold are blocked.  Control events age the Bloom filter and the sketch so
the defense adapts over time — all in the data plane.
"""

from __future__ import annotations

from repro.apps.base import Application

SOURCE = r"""
// Closed-loop DNS reflection defense with sketches and Bloom filters.
symbolic size FILTER_BITS = 2048;
symbolic size SKETCH_COLS = 1024;
const int BLOCK_THRESHOLD = 100;
const int AGE_DELAY_NS = 1000000;
const int SEED_A = 7;
const int SEED_B = 131;

global bloom0 = new Array<<32>>(FILTER_BITS);
global bloom1 = new Array<<32>>(FILTER_BITS);
global cms0 = new Array<<32>>(SKETCH_COLS);
global cms1 = new Array<<32>>(SKETCH_COLS);
global blocked = new Array<<32>>(SKETCH_COLS);

memop mark(int stored, int unused) { return 1; }
memop clear(int stored, int unused) { return 0; }
memop plus(int stored, int x) { return stored + x; }
memop keep(int stored, int unused) { return stored; }
memop overwrite(int stored, int newval) { return newval; }

event dns_query(int client, int server);
event dns_response(int client, int server);
event block_client(int client);
event age_bloom(int idx);
event age_sketch(int idx);

fun int pair_hash_a(int client, int server) {
  return hash<<11>>(client, server, SEED_A);
}
fun int pair_hash_b(int client, int server) {
  return hash<<11>>(client, server, SEED_B);
}

// A query from an internal client marks the pair as solicited.
handle dns_query(int client, int server) {
  int ha = pair_hash_a(client, server);
  int hb = pair_hash_b(client, server);
  Array.set(bloom0, ha, mark, 0);
  Array.set(bloom1, hb, mark, 0);
  forward(2);
}

// A response is unsolicited when the pair is not in the Bloom filter.
handle dns_response(int client, int server) {
  int ha = pair_hash_a(client, server);
  int hb = pair_hash_b(client, server);
  int hit0 = Array.get(bloom0, ha);
  int hit1 = Array.get(bloom1, hb);
  int ca = hash<<10>>(client, SEED_A);
  int cb = hash<<10>>(client, SEED_B);
  if (hit0 == 1 && hit1 == 1) {
    // solicited: let it through
    forward(1);
  } else {
    // unsolicited: count it against the client in the sketch
    int cnt0 = Array.update(cms0, ca, plus, 1, plus, 1);
    int cnt1 = Array.update(cms1, cb, plus, 1, plus, 1);
    int minimum = cnt0;
    if (cnt1 < cnt0) {
      minimum = cnt1;
    }
    if (minimum > BLOCK_THRESHOLD) {
      generate block_client(client);
    }
    int isblocked = Array.get(blocked, ca);
    if (isblocked == 1) {
      drop();
    } else {
      forward(1);
    }
  }
}

handle block_client(int client) {
  int ca = hash<<10>>(client, SEED_A);
  Array.set(blocked, ca, overwrite, 1);
}

// Control events: age the Bloom filter and the sketch, one cell per pass.
handle age_bloom(int idx) {
  Array.set(bloom0, idx, clear, 0);
  Array.set(bloom1, idx, clear, 0);
  int next = idx + 1;
  if (next == FILTER_BITS) {
    next = 0;
  }
  generate Event.delay(age_bloom(next), AGE_DELAY_NS);
}

handle age_sketch(int idx) {
  Array.set(cms0, idx, clear, 0);
  Array.set(cms1, idx, clear, 0);
  Array.set(blocked, idx, clear, 0);
  int next = idx + 1;
  if (next == SKETCH_COLS) {
    next = 0;
  }
  generate Event.delay(age_sketch(next), AGE_DELAY_NS);
}
"""

APP = Application(
    key="DNS",
    name="Closed-loop DNS Defense",
    description="Detects and blocks DNS reflection attacks with sketches and "
    "Bloom filters; control events age the data structures.",
    control_role="Control events age data structures",
    source=SOURCE,
    paper_lucid_loc=215,
    paper_p4_loc=1874,
    paper_stages=10,
    invariants=("dns-victim-blocked",),
)
