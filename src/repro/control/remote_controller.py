"""A latency model of remote (switch-CPU) control, the Figure 17 baseline.

The paper compares Lucid's data-plane flow installation against Mantis [34], a
driver-level framework running on the switch's management CPU.  The measured
cost of installing one entry into a P4 match-action table from the CPU is
12 µs at minimum and 17.5 µs on average; that already excludes the time needed
to *detect* the new flow (e.g. by polling a register ring buffer over PCIe)
and any queueing when several flows arrive close together — both of which this
model can optionally add.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import random


@dataclass
class ControlPlaneConfig:
    """Latency parameters of the remote controller."""

    #: minimum driver-level table-install latency (ns)
    install_min_ns: int = 12_000
    #: average driver-level table-install latency (ns)
    install_mean_ns: int = 17_500
    #: polling interval for new-flow detection (ns); 0 = detection is free
    poll_interval_ns: int = 0
    #: PCIe one-way latency for the notification path (ns); 0 = ignored
    pcie_latency_ns: int = 0
    #: if True, installs are serialised through a single control thread and
    #: may queue behind each other; the paper's measured baseline excludes
    #: this queueing, so it is off by default
    serialize_installs: bool = False


@dataclass
class InstallSummary:
    """Aggregate statistics of a streamed batch of flow installs."""

    count: int = 0
    total_latency_ns: int = 0
    min_latency_ns: int = 0
    max_latency_ns: int = 0

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.count if self.count else 0.0


@dataclass
class InstallRecord:
    """One flow-install request processed by the controller."""

    flow_id: int
    requested_at_ns: int
    completed_at_ns: int

    @property
    def latency_ns(self) -> int:
        return self.completed_at_ns - self.requested_at_ns


class RemoteController:
    """Simulates flow-entry installation through the switch CPU."""

    def __init__(self, config: Optional[ControlPlaneConfig] = None, seed: int = 0xC0FFEE):
        self.config = config or ControlPlaneConfig()
        self.records: List[InstallRecord] = []
        self._rng = random.Random(seed)
        self._busy_until_ns = 0

    def _sample_install_ns(self) -> int:
        """Sample one driver-level install latency.

        The distribution is exponential above the minimum, with the mean
        matching the measured 17.5 µs average — a conventional model for
        software/driver service times that preserves both reported statistics.
        """
        cfg = self.config
        excess_mean = max(1, cfg.install_mean_ns - cfg.install_min_ns)
        return int(cfg.install_min_ns + self._rng.expovariate(1.0 / excess_mean))

    def _completion_time_ns(self, requested_at_ns: int) -> int:
        """When one install requested at ``requested_at_ns`` completes —
        detection (polling tick), PCIe notification, optional serialisation
        behind earlier installs, then the sampled driver-level install."""
        cfg = self.config
        start = requested_at_ns
        if cfg.poll_interval_ns > 0:
            # the controller only notices the flow at the next polling tick
            next_poll = -(-requested_at_ns // cfg.poll_interval_ns) * cfg.poll_interval_ns
            start = max(start, next_poll)
        start += cfg.pcie_latency_ns
        if cfg.serialize_installs:
            start = max(start, self._busy_until_ns)
        completed = start + self._sample_install_ns()
        if cfg.serialize_installs:
            self._busy_until_ns = completed
        return completed

    def install_flow(self, flow_id: int, requested_at_ns: int) -> InstallRecord:
        """Install one flow entry; returns the completed record."""
        record = InstallRecord(
            flow_id=flow_id,
            requested_at_ns=requested_at_ns,
            completed_at_ns=self._completion_time_ns(requested_at_ns),
        )
        self.records.append(record)
        return record

    def install_stream(self, requests: Iterable[Tuple[int, int]]) -> InstallSummary:
        """Install a lazily generated stream of ``(flow_id, requested_at_ns)``
        requests and return aggregate latency statistics.

        The scenario engine's firewall install-latency comparison drives
        arbitrarily long flow streams through the controller model; unlike
        :meth:`install_flow`, nothing is appended to :attr:`records`, so the
        memory footprint is independent of the stream length.
        """
        summary = InstallSummary()
        for _flow_id, requested_at_ns in requests:
            latency = self._completion_time_ns(requested_at_ns) - requested_at_ns
            if summary.count == 0 or latency < summary.min_latency_ns:
                summary.min_latency_ns = latency
            if latency > summary.max_latency_ns:
                summary.max_latency_ns = latency
            summary.count += 1
            summary.total_latency_ns += latency
        return summary

    # -- statistics --------------------------------------------------------------
    def latencies_ns(self) -> List[int]:
        return [r.latency_ns for r in self.records]

    def mean_latency_ns(self) -> float:
        lat = self.latencies_ns()
        return sum(lat) / len(lat) if lat else 0.0

    def min_latency_ns(self) -> int:
        lat = self.latencies_ns()
        return min(lat) if lat else 0

    def reset(self) -> None:
        self.records.clear()
        self._busy_until_ns = 0
