"""The remote-control baseline (Mantis-style) used by the stateful-firewall
case study (Section 7.4)."""

from repro.control.remote_controller import (
    ControlPlaneConfig,
    InstallRecord,
    InstallSummary,
    RemoteController,
)

__all__ = ["RemoteController", "ControlPlaneConfig", "InstallRecord", "InstallSummary"]
