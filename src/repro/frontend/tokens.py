"""Token definitions for the Lucid lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.frontend.source import Span


class TokenKind(enum.Enum):
    """All token categories produced by :mod:`repro.frontend.lexer`."""

    # literals / identifiers
    INT = "int literal"
    IDENT = "identifier"
    STRING = "string literal"

    # keywords
    KW_CONST = "const"
    KW_GLOBAL = "global"
    KW_EVENT = "event"
    KW_HANDLE = "handle"
    KW_FUN = "fun"
    KW_MEMOP = "memop"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_RETURN = "return"
    KW_GENERATE = "generate"
    KW_MGENERATE = "mgenerate"
    KW_NEW = "new"
    KW_INT = "int type"
    KW_BOOL = "bool type"
    KW_VOID = "void"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_GROUP = "group"
    KW_AUTO = "auto"
    KW_EXTERN = "extern"
    KW_INCLUDE = "include"
    KW_MATCH = "match"
    KW_WITH = "with"
    KW_SIZE = "size"
    KW_SYMBOLIC = "symbolic"

    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ASSIGN = "="
    LSHIFT_SIZE = "<<"  # used both for shift and the Array<<n>> size syntax
    RSHIFT_SIZE = ">>"

    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"
    HASH = "#"

    EOF = "end of input"


#: Reserved words and the token kind they map to.
KEYWORDS = {
    "const": TokenKind.KW_CONST,
    "global": TokenKind.KW_GLOBAL,
    "event": TokenKind.KW_EVENT,
    "handle": TokenKind.KW_HANDLE,
    "fun": TokenKind.KW_FUN,
    "memop": TokenKind.KW_MEMOP,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "return": TokenKind.KW_RETURN,
    "generate": TokenKind.KW_GENERATE,
    "mgenerate": TokenKind.KW_MGENERATE,
    "new": TokenKind.KW_NEW,
    "int": TokenKind.KW_INT,
    "bool": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "group": TokenKind.KW_GROUP,
    "auto": TokenKind.KW_AUTO,
    "extern": TokenKind.KW_EXTERN,
    "include": TokenKind.KW_INCLUDE,
    "match": TokenKind.KW_MATCH,
    "with": TokenKind.KW_WITH,
    "size": TokenKind.KW_SIZE,
    "symbolic": TokenKind.KW_SYMBOLIC,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    span: Span
    value: Optional[int] = None  # populated for integer literals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"
