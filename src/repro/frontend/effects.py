"""The effect half of Lucid's ordered type-and-effect system (Section 5).

Effects are *stages*: non-negative integers that track the most recently
accessed global.  Each global's abstract stage is its declaration index.
Typechecking threads a current stage through every handler; an access to a
global ``g`` with stage ``s`` is legal only if ``current <= s`` and leaves the
current stage at ``s + 1``.

Functions are handled with *polymorphic* effect summaries (Appendix A,
"Extensions in Practice"): a function is summarised by the ordered tree of
global accesses it performs, where each access is either a concrete global or
one of the function's array-typed parameters, and control-flow branches are
kept as alternatives.  At a call site the parameter accesses are substituted
with the stages of the actual arguments and the whole tree is replayed against
the caller's current stage.  This lets a single function definition be reused
at different stages, exactly as the paper's polymorphic inference allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import OrderError
from repro.frontend.source import Span


@dataclass(frozen=True)
class ConcreteAccess:
    """An access to a specific global (known stage) at a source location."""

    stage: int
    global_name: str
    span: Span = field(compare=False)


@dataclass(frozen=True)
class ParamAccess:
    """An access through the ``index``-th parameter of the enclosing function
    (an array-typed formal whose stage is bound at the call site)."""

    index: int
    param_name: str
    span: Span = field(compare=False)


@dataclass
class BranchAccess:
    """Alternative access sequences from the arms of an ``if``/``match``.

    Only one arm executes for a given packet, but all arms are laid out in the
    pipeline, so replaying a branch joins to the *maximum* ending stage of the
    arms while each arm is checked independently from the same starting stage.
    """

    alternatives: List["EffectSummary"] = field(default_factory=list)


Access = Union[ConcreteAccess, ParamAccess, BranchAccess]


@dataclass
class EffectSummary:
    """An ordered tree of the global accesses performed by a body."""

    items: List[Access] = field(default_factory=list)

    def append(self, access: Access) -> None:
        self.items.append(access)

    def extend(self, other: "EffectSummary") -> None:
        self.items.extend(other.items)

    def substitute(self, bindings: Dict[int, ConcreteAccess]) -> "EffectSummary":
        """Replace parameter accesses with the accesses bound at a call site.

        ``bindings`` maps parameter index -> the caller-side access describing
        the actual argument.  Parameter accesses keep their own span so errors
        still point inside the callee when that is where the problem is.
        """
        result = EffectSummary()
        for access in self.items:
            if isinstance(access, ParamAccess):
                bound = bindings.get(access.index)
                if bound is None:
                    result.append(access)
                else:
                    result.append(ConcreteAccess(bound.stage, bound.global_name, access.span))
            elif isinstance(access, BranchAccess):
                result.append(
                    BranchAccess([alt.substitute(bindings) for alt in access.alternatives])
                )
            else:
                result.append(access)
        return result

    def concrete_stages(self) -> List[int]:
        stages: List[int] = []
        for access in self.items:
            if isinstance(access, ConcreteAccess):
                stages.append(access.stage)
            elif isinstance(access, BranchAccess):
                for alt in access.alternatives:
                    stages.extend(alt.concrete_stages())
        return stages

    def globals_used(self) -> List[str]:
        names: List[str] = []
        for access in self.items:
            if isinstance(access, ConcreteAccess):
                names.append(access.global_name)
            elif isinstance(access, BranchAccess):
                for alt in access.alternatives:
                    names.extend(alt.globals_used())
        return names

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


@dataclass
class StageTracker:
    """Threads the "current stage" through a handler body and reports ordering
    violations with source-level messages naming both conflicting accesses."""

    global_order: Sequence[str]
    current: int = 0
    last_access: Optional[ConcreteAccess] = None
    trace: List[ConcreteAccess] = field(default_factory=list)

    def copy(self) -> "StageTracker":
        clone = StageTracker(self.global_order, self.current, self.last_access)
        clone.trace = list(self.trace)
        return clone

    def access(self, access: ConcreteAccess) -> None:
        """Record an access; raise :class:`OrderError` if it is out of order."""
        if access.stage < self.current:
            blocker = self.last_access
            if blocker is not None and blocker.global_name != access.global_name:
                message = (
                    f"global '{access.global_name}' is accessed after "
                    f"'{blocker.global_name}', but '{access.global_name}' is declared "
                    f"earlier (declaration order: "
                    f"{self._order_hint(access.global_name, blocker.global_name)}); "
                    "handlers must access globals in declaration order"
                )
            elif blocker is not None:
                message = (
                    f"global '{access.global_name}' is accessed twice in one handler "
                    "pass; a PISA pipeline can only visit each register array once "
                    "per packet"
                )
            else:
                message = (
                    f"global '{access.global_name}' cannot be accessed at stage "
                    f"{self.current}"
                )
            err = OrderError(message, access.span)
            if blocker is not None:
                err.message += f"\n  note: the earlier access was here\n{blocker.span.render()}"
            raise err
        self.current = access.stage + 1
        self.last_access = access
        self.trace.append(access)

    def replay(self, summary: EffectSummary) -> None:
        """Replay a summary (branch-aware) against the current stage."""
        for access in summary:
            if isinstance(access, ConcreteAccess):
                self.access(access)
            elif isinstance(access, BranchAccess):
                branches = []
                for alt in access.alternatives:
                    branch = self.copy()
                    branch.replay(alt)
                    branches.append(branch)
                self.merge_branches(branches)
            # ParamAccess: unbound parameter constrains nothing concrete here.

    def merge_branches(self, branches: Sequence["StageTracker"]) -> None:
        """Join control-flow branches: the resulting stage is the maximum of
        the branch stages (all branches are laid out in the pipeline)."""
        best = self.current
        best_last = self.last_access
        for branch in branches:
            for acc in branch.trace:
                if acc not in self.trace:
                    self.trace.append(acc)
            if branch.current > best:
                best = branch.current
                best_last = branch.last_access
        self.current = best
        self.last_access = best_last

    def _order_hint(self, first: str, second: str) -> str:
        order = list(self.global_order)

        def pos(name: str) -> int:
            return order.index(name) if name in order else -1

        return f"'{first}' is #{pos(first)}, '{second}' is #{pos(second)}"


def validate_summary_order(summary: EffectSummary, global_order: Sequence[str]) -> None:
    """Check that the concrete accesses inside a single summary are orderable
    on their own (used when a function is defined, before any call site)."""
    tracker = StageTracker(global_order)
    tracker.replay(summary)
