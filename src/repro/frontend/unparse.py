"""Render an AST back into parseable Lucid source.

The fuzzer builds programs as ASTs (cheap to mutate and shrink) but the
engines' entry points, the regression corpus, and human triage all want
concrete syntax — so this module is the inverse of
:mod:`repro.frontend.parser`.  The contract is *round-tripping*, not
formatting fidelity: ``parse_program(unparse(program))`` must yield a program
with the same semantics (operands are parenthesised conservatively rather
than by reconstructing precedence).

One syntactic trap is the ``<<w>>`` size-bracket ambiguity: ``a << 2 >> b``
would lex as a size bracket if it ever appeared unparenthesised after a
callee name.  Because every binary expression is printed inside parentheses,
a shift's right operand is always followed by ``)`` and the ambiguity cannot
arise.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------
def unparse_type(ty: ast.TypeExpr) -> str:
    if isinstance(ty, ast.TInt):
        return "int" if ty.width == 32 else f"int<<{ty.width}>>"
    if isinstance(ty, ast.TBool):
        return "bool"
    if isinstance(ty, ast.TVoid):
        return "void"
    if isinstance(ty, ast.TEvent):
        return "event"
    if isinstance(ty, ast.TGroup):
        return "group"
    if isinstance(ty, ast.TArray):
        return f"Array<<{ty.width}>>"
    if isinstance(ty, ast.TNamed):
        return ty.name
    raise ValueError(f"cannot unparse type {ty!r}")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
def unparse_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.EInt):
        if expr.value < 0:
            # negative literals do not exist in the surface syntax
            return f"(0 - {-expr.value})"
        return str(expr.value)
    if isinstance(expr, ast.EBool):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.EVar):
        return expr.name
    if isinstance(expr, ast.EUnary):
        return f"{expr.op.value}({unparse_expr(expr.operand)})"
    if isinstance(expr, ast.EBinary):
        return f"({unparse_expr(expr.left)} {expr.op.value} {unparse_expr(expr.right)})"
    if isinstance(expr, ast.ECall):
        size = f"<<{expr.size_args[0]}>>" if expr.size_args else ""
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.func}{size}({args})"
    if isinstance(expr, ast.EEvent):
        # event constructors are plain calls in the surface syntax; the type
        # checker rewrites them back into EEvent nodes
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.EGroup):
        return "{" + ", ".join(unparse_expr(m) for m in expr.members) + "}"
    raise ValueError(f"cannot unparse expression {expr!r}")


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
def _unparse_stmt(stmt: ast.Stmt, indent: int, out: List[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, ast.SNoop):
        return
    if isinstance(stmt, ast.SSeq):
        # the surface syntax has no bare block statement; splice the body
        # (the language has no block scoping, so this is faithful)
        for inner in stmt.body:
            _unparse_stmt(inner, indent, out)
        return
    if isinstance(stmt, ast.SLocal):
        out.append(f"{pad}{unparse_type(stmt.ty)} {stmt.name} = {unparse_expr(stmt.init)};")
        return
    if isinstance(stmt, ast.SAssign):
        out.append(f"{pad}{stmt.name} = {unparse_expr(stmt.value)};")
        return
    if isinstance(stmt, ast.SIf):
        out.append(f"{pad}if ({unparse_expr(stmt.cond)}) {{")
        _unparse_block(stmt.then_body, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}}} else {{")
            _unparse_block(stmt.else_body, indent + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, ast.SMatch):
        scrutinees = ", ".join(unparse_expr(e) for e in stmt.scrutinees)
        out.append(f"{pad}match ({scrutinees}) with")
        for pattern, body in stmt.branches:
            pat = ", ".join("_" if v is None else str(v) for v in pattern)
            out.append(f"{pad}| {pat} -> {{")
            _unparse_block(body, indent + 1, out)
            out.append(f"{pad}}}")
        return
    if isinstance(stmt, ast.SReturn):
        if stmt.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {unparse_expr(stmt.value)};")
        return
    if isinstance(stmt, ast.SGenerate):
        keyword = "mgenerate" if stmt.multicast else "generate"
        out.append(f"{pad}{keyword} {unparse_expr(stmt.event)};")
        return
    if isinstance(stmt, ast.SExpr):
        out.append(f"{pad}{unparse_expr(stmt.expr)};")
        return
    raise ValueError(f"cannot unparse statement {stmt!r}")


def _unparse_block(stmts: List[ast.Stmt], indent: int, out: List[str]) -> None:
    for stmt in stmts:
        _unparse_stmt(stmt, indent, out)


def unparse_stmts(stmts: List[ast.Stmt], indent: int = 0) -> str:
    out: List[str] = []
    _unparse_block(stmts, indent, out)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# declarations / programs
# ---------------------------------------------------------------------------
def _unparse_params(params: List[ast.Param]) -> str:
    return ", ".join(f"{unparse_type(p.ty)} {p.name}" for p in params)


def unparse_decl(decl: ast.Decl) -> str:
    if isinstance(decl, ast.DConst):
        if isinstance(decl.ty, ast.TGroup):
            return f"const group {decl.name} = {unparse_expr(decl.value)};"
        return f"const {unparse_type(decl.ty)} {decl.name} = {unparse_expr(decl.value)};"
    if isinstance(decl, ast.DSymbolic):
        return f"symbolic size {decl.name} = {decl.default};"
    if isinstance(decl, ast.DGlobal):
        ctor = "Counter" if decl.kind == "counter" else "Array"
        return (
            f"global {decl.name} = new {ctor}<<{decl.cell_width}>>"
            f"({unparse_expr(decl.size_expr)});"
        )
    if isinstance(decl, ast.DExtern):
        return f"extern fun {unparse_type(decl.ret)} {decl.name}({_unparse_params(decl.params)});"
    if isinstance(decl, ast.DEvent):
        return f"event {decl.name}({_unparse_params(decl.params)});"
    if isinstance(decl, ast.DHandler):
        body = unparse_stmts(decl.body, indent=1)
        inner = f"\n{body}\n" if body else ""
        return f"handle {decl.name}({_unparse_params(decl.params)}) {{{inner}}}"
    if isinstance(decl, ast.DFun):
        body = unparse_stmts(decl.body, indent=1)
        inner = f"\n{body}\n" if body else ""
        return (
            f"fun {unparse_type(decl.ret)} {decl.name}"
            f"({_unparse_params(decl.params)}) {{{inner}}}"
        )
    if isinstance(decl, ast.DMemop):
        body = unparse_stmts(decl.body, indent=1)
        inner = f"\n{body}\n" if body else ""
        return f"memop {decl.name}({_unparse_params(decl.params)}) {{{inner}}}"
    raise ValueError(f"cannot unparse declaration {decl!r}")


def unparse(program: ast.Program) -> str:
    """Render a whole program; the result parses back to an equivalent AST."""
    return "\n".join(unparse_decl(d) for d in program.decls) + "\n"
