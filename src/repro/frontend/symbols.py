"""Symbol tables summarising the top-level declarations of a program.

The :class:`ProgramInfo` structure is shared by the type checker, the
interpreter, and the compiler backend.  It records:

* every declared event and its payload;
* every handler and whether a matching event exists;
* every function and memop;
* every global (persistent array), in declaration order — the order *is* the
  abstract stage used by the type-and-effect system (Section 5);
* resolved constants and multicast groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TypeError_
from repro.frontend import ast
from repro.frontend.const_eval import ConstEnv, build_const_env, resolve_global_sizes


#: Built-in module functions available in every program: name -> arity options.
BUILTIN_FUNCTIONS: Dict[str, List[int]] = {
    # Array module (Section 4.1).  get/set may take a memop and an extra arg.
    "Array.get": [2, 3, 4],
    "Array.set": [3, 4],
    "Array.update": [5, 6],
    "Array.getm": [4],
    "Array.setm": [4],
    # Event combinators (Section 3.1).
    "Event.delay": [2],
    "Event.locate": [2],
    "Event.sslocate": [2],
    # Misc built-ins used by the applications.
    "hash": [1, 2, 3, 4, 5, 6],
    "Sys.time": [0],
    "Sys.self": [0],
    "Sys.random": [0, 1],
    "drop": [0],
    "forward": [1],
    "flood": [1],
    "printf": [1, 2, 3, 4, 5],
}

#: Array-module methods that access persistent state (used by the effect
#: system and the backend to identify stateful operations).
ARRAY_METHODS = frozenset(
    {"Array.get", "Array.set", "Array.update", "Array.getm", "Array.setm"}
)

#: Event combinators (pure; operate on event values).
EVENT_COMBINATORS = frozenset({"Event.delay", "Event.locate", "Event.sslocate"})


@dataclass
class GlobalInfo:
    """A persistent array and its position in the declaration order."""

    name: str
    stage: int  # declaration index == abstract pipeline stage
    cell_width: int
    size: int
    kind: str
    decl: ast.DGlobal


@dataclass
class ProgramInfo:
    """Aggregated symbol information for one program."""

    program: ast.Program
    consts: ConstEnv
    events: Dict[str, ast.DEvent] = field(default_factory=dict)
    handlers: Dict[str, ast.DHandler] = field(default_factory=dict)
    functions: Dict[str, ast.DFun] = field(default_factory=dict)
    memops: Dict[str, ast.DMemop] = field(default_factory=dict)
    externs: Dict[str, ast.DExtern] = field(default_factory=dict)
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)
    global_order: List[str] = field(default_factory=list)

    # -- queries ----------------------------------------------------------
    def is_event(self, name: str) -> bool:
        return name in self.events

    def is_memop(self, name: str) -> bool:
        return name in self.memops

    def is_function(self, name: str) -> bool:
        return name in self.functions

    def is_global(self, name: str) -> bool:
        return name in self.globals

    def is_builtin(self, name: str) -> bool:
        return name in BUILTIN_FUNCTIONS

    def stage_of(self, global_name: str) -> int:
        return self.globals[global_name].stage

    def num_globals(self) -> int:
        return len(self.global_order)


def collect_program_info(
    program: ast.Program,
    symbolic_bindings: Optional[Dict[str, int]] = None,
    group_bindings: Optional[Dict[str, List[int]]] = None,
) -> ProgramInfo:
    """Build a :class:`ProgramInfo`, checking for duplicate declarations and
    handler/event consistency."""
    consts = build_const_env(program, symbolic_bindings, group_bindings)
    resolve_global_sizes(program, consts)
    info = ProgramInfo(program=program, consts=consts)

    for decl in program.decls:
        if isinstance(decl, ast.DEvent):
            if decl.name in info.events:
                raise TypeError_(f"event '{decl.name}' is declared twice", decl.span)
            info.events[decl.name] = decl
        elif isinstance(decl, ast.DHandler):
            if decl.name in info.handlers:
                raise TypeError_(f"handler '{decl.name}' is declared twice", decl.span)
            info.handlers[decl.name] = decl
        elif isinstance(decl, ast.DFun):
            if decl.name in info.functions:
                raise TypeError_(f"function '{decl.name}' is declared twice", decl.span)
            info.functions[decl.name] = decl
        elif isinstance(decl, ast.DMemop):
            if decl.name in info.memops:
                raise TypeError_(f"memop '{decl.name}' is declared twice", decl.span)
            info.memops[decl.name] = decl
        elif isinstance(decl, ast.DExtern):
            info.externs[decl.name] = decl
        elif isinstance(decl, ast.DGlobal):
            if decl.name in info.globals:
                raise TypeError_(f"global '{decl.name}' is declared twice", decl.span)
            stage = len(info.global_order)
            info.globals[decl.name] = GlobalInfo(
                name=decl.name,
                stage=stage,
                cell_width=decl.cell_width,
                size=decl.size or 0,
                kind=decl.kind,
                decl=decl,
            )
            info.global_order.append(decl.name)

    _check_handler_event_consistency(info)
    return info


def _check_handler_event_consistency(info: ProgramInfo) -> None:
    """Every handler must correspond to a declared event with the same
    parameter list (names may differ; arity and base types must match)."""
    for name, handler in info.handlers.items():
        event = info.events.get(name)
        if event is None:
            raise TypeError_(
                f"handler '{name}' has no matching event declaration", handler.span
            )
        if len(event.params) != len(handler.params):
            raise TypeError_(
                f"handler '{name}' takes {len(handler.params)} parameters but event "
                f"'{name}' declares {len(event.params)}",
                handler.span,
            )
        for ep, hp in zip(event.params, handler.params):
            if type(ep.ty) is not type(hp.ty):
                raise TypeError_(
                    f"handler '{name}' parameter '{hp.name}' has a different type than "
                    f"the event's parameter '{ep.name}'",
                    hp.span,
                )
