"""A hand-written lexer for Lucid source text.

The concrete syntax follows the snippets in the paper: C-like statements,
``//`` and ``/* */`` comments, decimal / hexadecimal / binary integer
literals, time-suffixed literals (``10ms``, ``100us``, ``1s``) which are
normalised to nanoseconds, and the ``<<`` ``>>`` size brackets used by
``Array<<32>>`` and ``hash<<16>>``.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.frontend.source import SourceFile, Span
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

#: Multipliers for time-suffixed integer literals, normalised to nanoseconds.
TIME_SUFFIXES = {
    "ns": 1,
    "us": 1_000,
    "ms": 1_000_000,
    "s": 1_000_000_000,
}

_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "~": TokenKind.TILDE,
    "^": TokenKind.CARET,
    "#": TokenKind.HASH,
}


class Lexer:
    """Converts Lucid source text into a list of :class:`Token`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.tokens: List[Token] = []

    # -- helpers ---------------------------------------------------------
    def _span(self, start: int) -> Span:
        return Span(self.source, start, self.pos)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _error(self, message: str, start: int) -> LexError:
        return LexError(message, self._span(start))

    # -- main loop -------------------------------------------------------
    def tokenize(self) -> List[Token]:
        """Lex the whole input, returning tokens terminated by ``EOF``."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif ch.isdigit():
                self._lex_number()
            elif ch.isalpha() or ch == "_":
                self._lex_ident()
            elif ch == '"':
                self._lex_string()
            else:
                self._lex_operator()
        eof_span = Span(self.source, len(self.text), len(self.text))
        self.tokens.append(Token(TokenKind.EOF, "", eof_span))
        return self.tokens

    # -- token scanners --------------------------------------------------
    def _skip_line_comment(self) -> None:
        while self.pos < len(self.text) and self._peek() != "\n":
            self.pos += 1

    def _skip_block_comment(self) -> None:
        start = self.pos
        self.pos += 2
        while self.pos < len(self.text):
            if self._peek() == "*" and self._peek(1) == "/":
                self.pos += 2
                return
            self.pos += 1
        raise self._error("unterminated block comment", start)

    def _lex_number(self) -> None:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self.pos += 2
            while self._peek().isalnum():
                self.pos += 1
            text = self.text[start : self.pos]
            try:
                value = int(text, 16)
            except ValueError:
                raise self._error(f"invalid hexadecimal literal {text!r}", start) from None
            self.tokens.append(Token(TokenKind.INT, text, self._span(start), value))
            return
        if self._peek() == "0" and self._peek(1) in "bB":
            self.pos += 2
            while self._peek().isalnum():
                self.pos += 1
            text = self.text[start : self.pos]
            try:
                value = int(text, 2)
            except ValueError:
                raise self._error(f"invalid binary literal {text!r}", start) from None
            self.tokens.append(Token(TokenKind.INT, text, self._span(start), value))
            return
        while self._peek().isdigit():
            self.pos += 1
        digits_end = self.pos
        # time suffix? (ns, us, ms, s)
        suffix_start = self.pos
        while self._peek().isalpha():
            self.pos += 1
        suffix = self.text[suffix_start : self.pos]
        text = self.text[start : self.pos]
        value = int(self.text[start:digits_end])
        if suffix:
            if suffix in TIME_SUFFIXES:
                value *= TIME_SUFFIXES[suffix]
            elif suffix == "w":  # width suffix, e.g. 32w in P4-ish code; ignore
                pass
            else:
                raise self._error(f"unknown numeric suffix {suffix!r}", start)
        self.tokens.append(Token(TokenKind.INT, text, self._span(start), value))

    def _lex_ident(self) -> None:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self.pos += 1
        text = self.text[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        self.tokens.append(Token(kind, text, self._span(start)))

    def _lex_string(self) -> None:
        start = self.pos
        self.pos += 1
        while self.pos < len(self.text) and self._peek() != '"':
            if self._peek() == "\n":
                raise self._error("unterminated string literal", start)
            self.pos += 1
        if self.pos >= len(self.text):
            raise self._error("unterminated string literal", start)
        self.pos += 1
        text = self.text[start : self.pos]
        self.tokens.append(Token(TokenKind.STRING, text, self._span(start)))

    def _lex_operator(self) -> None:
        start = self.pos
        two = self.text[self.pos : self.pos + 2]
        two_char = {
            "==": TokenKind.EQ,
            "!=": TokenKind.NEQ,
            "<=": TokenKind.LE,
            ">=": TokenKind.GE,
            "&&": TokenKind.AND,
            "||": TokenKind.OR,
            "<<": TokenKind.LSHIFT_SIZE,
            ">>": TokenKind.RSHIFT_SIZE,
        }
        if two in two_char:
            self.pos += 2
            self.tokens.append(Token(two_char[two], two, self._span(start)))
            return
        ch = self._peek()
        if ch == "=":
            self.pos += 1
            self.tokens.append(Token(TokenKind.ASSIGN, "=", self._span(start)))
            return
        if ch == "<":
            self.pos += 1
            self.tokens.append(Token(TokenKind.LT, "<", self._span(start)))
            return
        if ch == ">":
            self.pos += 1
            self.tokens.append(Token(TokenKind.GT, ">", self._span(start)))
            return
        if ch == "!":
            self.pos += 1
            self.tokens.append(Token(TokenKind.BANG, "!", self._span(start)))
            return
        if ch == "&":
            self.pos += 1
            self.tokens.append(Token(TokenKind.AMP, "&", self._span(start)))
            return
        if ch == "|":
            self.pos += 1
            self.tokens.append(Token(TokenKind.PIPE, "|", self._span(start)))
            return
        if ch in _SINGLE_CHAR:
            self.pos += 1
            self.tokens.append(Token(_SINGLE_CHAR[ch], ch, self._span(start)))
            return
        self.pos += 1
        raise self._error(f"unexpected character {ch!r}", start)


def tokenize(text: str, name: str = "<string>") -> List[Token]:
    """Convenience wrapper: lex ``text`` and return its tokens."""
    return Lexer(SourceFile(name, text)).tokenize()
