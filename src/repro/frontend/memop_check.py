"""Syntactic validation of memops (Section 4.2, Appendix C).

A memop is a function that must compile to *one* stateful-ALU instruction.
The paper defines three syntactic constraints:

1. the body is either a single ``return`` statement, or an ``if`` statement
   with exactly one ``return`` in each branch;
2. each variable is used at most once per expression; and
3. only ALU-supported operators are used.

Two further rules fall out of the uniform-memop design discussed in
Appendix C (every memop must be usable in *any* Array method, including
``Array.update`` which packs two memops into one sALU instruction):

4. a memop takes exactly two parameters — the stored (memory) value first and
   one value of local state second; and
5. conditions must be *simple* comparisons (no ``&&`` / ``||`` compound
   conditions), because a compound condition is only legal in some Array
   methods.

Violations are reported as :class:`~repro.errors.MemopError` with the exact
span of the offending construct, reproducing the paper's "source-level error
messages point out exactly where any such mistakes occur".
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import MemopError
from repro.frontend import ast
from repro.frontend.ast import SALU_ARITH_OPS, SALU_CMP_OPS


def check_memop(memop: ast.DMemop) -> None:
    """Validate one memop declaration; raise :class:`MemopError` on failure."""
    _check_params(memop)
    param_names = {p.name for p in memop.params}
    body = [s for s in memop.body if not isinstance(s, ast.SNoop)]
    if len(body) == 1 and isinstance(body[0], ast.SReturn):
        _check_return(body[0], param_names)
        return
    if len(body) == 1 and isinstance(body[0], ast.SIf):
        _check_if_body(body[0], param_names)
        return
    span = memop.body[0].span if memop.body else memop.span
    raise MemopError(
        f"memop '{memop.name}' body must be a single return statement or an if "
        "statement with one return in each branch",
        span,
    )


def check_all_memops(program: ast.Program) -> None:
    """Validate every memop declared in ``program``."""
    for memop in program.memops():
        check_memop(memop)


# ---------------------------------------------------------------------------
# rule 4: exactly two parameters, stored value first
# ---------------------------------------------------------------------------
def _check_params(memop: ast.DMemop) -> None:
    if len(memop.params) != 2:
        raise MemopError(
            f"memop '{memop.name}' must take exactly two parameters (the stored "
            f"memory value and one local value), found {len(memop.params)}; "
            "reading more than one piece of local state cannot fit in a single "
            "stateful ALU when used with Array.update",
            memop.span,
        )
    for param in memop.params:
        if not isinstance(param.ty, ast.TInt):
            raise MemopError(
                f"memop parameter '{param.name}' must be an int (stateful ALUs "
                "operate on integer register cells)",
                param.span,
            )
    if memop.params[0].name == memop.params[1].name:
        raise MemopError(
            f"memop '{memop.name}' declares both parameters with the same name "
            f"'{memop.params[0].name}'; the stored value would be inaccessible",
            memop.params[1].span,
        )


# ---------------------------------------------------------------------------
# rule 1: body shape
# ---------------------------------------------------------------------------
def _check_if_body(stmt: ast.SIf, param_names: set) -> None:
    _check_condition(stmt.cond, param_names)
    for branch_name, branch in (("then", stmt.then_body), ("else", stmt.else_body)):
        stmts = [s for s in branch if not isinstance(s, ast.SNoop)]
        if len(stmts) != 1 or not isinstance(stmts[0], ast.SReturn):
            span = stmts[0].span if stmts else stmt.span
            raise MemopError(
                f"the {branch_name}-branch of a memop's if statement must contain "
                "exactly one return statement",
                span,
            )
        _check_return(stmts[0], param_names)


def _check_return(stmt: ast.SReturn, param_names: set) -> None:
    if stmt.value is None:
        raise MemopError("a memop must return a value", stmt.span)
    _check_value_expr(stmt.value, param_names)


# ---------------------------------------------------------------------------
# rules 2, 3, 5: expression restrictions
# ---------------------------------------------------------------------------
def _check_condition(cond: ast.Expr, param_names: set) -> None:
    """Conditions must be a single comparison between ALU operands."""
    if isinstance(cond, ast.EBinary) and cond.op in (ast.BinOp.AND, ast.BinOp.OR):
        raise MemopError(
            "compound conditional expressions (&&, ||) are not allowed in memops: "
            "an Array.update call packs two memops into one stateful ALU and "
            "cannot also evaluate a compound condition",
            cond.span,
        )
    if isinstance(cond, ast.EBinary) and cond.op in SALU_CMP_OPS:
        _check_operand(cond.left, param_names)
        _check_operand(cond.right, param_names)
        _check_single_use(cond, param_names)
        return
    if isinstance(cond, (ast.EVar, ast.EBool)):
        return
    raise MemopError(
        "a memop condition must be a single comparison between the stored value, "
        "the local argument, or constants",
        cond.span,
    )


def _check_value_expr(expr: ast.Expr, param_names: set) -> None:
    """Returned values must be evaluable by the sALU arithmetic unit."""
    _check_single_use(expr, param_names)
    _check_value_expr_rec(expr, param_names, depth=0)


def _check_value_expr_rec(expr: ast.Expr, param_names: set, depth: int) -> None:
    if isinstance(expr, (ast.EInt, ast.EBool, ast.EVar)):
        return
    if isinstance(expr, ast.EBinary):
        if expr.op not in SALU_ARITH_OPS:
            raise MemopError(
                f"operator '{expr.op.value}' is not supported by the stateful ALU "
                "(supported: + - & | ^)",
                expr.span,
            )
        if depth >= 1:
            raise MemopError(
                "memop return expressions may apply at most one arithmetic "
                "operator (a single stateful-ALU instruction)",
                expr.span,
            )
        _check_operand(expr.left, param_names)
        _check_operand(expr.right, param_names)
        _check_value_expr_rec(expr.left, param_names, depth + 1)
        _check_value_expr_rec(expr.right, param_names, depth + 1)
        return
    if isinstance(expr, ast.ECall):
        raise MemopError("function calls are not allowed inside memops", expr.span)
    if isinstance(expr, ast.EUnary):
        raise MemopError(
            f"unary operator '{expr.op.value}' is not supported inside memops", expr.span
        )
    raise MemopError("expression is too complex for a stateful ALU", expr.span)


def _check_operand(expr: ast.Expr, param_names: set) -> None:
    if isinstance(expr, (ast.EInt, ast.EBool)):
        return
    if isinstance(expr, ast.EVar):
        return
    if isinstance(expr, ast.EBinary):
        # nested binary: handled by depth check in _check_value_expr_rec
        return
    raise MemopError(
        "memop operands must be the stored value, the local argument, or constants",
        expr.span,
    )


def _check_single_use(expr: ast.Expr, param_names: set) -> None:
    """Rule 2: each variable may be used at most once per expression."""
    counts: Dict[str, List[ast.EVar]] = {}
    for sub in ast.walk_expr(expr):
        if isinstance(sub, ast.EVar):
            counts.setdefault(sub.name, []).append(sub)
    for name, uses in counts.items():
        if len(uses) > 1:
            raise MemopError(
                f"variable '{name}' is used {len(uses)} times in one expression; "
                "a stateful ALU can read each operand only once",
                uses[1].span,
            )
