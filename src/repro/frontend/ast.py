"""Abstract syntax tree for Lucid programs.

The node set covers the language as presented in the paper:

* declarations: ``const``, ``global`` arrays (and counters), ``event``,
  ``handle``, ``fun``, ``memop``, ``const group``, ``extern``;
* statements: local declarations, assignment, ``if``/``else``, ``return``,
  ``generate`` / ``mgenerate``, expression statements, ``match`` (a small
  extension used by some of the applications);
* expressions: literals, variables, unary/binary operators, calls (including
  the built-in ``Array``/``Event``/``Sys`` modules and ``hash``), and event
  constructor expressions.

Every node carries a :class:`~repro.frontend.source.Span` so later phases can
report source-anchored diagnostics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.frontend.source import Span, dummy_span


# ---------------------------------------------------------------------------
# Types (surface syntax)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TypeExpr:
    """Base class of surface type expressions."""

    span: Span = field(compare=False, repr=False)


@dataclass(frozen=True)
class TInt(TypeExpr):
    """``int`` or ``int<<w>>``; width defaults to 32 bits."""

    width: int = 32


@dataclass(frozen=True)
class TBool(TypeExpr):
    """``bool``."""


@dataclass(frozen=True)
class TVoid(TypeExpr):
    """``void`` — the return type of handlers and of functions with no value."""


@dataclass(frozen=True)
class TEvent(TypeExpr):
    """``event`` — a first-class event value awaiting ``generate``."""


@dataclass(frozen=True)
class TGroup(TypeExpr):
    """``group`` — a multicast group of switch locations."""


@dataclass(frozen=True)
class TArray(TypeExpr):
    """``Array<<w>>`` — a persistent register array of w-bit cells."""

    width: int = 32


@dataclass(frozen=True)
class TNamed(TypeExpr):
    """A named (user / auto) type; currently resolved during checking."""

    name: str = ""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class BinOp(enum.Enum):
    """Binary operators of the expression language."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    BITAND = "&"
    BITOR = "|"
    BITXOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    AND = "&&"
    OR = "||"


class UnOp(enum.Enum):
    """Unary operators."""

    NOT = "!"
    NEG = "-"
    BITNOT = "~"


#: Operators a Tofino ALU can evaluate in a (stateless) action.
ALU_BINOPS = frozenset(
    {
        BinOp.ADD,
        BinOp.SUB,
        BinOp.BITAND,
        BinOp.BITOR,
        BinOp.BITXOR,
        BinOp.SHL,
        BinOp.SHR,
        BinOp.EQ,
        BinOp.NEQ,
        BinOp.LT,
        BinOp.GT,
        BinOp.LE,
        BinOp.GE,
    }
)

#: Arithmetic operators a *stateful* ALU supports inside a memop.
SALU_ARITH_OPS = frozenset({BinOp.ADD, BinOp.SUB, BinOp.BITAND, BinOp.BITOR, BinOp.BITXOR})

#: Comparison operators a stateful ALU supports inside a memop condition.
SALU_CMP_OPS = frozenset({BinOp.EQ, BinOp.NEQ, BinOp.LT, BinOp.GT, BinOp.LE, BinOp.GE})


@dataclass
class Expr:
    """Base class for expressions."""

    span: Span = field(repr=False)


@dataclass
class EInt(Expr):
    """Integer literal (already normalised to a plain int; times are ns)."""

    value: int = 0
    width: Optional[int] = None


@dataclass
class EBool(Expr):
    """Boolean literal."""

    value: bool = False


@dataclass
class EVar(Expr):
    """A variable reference (local, parameter, const, or global)."""

    name: str = ""


@dataclass
class EUnary(Expr):
    """Unary operator application."""

    op: UnOp = UnOp.NOT
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class EBinary(Expr):
    """Binary operator application."""

    op: BinOp = BinOp.ADD
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class ECall(Expr):
    """A call.  ``func`` is a dotted path such as ``Array.get`` or ``incr``."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)
    size_args: List[int] = field(default_factory=list)  # e.g. hash<<16>>(...)


@dataclass
class EEvent(Expr):
    """An event-constructor expression, e.g. ``route_reply(SELF, dst, len)``.

    Event constructors are syntactically calls; the parser produces
    :class:`ECall` and the type checker rewrites calls whose callee is a
    declared event into :class:`EEvent`.
    """

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class EGroup(Expr):
    """A group literal, e.g. ``{2, 3}``."""

    members: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass
class Stmt:
    """Base class for statements."""

    span: Span = field(repr=False)


@dataclass
class SLocal(Stmt):
    """A local variable declaration: ``int x = e;`` or ``event ev = e;``."""

    ty: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    init: Expr = None  # type: ignore[assignment]


@dataclass
class SAssign(Stmt):
    """Assignment to an existing local: ``x = e;``."""

    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class SIf(Stmt):
    """``if (cond) { ... } else { ... }`` — the else branch may be empty."""

    cond: Expr = None  # type: ignore[assignment]
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class SMatch(Stmt):
    """``match (e1, e2) with | pat -> { ... }`` — used by some applications."""

    scrutinees: List[Expr] = field(default_factory=list)
    branches: List[Tuple[List[Optional[int]], List[Stmt]]] = field(default_factory=list)


@dataclass
class SReturn(Stmt):
    """``return e;`` or ``return;``."""

    value: Optional[Expr] = None


@dataclass
class SGenerate(Stmt):
    """``generate e;`` — schedule an event (possibly wrapped in combinators)."""

    event: Expr = None  # type: ignore[assignment]
    multicast: bool = False  # True for ``mgenerate``


@dataclass
class SExpr(Stmt):
    """An expression evaluated for its effect, e.g. ``Array.set(...);``."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class SSeq(Stmt):
    """An explicit block (used internally by some transformations)."""

    body: List[Stmt] = field(default_factory=list)


@dataclass
class SNoop(Stmt):
    """An empty statement, produced by some rewrites."""


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------
@dataclass
class Param:
    """A formal parameter ``ty name``."""

    ty: TypeExpr
    name: str
    span: Span = field(repr=False, default_factory=dummy_span)


@dataclass
class Decl:
    """Base class for top-level declarations."""

    span: Span = field(repr=False)


@dataclass
class DConst(Decl):
    """``const int NAME = expr;`` or ``const group NAME = {..};``."""

    ty: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    value: Expr = None  # type: ignore[assignment]


@dataclass
class DSymbolic(Decl):
    """``symbolic size name;`` — a size left free for the harness to bind."""

    name: str = ""
    default: int = 1024


@dataclass
class DExtern(Decl):
    """``extern fun int name(params);`` — a function supplied by the harness."""

    ret: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    params: List[Param] = field(default_factory=list)


@dataclass
class DGlobal(Decl):
    """``global name = new Array<<w>>(size);``

    Globals are ordered; their declaration index is their abstract pipeline
    stage in the type-and-effect system (Section 5).
    """

    name: str = ""
    cell_width: int = 32
    size_expr: Expr = None  # type: ignore[assignment]
    size: Optional[int] = None  # filled by constant evaluation
    kind: str = "array"  # "array" or "counter"


@dataclass
class DEvent(Decl):
    """``event name(params);`` — declares an event and its payload."""

    name: str = ""
    params: List[Param] = field(default_factory=list)


@dataclass
class DHandler(Decl):
    """``handle name(params) { body }`` — the computation run for an event."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DFun(Decl):
    """``fun ret name(params) { body }`` — an ordinary (inlined) function."""

    ret: TypeExpr = None  # type: ignore[assignment]
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DMemop(Decl):
    """``memop name(int stored, int local) { body }`` — a stateful-ALU op."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Program:
    """A parsed Lucid program: an ordered list of declarations."""

    decls: List[Decl] = field(default_factory=list)
    name: str = "<program>"

    # -- convenience accessors -------------------------------------------
    def consts(self) -> List[DConst]:
        return [d for d in self.decls if isinstance(d, DConst)]

    def globals(self) -> List[DGlobal]:
        return [d for d in self.decls if isinstance(d, DGlobal)]

    def events(self) -> List[DEvent]:
        return [d for d in self.decls if isinstance(d, DEvent)]

    def handlers(self) -> List[DHandler]:
        return [d for d in self.decls if isinstance(d, DHandler)]

    def functions(self) -> List[DFun]:
        return [d for d in self.decls if isinstance(d, DFun)]

    def memops(self) -> List[DMemop]:
        return [d for d in self.decls if isinstance(d, DMemop)]

    def externs(self) -> List[DExtern]:
        return [d for d in self.decls if isinstance(d, DExtern)]

    def symbolics(self) -> List[DSymbolic]:
        return [d for d in self.decls if isinstance(d, DSymbolic)]

    def handler(self, name: str) -> Optional[DHandler]:
        for d in self.handlers():
            if d.name == name:
                return d
        return None

    def event(self, name: str) -> Optional[DEvent]:
        for d in self.events():
            if d.name == name:
                return d
        return None

    def global_index(self, name: str) -> Optional[int]:
        """Return the declaration index (abstract stage) of a global."""
        for i, g in enumerate(self.globals()):
            if g.name == name:
                return i
        return None


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------
def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, EUnary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, EBinary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, (ECall, EEvent)):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, EGroup):
        for member in expr.members:
            yield from walk_expr(member)


def walk_stmts(stmts: Sequence[Stmt]):
    """Yield every statement in ``stmts``, recursing into blocks."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, SIf):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, SMatch):
            for _, body in stmt.branches:
                yield from walk_stmts(body)
        elif isinstance(stmt, SSeq):
            yield from walk_stmts(stmt.body)


def stmt_exprs(stmt: Stmt) -> List[Expr]:
    """Return the immediate expressions of a statement (not recursing into
    nested statements)."""
    if isinstance(stmt, SLocal):
        return [stmt.init]
    if isinstance(stmt, SAssign):
        return [stmt.value]
    if isinstance(stmt, SIf):
        return [stmt.cond]
    if isinstance(stmt, SMatch):
        return list(stmt.scrutinees)
    if isinstance(stmt, SReturn):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, SGenerate):
        return [stmt.event]
    if isinstance(stmt, SExpr):
        return [stmt.expr]
    return []


def expr_calls(expr: Expr) -> List[ECall]:
    """All calls appearing in ``expr`` (pre-order)."""
    return [e for e in walk_expr(expr) if isinstance(e, ECall)]
