"""A recursive-descent parser for Lucid.

The grammar follows the concrete syntax used throughout the paper (Sections 3
through 6).  It is deliberately small and regular: declarations at the top
level, C-like statements inside handler / function / memop bodies, and a
conventional expression grammar with precedence climbing.

The only syntactic subtlety is the ``<<w>>`` size-bracket syntax used by
``Array<<32>>`` and ``hash<<16>>(...)``: the token sequence ``<< INT >>`` is
interpreted as a size argument when it immediately follows a callee name and
is itself followed by ``(`` — otherwise ``<<`` and ``>>`` are the shift
operators.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import Lexer
from repro.frontend.source import SourceFile, Span
from repro.frontend.tokens import Token, TokenKind


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.Program`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.tokens = Lexer(source).tokenize()
        self.pos = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.value
            raise ParseError(
                f"expected {expected}, found {tok.text!r}" if tok.text else f"expected {expected}, found end of input",
                tok.span,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _error(self, message: str, span: Optional[Span] = None) -> ParseError:
        return ParseError(message, span or self._peek().span)

    # ------------------------------------------------------------------
    # program / declarations
    # ------------------------------------------------------------------
    def parse_program(self, name: str = "<program>") -> ast.Program:
        """Parse the whole token stream as a program."""
        decls: List[ast.Decl] = []
        while not self._at(TokenKind.EOF):
            decls.append(self.parse_decl())
        return ast.Program(decls=decls, name=name)

    def parse_decl(self) -> ast.Decl:
        tok = self._peek()
        if tok.kind is TokenKind.KW_CONST:
            return self._parse_const()
        if tok.kind is TokenKind.KW_SYMBOLIC:
            return self._parse_symbolic()
        if tok.kind is TokenKind.KW_GLOBAL:
            return self._parse_global(explicit_keyword=True)
        if tok.kind is TokenKind.IDENT and tok.text == "Array":
            return self._parse_global(explicit_keyword=False)
        if tok.kind is TokenKind.KW_EVENT:
            return self._parse_event()
        if tok.kind is TokenKind.KW_HANDLE:
            return self._parse_handler()
        if tok.kind is TokenKind.KW_FUN:
            return self._parse_fun()
        if tok.kind is TokenKind.KW_MEMOP:
            return self._parse_memop()
        if tok.kind is TokenKind.KW_EXTERN:
            return self._parse_extern()
        raise self._error(
            f"expected a declaration (const/global/event/handle/fun/memop), found {tok.text!r}"
        )

    def _parse_const(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_CONST)
        if self._at(TokenKind.KW_GROUP):
            self._advance()
            name = self._expect(TokenKind.IDENT, "group name").text
            self._expect(TokenKind.ASSIGN)
            value = self._parse_group_literal()
            semi = self._expect(TokenKind.SEMI)
            span = start.span.merge(semi.span)
            return ast.DConst(span=span, ty=ast.TGroup(span=start.span), name=name, value=value)
        ty = self._parse_type()
        name = self._expect(TokenKind.IDENT, "constant name").text
        self._expect(TokenKind.ASSIGN)
        value = self.parse_expr()
        semi = self._expect(TokenKind.SEMI)
        return ast.DConst(span=start.span.merge(semi.span), ty=ty, name=name, value=value)

    def _parse_symbolic(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_SYMBOLIC)
        self._accept(TokenKind.KW_SIZE)
        self._accept(TokenKind.KW_INT)
        name = self._expect(TokenKind.IDENT, "symbolic name").text
        default = 1024
        if self._accept(TokenKind.ASSIGN):
            tok = self._expect(TokenKind.INT, "integer default")
            default = tok.value or 0
        semi = self._expect(TokenKind.SEMI)
        return ast.DSymbolic(span=start.span.merge(semi.span), name=name, default=default)

    def _parse_global(self, explicit_keyword: bool) -> ast.Decl:
        """Parse ``global name = new Array<<w>>(size);`` and the shorthand
        ``Array name = new Array<<w>>(size);`` used in Figure 6."""
        start = self._advance()  # 'global' or 'Array'
        declared_width: Optional[int] = None
        if explicit_keyword and self._at(TokenKind.IDENT) and self._peek().text == "Array":
            # `global Array<<w>> name = ...`
            self._advance()
            declared_width = self._maybe_parse_size_brackets()
        elif not explicit_keyword:
            declared_width = self._maybe_parse_size_brackets()
        name = self._expect(TokenKind.IDENT, "global name").text
        self._expect(TokenKind.ASSIGN)
        self._expect(TokenKind.KW_NEW)
        ctor = self._expect(TokenKind.IDENT, "Array constructor")
        kind = "array"
        if ctor.text == "Counter":
            kind = "counter"
        elif ctor.text != "Array":
            raise self._error(f"unknown global constructor {ctor.text!r}", ctor.span)
        width = self._maybe_parse_size_brackets()
        if width is None:
            width = declared_width if declared_width is not None else 32
        self._expect(TokenKind.LPAREN)
        size_expr = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        semi = self._expect(TokenKind.SEMI)
        return ast.DGlobal(
            span=start.span.merge(semi.span),
            name=name,
            cell_width=width,
            size_expr=size_expr,
            kind=kind,
        )

    def _maybe_parse_size_brackets(self) -> Optional[int]:
        """Parse ``<< INT >>`` if present, returning the integer."""
        if not self._at(TokenKind.LSHIFT_SIZE):
            return None
        self._advance()
        tok = self._expect(TokenKind.INT, "bit width")
        self._expect(TokenKind.RSHIFT_SIZE)
        return tok.value or 0

    def _parse_params(self) -> List[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                ty = self._parse_type()
                name_tok = self._expect(TokenKind.IDENT, "parameter name")
                params.append(ast.Param(ty=ty, name=name_tok.text, span=name_tok.span))
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_event(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_EVENT)
        name = self._expect(TokenKind.IDENT, "event name").text
        params = self._parse_params()
        semi = self._expect(TokenKind.SEMI)
        return ast.DEvent(span=start.span.merge(semi.span), name=name, params=params)

    def _parse_handler(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_HANDLE)
        name = self._expect(TokenKind.IDENT, "handler name").text
        params = self._parse_params()
        body, end_span = self._parse_block()
        return ast.DHandler(span=start.span.merge(end_span), name=name, params=params, body=body)

    def _parse_fun(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_FUN)
        ret = self._parse_type()
        name = self._expect(TokenKind.IDENT, "function name").text
        params = self._parse_params()
        body, end_span = self._parse_block()
        return ast.DFun(span=start.span.merge(end_span), ret=ret, name=name, params=params, body=body)

    def _parse_memop(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_MEMOP)
        name = self._expect(TokenKind.IDENT, "memop name").text
        params = self._parse_params()
        body, end_span = self._parse_block()
        return ast.DMemop(span=start.span.merge(end_span), name=name, params=params, body=body)

    def _parse_extern(self) -> ast.Decl:
        start = self._expect(TokenKind.KW_EXTERN)
        self._accept(TokenKind.KW_FUN)
        ret = self._parse_type()
        name = self._expect(TokenKind.IDENT, "extern name").text
        params = self._parse_params()
        semi = self._expect(TokenKind.SEMI)
        return ast.DExtern(span=start.span.merge(semi.span), ret=ret, name=name, params=params)

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------
    def _parse_type(self) -> ast.TypeExpr:
        tok = self._peek()
        if tok.kind is TokenKind.KW_INT:
            self._advance()
            width = self._maybe_parse_size_brackets()
            return ast.TInt(span=tok.span, width=width if width is not None else 32)
        if tok.kind is TokenKind.KW_BOOL:
            self._advance()
            return ast.TBool(span=tok.span)
        if tok.kind is TokenKind.KW_VOID:
            self._advance()
            return ast.TVoid(span=tok.span)
        if tok.kind is TokenKind.KW_EVENT:
            self._advance()
            return ast.TEvent(span=tok.span)
        if tok.kind is TokenKind.KW_GROUP:
            self._advance()
            return ast.TGroup(span=tok.span)
        if tok.kind is TokenKind.KW_AUTO:
            self._advance()
            return ast.TNamed(span=tok.span, name="auto")
        if tok.kind is TokenKind.IDENT and tok.text == "Array":
            self._advance()
            width = self._maybe_parse_size_brackets()
            return ast.TArray(span=tok.span, width=width if width is not None else 32)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.TNamed(span=tok.span, name=tok.text)
        raise self._error(f"expected a type, found {tok.text!r}")

    def _starts_type(self) -> bool:
        tok = self._peek()
        if tok.kind in (
            TokenKind.KW_INT,
            TokenKind.KW_BOOL,
            TokenKind.KW_EVENT,
            TokenKind.KW_GROUP,
            TokenKind.KW_AUTO,
        ):
            # `event` can also begin a nested event declaration only at top
            # level; inside statements `event x = ...` declares a local.
            return True
        if tok.kind is TokenKind.IDENT and tok.text == "Array":
            # `Array.get(...)` is a call, `Array<<32>> x` is a type.  Calls are
            # always followed by a dot.
            return not self._at(TokenKind.DOT, 1)
        return False

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> Tuple[List[ast.Stmt], Span]:
        self._expect(TokenKind.LBRACE)
        body: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise self._error("unexpected end of input inside block")
            body.append(self.parse_stmt())
        end = self._expect(TokenKind.RBRACE)
        return body, end.span

    def parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.KW_IF:
            return self._parse_if()
        if tok.kind is TokenKind.KW_MATCH:
            return self._parse_match()
        if tok.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if tok.kind in (TokenKind.KW_GENERATE, TokenKind.KW_MGENERATE):
            return self._parse_generate()
        if tok.kind is TokenKind.SEMI:
            self._advance()
            return ast.SNoop(span=tok.span)
        if self._starts_type():
            return self._parse_local()
        # assignment or expression statement
        if tok.kind is TokenKind.IDENT and self._at(TokenKind.ASSIGN, 1):
            return self._parse_assign()
        expr = self.parse_expr()
        semi = self._expect(TokenKind.SEMI)
        return ast.SExpr(span=tok.span.merge(semi.span), expr=expr)

    def _parse_local(self) -> ast.Stmt:
        start = self._peek()
        ty = self._parse_type()
        name = self._expect(TokenKind.IDENT, "variable name").text
        self._expect(TokenKind.ASSIGN)
        init = self.parse_expr()
        semi = self._expect(TokenKind.SEMI)
        return ast.SLocal(span=start.span.merge(semi.span), ty=ty, name=name, init=init)

    def _parse_assign(self) -> ast.Stmt:
        name_tok = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.ASSIGN)
        value = self.parse_expr()
        semi = self._expect(TokenKind.SEMI)
        return ast.SAssign(span=name_tok.span.merge(semi.span), name=name_tok.text, value=value)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        if self._at(TokenKind.LBRACE):
            then_body, end_span = self._parse_block()
        else:
            stmt = self.parse_stmt()
            then_body, end_span = [stmt], stmt.span
        else_body: List[ast.Stmt] = []
        if self._accept(TokenKind.KW_ELSE):
            if self._at(TokenKind.KW_IF):
                nested = self._parse_if()
                else_body, end_span = [nested], nested.span
            elif self._at(TokenKind.LBRACE):
                else_body, end_span = self._parse_block()
            else:
                stmt = self.parse_stmt()
                else_body, end_span = [stmt], stmt.span
        return ast.SIf(span=start.span.merge(end_span), cond=cond, then_body=then_body, else_body=else_body)

    def _parse_match(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_MATCH)
        self._expect(TokenKind.LPAREN)
        scrutinees = [self.parse_expr()]
        while self._accept(TokenKind.COMMA):
            scrutinees.append(self.parse_expr())
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.KW_WITH)
        branches: List[Tuple[List[Optional[int]], List[ast.Stmt]]] = []
        end_span = start.span
        while self._accept(TokenKind.PIPE):
            pattern: List[Optional[int]] = []
            while True:
                if self._at(TokenKind.INT):
                    pattern.append(self._advance().value)
                elif self._at(TokenKind.IDENT) and self._peek().text == "_":
                    self._advance()
                    pattern.append(None)
                else:
                    raise self._error("expected an integer or '_' in match pattern")
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.MINUS)
            self._expect(TokenKind.GT)
            body, end_span = self._parse_block()
            branches.append((pattern, body))
        if not branches:
            raise self._error("match statement has no branches", start.span)
        return ast.SMatch(span=start.span.merge(end_span), scrutinees=scrutinees, branches=branches)

    def _parse_return(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_RETURN)
        if self._at(TokenKind.SEMI):
            semi = self._advance()
            return ast.SReturn(span=start.span.merge(semi.span), value=None)
        value = self.parse_expr()
        semi = self._expect(TokenKind.SEMI)
        return ast.SReturn(span=start.span.merge(semi.span), value=value)

    def _parse_generate(self) -> ast.Stmt:
        start = self._advance()
        multicast = start.kind is TokenKind.KW_MGENERATE
        event = self.parse_expr()
        semi = self._expect(TokenKind.SEMI)
        return ast.SGenerate(span=start.span.merge(semi.span), event=event, multicast=multicast)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            op_tok = self._advance()
            right = self._parse_and()
            left = ast.EBinary(span=left.span.merge(right.span), op=ast.BinOp.OR, left=left, right=right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_cmp()
        while self._at(TokenKind.AND):
            self._advance()
            right = self._parse_cmp()
            left = ast.EBinary(span=left.span.merge(right.span), op=ast.BinOp.AND, left=left, right=right)
        return left

    _CMP_OPS = {
        TokenKind.EQ: ast.BinOp.EQ,
        TokenKind.NEQ: ast.BinOp.NEQ,
        TokenKind.LT: ast.BinOp.LT,
        TokenKind.GT: ast.BinOp.GT,
        TokenKind.LE: ast.BinOp.LE,
        TokenKind.GE: ast.BinOp.GE,
    }

    def _parse_cmp(self) -> ast.Expr:
        left = self._parse_bitor()
        while self._peek().kind in self._CMP_OPS:
            op = self._CMP_OPS[self._advance().kind]
            right = self._parse_bitor()
            left = ast.EBinary(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_bitor(self) -> ast.Expr:
        left = self._parse_bitxor()
        while self._at(TokenKind.PIPE):
            self._advance()
            right = self._parse_bitxor()
            left = ast.EBinary(span=left.span.merge(right.span), op=ast.BinOp.BITOR, left=left, right=right)
        return left

    def _parse_bitxor(self) -> ast.Expr:
        left = self._parse_bitand()
        while self._at(TokenKind.CARET):
            self._advance()
            right = self._parse_bitand()
            left = ast.EBinary(span=left.span.merge(right.span), op=ast.BinOp.BITXOR, left=left, right=right)
        return left

    def _parse_bitand(self) -> ast.Expr:
        left = self._parse_shift()
        while self._at(TokenKind.AMP):
            self._advance()
            right = self._parse_shift()
            left = ast.EBinary(span=left.span.merge(right.span), op=ast.BinOp.BITAND, left=left, right=right)
        return left

    def _parse_shift(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in (TokenKind.LSHIFT_SIZE, TokenKind.RSHIFT_SIZE):
            op = ast.BinOp.SHL if self._advance().kind is TokenKind.LSHIFT_SIZE else ast.BinOp.SHR
            right = self._parse_additive()
            left = ast.EBinary(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_mult()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = ast.BinOp.ADD if self._advance().kind is TokenKind.PLUS else ast.BinOp.SUB
            right = self._parse_mult()
            left = ast.EBinary(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_mult(self) -> ast.Expr:
        left = self._parse_unary()
        ops = {TokenKind.STAR: ast.BinOp.MUL, TokenKind.SLASH: ast.BinOp.DIV, TokenKind.PERCENT: ast.BinOp.MOD}
        while self._peek().kind in ops:
            op = ops[self._advance().kind]
            right = self._parse_unary()
            left = ast.EBinary(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.BANG:
            self._advance()
            operand = self._parse_unary()
            return ast.EUnary(span=tok.span.merge(operand.span), op=ast.UnOp.NOT, operand=operand)
        if tok.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.EUnary(span=tok.span.merge(operand.span), op=ast.UnOp.NEG, operand=operand)
        if tok.kind is TokenKind.TILDE:
            self._advance()
            operand = self._parse_unary()
            return ast.EUnary(span=tok.span.merge(operand.span), op=ast.UnOp.BITNOT, operand=operand)
        return self._parse_primary()

    def _parse_group_literal(self) -> ast.Expr:
        start = self._expect(TokenKind.LBRACE)
        members: List[ast.Expr] = []
        if not self._at(TokenKind.RBRACE):
            members.append(self.parse_expr())
            while self._accept(TokenKind.COMMA):
                members.append(self.parse_expr())
        end = self._expect(TokenKind.RBRACE)
        return ast.EGroup(span=start.span.merge(end.span), members=members)

    def _looks_like_size_args(self) -> bool:
        """True when the upcoming tokens are ``<< INT >> (``."""
        return (
            self._at(TokenKind.LSHIFT_SIZE)
            and self._at(TokenKind.INT, 1)
            and self._at(TokenKind.RSHIFT_SIZE, 2)
            and self._at(TokenKind.LPAREN, 3)
        )

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.EInt(span=tok.span, value=tok.value or 0)
        if tok.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.EBool(span=tok.span, value=True)
        if tok.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.EBool(span=tok.span, value=False)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.LBRACE:
            return self._parse_group_literal()
        if tok.kind is TokenKind.IDENT or tok.kind is TokenKind.KW_EVENT:
            return self._parse_path_or_call()
        raise self._error(f"expected an expression, found {tok.text!r}")

    def _parse_path_or_call(self) -> ast.Expr:
        start = self._advance()
        parts = [start.text]
        end_span = start.span
        while self._at(TokenKind.DOT):
            self._advance()
            part = self._expect(TokenKind.IDENT, "member name")
            parts.append(part.text)
            end_span = part.span
        name = ".".join(parts)
        size_args: List[int] = []
        if self._looks_like_size_args():
            self._advance()  # <<
            size_tok = self._advance()
            size_args.append(size_tok.value or 0)
            self._advance()  # >>
        if self._at(TokenKind.LPAREN):
            self._advance()
            args: List[ast.Expr] = []
            if not self._at(TokenKind.RPAREN):
                args.append(self.parse_expr())
                while self._accept(TokenKind.COMMA):
                    args.append(self.parse_expr())
            end = self._expect(TokenKind.RPAREN)
            return ast.ECall(span=start.span.merge(end.span), func=name, args=args, size_args=size_args)
        if len(parts) > 1:
            raise self._error(f"dotted name {name!r} must be called", start.span.merge(end_span))
        return ast.EVar(span=start.span, name=name)


def parse_program(text: str, name: str = "<string>") -> ast.Program:
    """Parse ``text`` into a :class:`Program` (the main frontend entry point)."""
    return Parser(SourceFile(name, text)).parse_program(name=name)


def parse_expression(text: str, name: str = "<expr>") -> ast.Expr:
    """Parse a single expression (used by tests and the REPL-ish helpers)."""
    parser = Parser(SourceFile(name, text))
    expr = parser.parse_expr()
    parser._expect(TokenKind.EOF)
    return expr
