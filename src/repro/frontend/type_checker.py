"""Lucid's type checker and ordered effect checker (Sections 4 and 5).

The checker performs, in one pass over each handler / function body:

* ordinary type checking (undefined variables, arity and argument types of
  calls, event payloads, return types, condition types, ...);
* memop *usage* checking (memops may only be passed to Array methods; Array
  methods must receive declared memops);
* the ordered type-and-effect analysis: every access to a global array is
  collected into a branch-aware :class:`~repro.frontend.effects.EffectSummary`
  and replayed through a :class:`~repro.frontend.effects.StageTracker`, which
  raises :class:`~repro.errors.OrderError` with source-level messages when a
  handler accesses globals out of declaration order or twice in one pass.

Functions (``fun``) are given polymorphic effect summaries so they can be
checked once and reused at any call site whose argument stages are compatible
— the practical version of the Appendix A system.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OrderError, TypeError_
from repro.frontend import ast
from repro.frontend.effects import (
    BranchAccess,
    ConcreteAccess,
    EffectSummary,
    ParamAccess,
    StageTracker,
    validate_summary_order,
)
from repro.frontend.memop_check import check_all_memops
from repro.frontend.parser import parse_program
from repro.frontend.symbols import (
    ARRAY_METHODS,
    BUILTIN_FUNCTIONS,
    EVENT_COMBINATORS,
    ProgramInfo,
    collect_program_info,
)
from repro.frontend.types import (
    ArrayTy,
    BoolTy,
    EventTy,
    GroupTy,
    IntTy,
    Ty,
    VoidTy,
    compatible,
    from_surface,
)


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class HandlerCheckResult:
    """Per-handler results of checking: the ordered trace of global accesses
    (useful to the backend and to tests) and the final abstract stage."""

    name: str
    trace: List[ConcreteAccess] = field(default_factory=list)
    end_stage: int = 0
    generates: List[str] = field(default_factory=list)  # events generated


@dataclass
class CheckedProgram:
    """A program that passed all frontend checks."""

    program: ast.Program
    info: ProgramInfo
    handler_results: Dict[str, HandlerCheckResult] = field(default_factory=dict)
    fun_summaries: Dict[str, EffectSummary] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.program.name

    def digest(self) -> str:
        """A stable hash of everything that determines compiled-handler
        semantics: the resolved AST, scalar constants, and global array
        shapes.  Multicast *group members* are deliberately excluded (they
        are bound per switch from the topology and supplied at engine-build
        time), so every switch of a fat-tree running the same app under the
        same symbolic bindings shares one digest — which is what lets the
        codegen module cache and the shared memop cache compile each app
        once per network instead of once per switch."""
        cached = getattr(self, "_digest", None)
        if cached is not None:
            return cached
        consts = self.info.consts
        scalars = sorted(
            (k, v) for k, v in consts.values.items() if k not in consts.groups
        )
        globals_sig = [
            (g.name, g.stage, g.cell_width, g.size, g.kind)
            for g in self.info.globals.values()
        ]
        basis = "\x1f".join(
            [
                repr(self.program.decls),
                repr(scalars),
                repr(sorted(consts.groups)),
                repr(globals_sig),
            ]
        )
        cached = hashlib.sha256(basis.encode("utf-8")).hexdigest()
        self._digest = cached
        return cached


# ---------------------------------------------------------------------------
# event-constructor resolution (ECall -> EEvent)
# ---------------------------------------------------------------------------
def _resolve_expr(expr: ast.Expr, info: ProgramInfo) -> ast.Expr:
    if isinstance(expr, ast.ECall):
        expr.args = [_resolve_expr(a, info) for a in expr.args]
        if info.is_event(expr.func):
            return ast.EEvent(span=expr.span, name=expr.func, args=expr.args)
        return expr
    if isinstance(expr, ast.EEvent):
        expr.args = [_resolve_expr(a, info) for a in expr.args]
        return expr
    if isinstance(expr, ast.EUnary):
        expr.operand = _resolve_expr(expr.operand, info)
        return expr
    if isinstance(expr, ast.EBinary):
        expr.left = _resolve_expr(expr.left, info)
        expr.right = _resolve_expr(expr.right, info)
        return expr
    if isinstance(expr, ast.EGroup):
        expr.members = [_resolve_expr(m, info) for m in expr.members]
        return expr
    return expr


def _resolve_stmts(stmts: List[ast.Stmt], info: ProgramInfo) -> None:
    for stmt in stmts:
        if isinstance(stmt, ast.SLocal):
            stmt.init = _resolve_expr(stmt.init, info)
        elif isinstance(stmt, ast.SAssign):
            stmt.value = _resolve_expr(stmt.value, info)
        elif isinstance(stmt, ast.SIf):
            stmt.cond = _resolve_expr(stmt.cond, info)
            _resolve_stmts(stmt.then_body, info)
            _resolve_stmts(stmt.else_body, info)
        elif isinstance(stmt, ast.SMatch):
            stmt.scrutinees = [_resolve_expr(e, info) for e in stmt.scrutinees]
            for _, body in stmt.branches:
                _resolve_stmts(body, info)
        elif isinstance(stmt, ast.SReturn) and stmt.value is not None:
            stmt.value = _resolve_expr(stmt.value, info)
        elif isinstance(stmt, ast.SGenerate):
            stmt.event = _resolve_expr(stmt.event, info)
        elif isinstance(stmt, ast.SExpr):
            stmt.expr = _resolve_expr(stmt.expr, info)
        elif isinstance(stmt, ast.SSeq):
            _resolve_stmts(stmt.body, info)


def resolve_event_constructors(program: ast.Program, info: ProgramInfo) -> None:
    """Rewrite calls whose callee is a declared event into event expressions."""
    for decl in program.decls:
        if isinstance(decl, (ast.DHandler, ast.DFun, ast.DMemop)):
            _resolve_stmts(decl.body, info)


# ---------------------------------------------------------------------------
# the checker
# ---------------------------------------------------------------------------
class _BodyContext:
    """Typing environment for one handler / function body."""

    def __init__(
        self,
        kind: str,
        name: str,
        env: Dict[str, Ty],
        array_params: Dict[str, int],
        ret: Ty,
    ):
        self.kind = kind  # "handler" | "fun"
        self.name = name
        self.env = env
        self.array_params = array_params  # param name -> param index
        self.ret = ret
        self.generates: List[str] = []

    def child(self) -> "_BodyContext":
        ctx = _BodyContext(self.kind, self.name, dict(self.env), self.array_params, self.ret)
        ctx.generates = self.generates
        return ctx


class TypeChecker:
    """Checks one program; see :func:`check_program` for the entry point."""

    def __init__(self, info: ProgramInfo):
        self.info = info
        self.fun_summaries: Dict[str, EffectSummary] = {}
        self.fun_rets: Dict[str, Ty] = {}
        self._checking: set = set()  # recursion detection for fun

    # -- top level --------------------------------------------------------
    def check(self) -> CheckedProgram:
        program = self.info.program
        resolve_event_constructors(program, self.info)
        # functions first (their summaries are needed at handler call sites)
        for fun in program.functions():
            self._summarise_function(fun.name)
        handler_results: Dict[str, HandlerCheckResult] = {}
        for handler in program.handlers():
            handler_results[handler.name] = self._check_handler(handler)
        return CheckedProgram(
            program=program,
            info=self.info,
            handler_results=handler_results,
            fun_summaries=self.fun_summaries,
        )

    # -- functions ---------------------------------------------------------
    def _summarise_function(self, name: str) -> Tuple[EffectSummary, Ty]:
        if name in self.fun_summaries:
            return self.fun_summaries[name], self.fun_rets[name]
        fun = self.info.functions[name]
        if name in self._checking:
            raise TypeError_(
                f"function '{name}' is recursive; recursion is only possible through "
                "events (generate), not function calls",
                fun.span,
            )
        self._checking.add(name)
        env: Dict[str, Ty] = {}
        array_params: Dict[str, int] = {}
        for index, param in enumerate(fun.params):
            ty = from_surface(param.ty)
            env[param.name] = ty
            if isinstance(ty, ArrayTy):
                array_params[param.name] = index
        ret = from_surface(fun.ret)
        ctx = _BodyContext("fun", name, env, array_params, ret)
        summary = self._check_block(fun.body, ctx)
        validate_summary_order(summary, self.info.global_order)
        self._checking.discard(name)
        self.fun_summaries[name] = summary
        self.fun_rets[name] = ret
        return summary, ret

    # -- handlers ----------------------------------------------------------
    def _check_handler(self, handler: ast.DHandler) -> HandlerCheckResult:
        env: Dict[str, Ty] = {}
        for param in handler.params:
            ty = from_surface(param.ty)
            if isinstance(ty, ArrayTy):
                raise TypeError_(
                    f"handler '{handler.name}' parameter '{param.name}' has array type; "
                    "events cannot carry persistent arrays",
                    param.span,
                )
            env[param.name] = ty
        ctx = _BodyContext("handler", handler.name, env, {}, VoidTy())
        summary = self._check_block(handler.body, ctx)
        tracker = StageTracker(self.info.global_order)
        tracker.replay(summary)
        return HandlerCheckResult(
            name=handler.name,
            trace=list(tracker.trace),
            end_stage=tracker.current,
            generates=list(ctx.generates),
        )

    # -- statements --------------------------------------------------------
    def _check_block(self, stmts: List[ast.Stmt], ctx: _BodyContext) -> EffectSummary:
        summary = EffectSummary()
        for stmt in stmts:
            summary.extend(self._check_stmt(stmt, ctx))
        return summary

    def _check_stmt(self, stmt: ast.Stmt, ctx: _BodyContext) -> EffectSummary:
        if isinstance(stmt, ast.SNoop):
            return EffectSummary()
        if isinstance(stmt, ast.SLocal):
            return self._check_local(stmt, ctx)
        if isinstance(stmt, ast.SAssign):
            return self._check_assign(stmt, ctx)
        if isinstance(stmt, ast.SIf):
            return self._check_if(stmt, ctx)
        if isinstance(stmt, ast.SMatch):
            return self._check_match(stmt, ctx)
        if isinstance(stmt, ast.SReturn):
            return self._check_return(stmt, ctx)
        if isinstance(stmt, ast.SGenerate):
            return self._check_generate(stmt, ctx)
        if isinstance(stmt, ast.SExpr):
            _, effects = self._check_expr(stmt.expr, ctx)
            return effects
        if isinstance(stmt, ast.SSeq):
            return self._check_block(stmt.body, ctx)
        raise AssertionError(f"unhandled statement {stmt!r}")

    def _check_local(self, stmt: ast.SLocal, ctx: _BodyContext) -> EffectSummary:
        declared = from_surface(stmt.ty)
        actual, effects = self._check_expr(stmt.init, ctx)
        if isinstance(stmt.ty, ast.TNamed) and stmt.ty.name == "auto":
            declared = actual
        if not compatible(declared, actual):
            raise TypeError_(
                f"cannot initialise '{stmt.name}' of type {declared} with a value of "
                f"type {actual}",
                stmt.span,
            )
        if stmt.name in ctx.env and isinstance(ctx.env[stmt.name], ArrayTy):
            raise TypeError_(f"'{stmt.name}' shadows an array parameter", stmt.span)
        ctx.env[stmt.name] = declared
        return effects

    def _check_assign(self, stmt: ast.SAssign, ctx: _BodyContext) -> EffectSummary:
        if stmt.name not in ctx.env:
            if self.info.is_global(stmt.name):
                raise TypeError_(
                    f"cannot assign directly to global '{stmt.name}'; use Array.set",
                    stmt.span,
                )
            raise TypeError_(f"assignment to undeclared variable '{stmt.name}'", stmt.span)
        declared = ctx.env[stmt.name]
        actual, effects = self._check_expr(stmt.value, ctx)
        if not compatible(declared, actual):
            raise TypeError_(
                f"cannot assign a value of type {actual} to '{stmt.name}' of type {declared}",
                stmt.span,
            )
        return effects

    def _check_if(self, stmt: ast.SIf, ctx: _BodyContext) -> EffectSummary:
        cond_ty, cond_effects = self._check_expr(stmt.cond, ctx)
        if not isinstance(cond_ty, (BoolTy, IntTy)):
            raise TypeError_(f"if-condition must be a boolean, found {cond_ty}", stmt.cond.span)
        then_summary = self._check_block(stmt.then_body, ctx.child())
        else_summary = self._check_block(stmt.else_body, ctx.child())
        result = cond_effects
        result.append(BranchAccess([then_summary, else_summary]))
        return result

    def _check_match(self, stmt: ast.SMatch, ctx: _BodyContext) -> EffectSummary:
        result = EffectSummary()
        for scrutinee in stmt.scrutinees:
            ty, effects = self._check_expr(scrutinee, ctx)
            if not isinstance(ty, (IntTy, BoolTy)):
                raise TypeError_(f"match scrutinee must be an integer, found {ty}", scrutinee.span)
            result.extend(effects)
        alternatives = []
        for pattern, body in stmt.branches:
            if len(pattern) != len(stmt.scrutinees):
                raise TypeError_(
                    f"match pattern has {len(pattern)} fields but there are "
                    f"{len(stmt.scrutinees)} scrutinees",
                    stmt.span,
                )
            alternatives.append(self._check_block(body, ctx.child()))
        result.append(BranchAccess(alternatives))
        return result

    def _check_return(self, stmt: ast.SReturn, ctx: _BodyContext) -> EffectSummary:
        if ctx.kind == "handler":
            if stmt.value is not None:
                raise TypeError_("handlers do not return values", stmt.span)
            return EffectSummary()
        if stmt.value is None:
            if not isinstance(ctx.ret, VoidTy):
                raise TypeError_(
                    f"function '{ctx.name}' must return a value of type {ctx.ret}", stmt.span
                )
            return EffectSummary()
        actual, effects = self._check_expr(stmt.value, ctx)
        if isinstance(ctx.ret, VoidTy):
            raise TypeError_(f"void function '{ctx.name}' cannot return a value", stmt.span)
        if not compatible(ctx.ret, actual):
            raise TypeError_(
                f"function '{ctx.name}' returns {ctx.ret} but this statement returns {actual}",
                stmt.span,
            )
        return effects

    def _check_generate(self, stmt: ast.SGenerate, ctx: _BodyContext) -> EffectSummary:
        ty, effects = self._check_expr(stmt.event, ctx)
        if not isinstance(ty, EventTy):
            raise TypeError_(
                f"generate expects an event, found {ty}", stmt.event.span
            )
        for sub in ast.walk_expr(stmt.event):
            if isinstance(sub, ast.EEvent):
                ctx.generates.append(sub.name)
        return effects

    # -- expressions -------------------------------------------------------
    def _check_expr(self, expr: ast.Expr, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        if isinstance(expr, ast.EInt):
            return IntTy(expr.width or 32), EffectSummary()
        if isinstance(expr, ast.EBool):
            return BoolTy(), EffectSummary()
        if isinstance(expr, ast.EVar):
            return self._check_var(expr, ctx), EffectSummary()
        if isinstance(expr, ast.EUnary):
            return self._check_unary(expr, ctx)
        if isinstance(expr, ast.EBinary):
            return self._check_binary(expr, ctx)
        if isinstance(expr, ast.EGroup):
            effects = EffectSummary()
            for member in expr.members:
                ty, member_effects = self._check_expr(member, ctx)
                if not isinstance(ty, (IntTy, BoolTy)):
                    raise TypeError_("group members must be integers (locations)", member.span)
                effects.extend(member_effects)
            return GroupTy(), effects
        if isinstance(expr, ast.EEvent):
            return self._check_event_ctor(expr, ctx)
        if isinstance(expr, ast.ECall):
            return self._check_call(expr, ctx)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _check_var(self, expr: ast.EVar, ctx: _BodyContext) -> Ty:
        name = expr.name
        if name in ctx.env:
            return ctx.env[name]
        if self.info.is_global(name):
            g = self.info.globals[name]
            return ArrayTy(width=g.cell_width, stage=g.stage, global_name=name)
        if name in self.info.consts or name in self.info.consts.groups:
            if name in self.info.consts.groups:
                return GroupTy()
            return IntTy(32)
        if name == "SELF":
            return IntTy(32)
        if self.info.is_memop(name):
            raise TypeError_(
                f"memop '{name}' may only be used as an argument to an Array method",
                expr.span,
            )
        raise TypeError_(f"undefined variable '{name}'", expr.span)

    def _check_unary(self, expr: ast.EUnary, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        ty, effects = self._check_expr(expr.operand, ctx)
        if expr.op is ast.UnOp.NOT:
            if not isinstance(ty, (BoolTy, IntTy)):
                raise TypeError_(f"'!' expects a boolean, found {ty}", expr.span)
            return BoolTy(), effects
        if not isinstance(ty, IntTy):
            raise TypeError_(f"'{expr.op.value}' expects an integer, found {ty}", expr.span)
        return ty, effects

    _BOOL_OPS = frozenset({ast.BinOp.AND, ast.BinOp.OR})
    _CMP_OPS = frozenset(
        {ast.BinOp.EQ, ast.BinOp.NEQ, ast.BinOp.LT, ast.BinOp.GT, ast.BinOp.LE, ast.BinOp.GE}
    )

    def _check_binary(self, expr: ast.EBinary, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        left_ty, effects = self._check_expr(expr.left, ctx)
        right_ty, right_effects = self._check_expr(expr.right, ctx)
        effects.extend(right_effects)
        if expr.op in self._BOOL_OPS:
            for ty, side in ((left_ty, expr.left), (right_ty, expr.right)):
                if not isinstance(ty, (BoolTy, IntTy)):
                    raise TypeError_(f"'{expr.op.value}' expects booleans, found {ty}", side.span)
            return BoolTy(), effects
        if expr.op in self._CMP_OPS:
            if isinstance(left_ty, (ArrayTy, EventTy)) or isinstance(right_ty, (ArrayTy, EventTy)):
                raise TypeError_(
                    f"cannot compare values of type {left_ty} and {right_ty}", expr.span
                )
            return BoolTy(), effects
        for ty, side in ((left_ty, expr.left), (right_ty, expr.right)):
            if not isinstance(ty, (IntTy, BoolTy)):
                raise TypeError_(
                    f"arithmetic operator '{expr.op.value}' expects integers, found {ty}",
                    side.span,
                )
        width = 32
        if isinstance(left_ty, IntTy):
            width = left_ty.width
        if isinstance(right_ty, IntTy):
            width = max(width, right_ty.width) if isinstance(left_ty, IntTy) else right_ty.width
        return IntTy(width), effects

    def _check_event_ctor(self, expr: ast.EEvent, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        event = self.info.events.get(expr.name)
        if event is None:
            raise TypeError_(f"undefined event '{expr.name}'", expr.span)
        if len(expr.args) != len(event.params):
            raise TypeError_(
                f"event '{expr.name}' expects {len(event.params)} arguments, "
                f"found {len(expr.args)}",
                expr.span,
            )
        effects = EffectSummary()
        for arg, param in zip(expr.args, event.params):
            arg_ty, arg_effects = self._check_expr(arg, ctx)
            effects.extend(arg_effects)
            expected = from_surface(param.ty)
            if not compatible(expected, arg_ty):
                raise TypeError_(
                    f"argument '{param.name}' of event '{expr.name}' expects {expected}, "
                    f"found {arg_ty}",
                    arg.span,
                )
        return EventTy(), effects

    # -- calls -------------------------------------------------------------
    def _check_call(self, expr: ast.ECall, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        func = expr.func
        if func in ARRAY_METHODS:
            return self._check_array_method(expr, ctx)
        if func in EVENT_COMBINATORS:
            return self._check_event_combinator(expr, ctx)
        if func == "hash":
            return self._check_hash(expr, ctx)
        if func in ("Sys.time", "Sys.self", "Sys.random"):
            _, effects = self._check_args(expr, ctx)
            return IntTy(32), effects
        if func in ("drop", "forward", "flood", "printf"):
            _, effects = self._check_args(expr, ctx)
            return VoidTy(), effects
        if self.info.is_function(func):
            return self._check_user_call(expr, ctx)
        if func in self.info.externs:
            extern = self.info.externs[func]
            if len(expr.args) != len(extern.params):
                raise TypeError_(
                    f"extern '{func}' expects {len(extern.params)} arguments, "
                    f"found {len(expr.args)}",
                    expr.span,
                )
            _, effects = self._check_args(expr, ctx)
            return from_surface(extern.ret), effects
        if self.info.is_memop(func):
            raise TypeError_(
                f"memop '{func}' cannot be called directly; pass it to an Array method",
                expr.span,
            )
        if self.info.is_event(func):
            event_expr = ast.EEvent(span=expr.span, name=func, args=expr.args)
            return self._check_event_ctor(event_expr, ctx)
        raise TypeError_(f"call to undefined function '{func}'", expr.span)

    def _check_args(self, expr: ast.ECall, ctx: _BodyContext) -> Tuple[List[Ty], EffectSummary]:
        effects = EffectSummary()
        types: List[Ty] = []
        for arg in expr.args:
            ty, arg_effects = self._check_expr(arg, ctx)
            types.append(ty)
            effects.extend(arg_effects)
        return types, effects

    def _array_access(
        self, array_expr: ast.Expr, ctx: _BodyContext, method: str
    ) -> Tuple[ArrayTy, EffectSummary]:
        """Type the array argument of an Array method and produce its access."""
        ty, effects = self._check_expr(array_expr, ctx)
        if not isinstance(ty, ArrayTy):
            raise TypeError_(
                f"the first argument of {method} must be a global array, found {ty}",
                array_expr.span,
            )
        if ty.stage is not None and ty.global_name is not None:
            effects.append(ConcreteAccess(ty.stage, ty.global_name, array_expr.span))
        elif isinstance(array_expr, ast.EVar) and array_expr.name in ctx.array_params:
            effects.append(
                ParamAccess(ctx.array_params[array_expr.name], array_expr.name, array_expr.span)
            )
        return ty, effects

    def _check_memop_arg(self, arg: ast.Expr, method: str) -> str:
        if not isinstance(arg, ast.EVar) or not self.info.is_memop(arg.name):
            raise TypeError_(
                f"{method} expects the name of a declared memop here", arg.span
            )
        return arg.name

    def _check_array_method(self, expr: ast.ECall, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        func = expr.func
        arities = BUILTIN_FUNCTIONS[func]
        if len(expr.args) not in arities:
            raise TypeError_(
                f"{func} expects {' or '.join(str(a) for a in arities)} arguments, "
                f"found {len(expr.args)}",
                expr.span,
            )
        array_ty, effects = self._array_access(expr.args[0], ctx, func)
        # index argument
        idx_ty, idx_effects = self._check_expr(expr.args[1], ctx)
        effects.extend(idx_effects)
        if not isinstance(idx_ty, (IntTy, BoolTy)):
            raise TypeError_(f"{func} index must be an integer, found {idx_ty}", expr.args[1].span)
        rest = expr.args[2:]
        value_ty = IntTy(array_ty.width)
        if func == "Array.get":
            # Array.get(arr, idx) | Array.get(arr, idx, memop, arg)
            if len(rest) >= 1:
                self._check_memop_arg(rest[0], func)
            if len(rest) >= 2:
                self._check_int_arg(rest[1], ctx, effects, func)
            return value_ty, effects
        if func in ("Array.getm", "Array.setm"):
            self._check_memop_arg(rest[0], func)
            self._check_int_arg(rest[1], ctx, effects, func)
            return (value_ty if func == "Array.getm" else VoidTy()), effects
        if func == "Array.set":
            # Array.set(arr, idx, value) | Array.set(arr, idx, memop, arg)
            if len(rest) == 1:
                self._check_int_arg(rest[0], ctx, effects, func)
            else:
                self._check_memop_arg(rest[0], func)
                self._check_int_arg(rest[1], ctx, effects, func)
            return VoidTy(), effects
        if func == "Array.update":
            # Array.update(arr, idx, get_memop, get_arg, set_memop, set_arg)
            if len(rest) == 3:
                self._check_memop_arg(rest[0], func)
                self._check_int_arg(rest[1], ctx, effects, func)
                self._check_int_arg(rest[2], ctx, effects, func)
            else:
                self._check_memop_arg(rest[0], func)
                self._check_int_arg(rest[1], ctx, effects, func)
                self._check_memop_arg(rest[2], func)
                self._check_int_arg(rest[3], ctx, effects, func)
            return value_ty, effects
        raise AssertionError(f"unhandled array method {func}")

    def _check_int_arg(
        self, arg: ast.Expr, ctx: _BodyContext, effects: EffectSummary, func: str
    ) -> None:
        ty, arg_effects = self._check_expr(arg, ctx)
        effects.extend(arg_effects)
        if not isinstance(ty, (IntTy, BoolTy)):
            raise TypeError_(f"{func} expects an integer argument here, found {ty}", arg.span)

    def _check_event_combinator(
        self, expr: ast.ECall, ctx: _BodyContext
    ) -> Tuple[Ty, EffectSummary]:
        if len(expr.args) != 2:
            raise TypeError_(f"{expr.func} expects 2 arguments, found {len(expr.args)}", expr.span)
        event_ty, effects = self._check_expr(expr.args[0], ctx)
        if not isinstance(event_ty, EventTy):
            raise TypeError_(
                f"the first argument of {expr.func} must be an event, found {event_ty}",
                expr.args[0].span,
            )
        arg_ty, arg_effects = self._check_expr(expr.args[1], ctx)
        effects.extend(arg_effects)
        if expr.func == "Event.delay":
            if not isinstance(arg_ty, (IntTy, BoolTy)):
                raise TypeError_(
                    f"Event.delay expects a time in nanoseconds, found {arg_ty}",
                    expr.args[1].span,
                )
        else:  # locate / sslocate
            if not isinstance(arg_ty, (IntTy, BoolTy, GroupTy)):
                raise TypeError_(
                    f"{expr.func} expects a location or group, found {arg_ty}",
                    expr.args[1].span,
                )
        return EventTy(), effects

    def _check_hash(self, expr: ast.ECall, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        arg_tys, effects = self._check_args(expr, ctx)
        # hash units fold integer words only: an event or group argument has
        # no word representation and each engine would fail differently
        for arg, ty in zip(expr.args, arg_tys):
            if not isinstance(ty, (IntTy, BoolTy)):
                raise TypeError_(f"hash arguments must be integers, found {ty}", arg.span)
        width = expr.size_args[0] if expr.size_args else 32
        return IntTy(width), effects

    def _check_user_call(self, expr: ast.ECall, ctx: _BodyContext) -> Tuple[Ty, EffectSummary]:
        fun = self.info.functions[expr.func]
        summary, ret = self._summarise_function(expr.func)
        if len(expr.args) != len(fun.params):
            raise TypeError_(
                f"function '{expr.func}' expects {len(fun.params)} arguments, "
                f"found {len(expr.args)}",
                expr.span,
            )
        effects = EffectSummary()
        bindings: Dict[int, ConcreteAccess] = {}
        for index, (arg, param) in enumerate(zip(expr.args, fun.params)):
            arg_ty, arg_effects = self._check_expr(arg, ctx)
            effects.extend(arg_effects)
            expected = from_surface(param.ty)
            if not compatible(expected, arg_ty):
                raise TypeError_(
                    f"argument '{param.name}' of '{expr.func}' expects {expected}, "
                    f"found {arg_ty}",
                    arg.span,
                )
            if isinstance(expected, ArrayTy):
                if not isinstance(arg_ty, ArrayTy):
                    raise TypeError_(
                        f"argument '{param.name}' of '{expr.func}' must be a global array",
                        arg.span,
                    )
                if arg_ty.stage is not None and arg_ty.global_name is not None:
                    bindings[index] = ConcreteAccess(arg_ty.stage, arg_ty.global_name, arg.span)
        effects.extend(summary.substitute(bindings))
        return ret, effects


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------
def check_program(
    source: "str | ast.Program",
    name: str = "<string>",
    symbolic_bindings: Optional[Dict[str, int]] = None,
    group_bindings: Optional[Dict[str, List[int]]] = None,
) -> CheckedProgram:
    """Parse (if needed) and fully check a Lucid program.

    ``group_bindings`` overrides the members of ``const group`` declarations
    (e.g. ``NEIGHBORS``) so the same program text can be instantiated
    per-switch against a concrete topology.

    Raises :class:`~repro.errors.LucidError` subclasses on any failure; returns
    a :class:`CheckedProgram` on success.
    """
    program = parse_program(source, name=name) if isinstance(source, str) else source
    info = collect_program_info(program, symbolic_bindings, group_bindings)
    check_all_memops(program)
    checker = TypeChecker(info)
    return checker.check()
