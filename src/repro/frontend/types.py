"""Internal (checked) type representations.

Surface types (:mod:`repro.frontend.ast`) are what the parser produces;
this module defines the semantic types the checker assigns to expressions.
The important addition over the surface syntax is that an array type carries
its *stage* — the declaration index of the underlying global — which is what
the ordered type-and-effect system reasons about (Section 5, Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend import ast


@dataclass(frozen=True)
class Ty:
    """Base class of semantic types."""

    def show(self) -> str:  # pragma: no cover - overridden everywhere
        return "<ty>"

    def __str__(self) -> str:
        return self.show()


@dataclass(frozen=True)
class IntTy(Ty):
    """A fixed-width integer; ``width`` defaults to 32 bits."""

    width: int = 32

    def show(self) -> str:
        return f"int<<{self.width}>>" if self.width != 32 else "int"


@dataclass(frozen=True)
class BoolTy(Ty):
    def show(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidTy(Ty):
    def show(self) -> str:
        return "void"


@dataclass(frozen=True)
class EventTy(Ty):
    """A first-class event value (name resolved, payload bound)."""

    def show(self) -> str:
        return "event"


@dataclass(frozen=True)
class GroupTy(Ty):
    def show(self) -> str:
        return "group"


@dataclass(frozen=True)
class ArrayTy(Ty):
    """A persistent array; ``stage`` is the declaration index of the global it
    refers to, or ``None`` for an array-typed formal parameter whose stage is
    only known at a call site (a *polymorphic* effect)."""

    width: int = 32
    stage: Optional[int] = None
    global_name: Optional[str] = None

    def show(self) -> str:
        where = f"@{self.stage}" if self.stage is not None else "@?"
        return f"Array<<{self.width}>>{where}"


def from_surface(ty: ast.TypeExpr) -> Ty:
    """Translate a surface type annotation to a semantic type."""
    if isinstance(ty, ast.TInt):
        return IntTy(ty.width)
    if isinstance(ty, ast.TBool):
        return BoolTy()
    if isinstance(ty, ast.TVoid):
        return VoidTy()
    if isinstance(ty, ast.TEvent):
        return EventTy()
    if isinstance(ty, ast.TGroup):
        return GroupTy()
    if isinstance(ty, ast.TArray):
        return ArrayTy(width=ty.width)
    if isinstance(ty, ast.TNamed):
        # 'auto' and unresolved names default to 32-bit ints; real Lucid has
        # type inference here, which we approximate.
        return IntTy(32)
    raise AssertionError(f"unknown surface type {ty!r}")


def compatible(expected: Ty, actual: Ty) -> bool:
    """Structural compatibility used for argument / assignment checking.

    Integer widths are checked loosely (a narrower value may flow into a wider
    slot); arrays must match on width, and stages are checked by the effect
    system rather than here.
    """
    if isinstance(expected, IntTy) and isinstance(actual, IntTy):
        return actual.width <= expected.width or expected.width == 32
    if isinstance(expected, BoolTy) and isinstance(actual, (BoolTy, IntTy)):
        # comparisons produce bools; the applications freely mix flag ints and
        # bools, as does the paper's example code.
        return True
    if isinstance(expected, IntTy) and isinstance(actual, BoolTy):
        return True
    if isinstance(expected, ArrayTy) and isinstance(actual, ArrayTy):
        return expected.width == actual.width
    return type(expected) is type(actual)
