"""The Lucid language frontend: lexer, parser, memop checks, and the ordered
type-and-effect system."""

from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_expression, parse_program
from repro.frontend.memop_check import check_all_memops, check_memop
from repro.frontend.symbols import ProgramInfo, collect_program_info
from repro.frontend.type_checker import CheckedProgram, check_program

__all__ = [
    "tokenize",
    "parse_program",
    "parse_expression",
    "check_memop",
    "check_all_memops",
    "collect_program_info",
    "ProgramInfo",
    "check_program",
    "CheckedProgram",
]
