"""Source-text management: files, positions, and spans.

Everything the frontend reports back to the programmer is anchored to a
:class:`Span`, which knows how to render a caret-annotated snippet.  This is
the substrate for the paper's "source-level error messages that tell us
exactly what is wrong" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class SourceFile:
    """A unit of Lucid source text.

    Parameters
    ----------
    name:
        A display name, e.g. a file path or ``"<string>"``.
    text:
        The full program text.
    """

    name: str
    text: str

    @property
    def line_starts(self) -> List[int]:
        """Offsets of the first character of every line (computed lazily)."""
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        return starts

    def line_col(self, offset: int) -> tuple[int, int]:
        """Translate a character offset into a 1-based (line, column) pair."""
        offset = max(0, min(offset, len(self.text)))
        starts = self.line_starts
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1, offset - starts[lo] + 1

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line number (without newline)."""
        starts = self.line_starts
        if line < 1 or line > len(starts):
            return ""
        begin = starts[line - 1]
        end = self.text.find("\n", begin)
        if end == -1:
            end = len(self.text)
        return self.text[begin:end]


@dataclass(frozen=True)
class Span:
    """A half-open range ``[start, end)`` of characters in a source file."""

    source: SourceFile
    start: int
    end: int

    @property
    def line(self) -> int:
        return self.source.line_col(self.start)[0]

    @property
    def column(self) -> int:
        return self.source.line_col(self.start)[1]

    @property
    def text(self) -> str:
        return self.source.text[self.start : self.end]

    def merge(self, other: Optional["Span"]) -> "Span":
        """Return the smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        return Span(self.source, min(self.start, other.start), max(self.end, other.end))

    def render(self, context: int = 0) -> str:
        """Render a caret-annotated snippet pointing at this span."""
        line, col = self.source.line_col(self.start)
        end_line, end_col = self.source.line_col(max(self.start, self.end - 1))
        lines = []
        lines.append(f"  --> {self.source.name}:{line}:{col}")
        first = max(1, line - context)
        last = min(len(self.source.line_starts), end_line + context)
        width = len(str(last))
        for ln in range(first, last + 1):
            text = self.source.line_text(ln)
            lines.append(f"  {str(ln).rjust(width)} | {text}")
            if ln == line:
                if end_line == line:
                    n_carets = max(1, end_col - col + 1)
                else:
                    n_carets = max(1, len(text) - col + 1)
                lines.append("  " + " " * width + " | " + " " * (col - 1) + "^" * n_carets)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line, col = self.source.line_col(self.start)
        return f"Span({self.source.name}:{line}:{col})"


def dummy_span(text: str = "") -> Span:
    """A span for synthesised nodes that have no real source location."""
    src = SourceFile("<generated>", text)
    return Span(src, 0, len(text))
