"""Compile-time constant evaluation.

Lucid programs size their global arrays with ``const`` declarations (and
``symbolic size`` placeholders bound by the harness).  This module folds
constant expressions, resolves the ``size`` of every ``global`` declaration,
and builds the constant environment that later phases (type checker,
interpreter, backend) consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.errors import ConstError
from repro.frontend import ast


#: Built-in constants available to every program.  ``SELF`` is the switch's
#: own location and is bound at runtime; it still needs a compile-time stand-in
#: so constant folding of unrelated expressions does not fail.
BUILTIN_CONSTS: Dict[str, int] = {
    "TCP": 6,
    "UDP": 17,
    "ICMP": 1,
    "DNS_PORT": 53,
    "RECIRC_PORT": 196,
}


@dataclass
class ConstEnv:
    """A resolved mapping from constant names to integer values."""

    values: Dict[str, int] = field(default_factory=dict)
    groups: Dict[str, list] = field(default_factory=dict)

    def lookup(self, name: str) -> Optional[int]:
        if name in self.values:
            return self.values[name]
        return BUILTIN_CONSTS.get(name)

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None


def eval_const_expr(expr: ast.Expr, env: ConstEnv) -> int:
    """Evaluate ``expr`` to an integer using only compile-time information."""
    if isinstance(expr, ast.EInt):
        return expr.value
    if isinstance(expr, ast.EBool):
        return 1 if expr.value else 0
    if isinstance(expr, ast.EVar):
        value = env.lookup(expr.name)
        if value is None:
            raise ConstError(f"'{expr.name}' is not a compile-time constant", expr.span)
        return value
    if isinstance(expr, ast.EUnary):
        val = eval_const_expr(expr.operand, env)
        if expr.op is ast.UnOp.NEG:
            return -val
        if expr.op is ast.UnOp.BITNOT:
            return ~val & 0xFFFFFFFF
        if expr.op is ast.UnOp.NOT:
            return 0 if val else 1
    if isinstance(expr, ast.EBinary):
        left = eval_const_expr(expr.left, env)
        right = eval_const_expr(expr.right, env)
        return _apply_binop(expr, left, right)
    raise ConstError("expression is not a compile-time constant", expr.span)


def _apply_binop(expr: ast.EBinary, left: int, right: int) -> int:
    op = expr.op
    if op is ast.BinOp.ADD:
        return left + right
    if op is ast.BinOp.SUB:
        return left - right
    if op is ast.BinOp.MUL:
        return left * right
    if op is ast.BinOp.DIV:
        if right == 0:
            raise ConstError("division by zero in constant expression", expr.span)
        return left // right
    if op is ast.BinOp.MOD:
        if right == 0:
            raise ConstError("modulo by zero in constant expression", expr.span)
        return left % right
    if op is ast.BinOp.BITAND:
        return left & right
    if op is ast.BinOp.BITOR:
        return left | right
    if op is ast.BinOp.BITXOR:
        return left ^ right
    if op is ast.BinOp.SHL:
        return left << right
    if op is ast.BinOp.SHR:
        return left >> right
    if op is ast.BinOp.EQ:
        return int(left == right)
    if op is ast.BinOp.NEQ:
        return int(left != right)
    if op is ast.BinOp.LT:
        return int(left < right)
    if op is ast.BinOp.GT:
        return int(left > right)
    if op is ast.BinOp.LE:
        return int(left <= right)
    if op is ast.BinOp.GE:
        return int(left >= right)
    if op is ast.BinOp.AND:
        return int(bool(left) and bool(right))
    if op is ast.BinOp.OR:
        return int(bool(left) or bool(right))
    raise ConstError(f"operator {op.value!r} not allowed in constant expressions", expr.span)


def build_const_env(
    program: ast.Program,
    symbolic_bindings: Optional[Dict[str, int]] = None,
    group_bindings: Optional[Dict[str, Sequence[int]]] = None,
) -> ConstEnv:
    """Fold all ``const`` and ``symbolic`` declarations of ``program``.

    ``symbolic_bindings`` lets a harness override the default value of
    ``symbolic size`` declarations (e.g. to sweep table sizes in benchmarks).
    ``group_bindings`` likewise overrides the members of ``const group``
    declarations, which is how the scenario engine binds each switch's
    neighbour set (``NEIGHBORS``, ``PEERS``, ``REPLICAS``, ...) from a
    topology instead of the literal written in the program text.
    """
    env = ConstEnv()
    bindings = symbolic_bindings or {}
    groups = group_bindings or {}
    for decl in program.decls:
        if isinstance(decl, ast.DSymbolic):
            env.values[decl.name] = bindings.get(decl.name, decl.default)
        elif isinstance(decl, ast.DConst):
            if isinstance(decl.ty, ast.TGroup):
                if not isinstance(decl.value, ast.EGroup):
                    raise ConstError(
                        f"group constant '{decl.name}' must be initialised with a group literal",
                        decl.span,
                    )
                if decl.name in groups:
                    env.groups[decl.name] = [int(m) for m in groups[decl.name]]
                else:
                    env.groups[decl.name] = [eval_const_expr(m, env) for m in decl.value.members]
                # groups also get a scalar stand-in (their first member) so
                # they can appear in integer contexts such as comparisons.
                env.values[decl.name] = env.groups[decl.name][0] if env.groups[decl.name] else 0
            else:
                env.values[decl.name] = eval_const_expr(decl.value, env)
    return env


def resolve_global_sizes(program: ast.Program, env: ConstEnv) -> None:
    """Fill in the ``size`` field of every global declaration, in place."""
    for decl in program.globals():
        size = eval_const_expr(decl.size_expr, env)
        if size <= 0:
            raise ConstError(
                f"global '{decl.name}' has non-positive size {size}", decl.span
            )
        decl.size = size
