"""The public API of the Lucid reproduction.

Typical usage::

    from repro.core import compile_program, check_program, Network, EventInstance

    compiled = compile_program(open("firewall.lucid").read(), name="firewall")
    print(compiled.stages(), "pipeline stages")
    print(compiled.p4.full_text())

    network, switch = single_switch_network(compiled.checked)
    network.inject(0, EventInstance("pkt_out", (1, 2)))
    network.run()

The submodules group the functionality the same way the paper does:

* :mod:`repro.frontend` — parsing, memop checks, the ordered type system;
* :mod:`repro.backend`  — the optimising compiler and P4 generation;
* :mod:`repro.interp`   — the interpreter and multi-switch simulation;
* :mod:`repro.pisa`     — the PISA/Tofino hardware substrate models;
* :mod:`repro.apps`     — the ten applications of Figure 9;
* :mod:`repro.analysis`, :mod:`repro.workloads`, :mod:`repro.control` — the
  evaluation's models, workload generators, and the remote-control baseline;
* :mod:`repro.scenarios` — the scenario engine: topologies, streaming
  traffic models, invariants, and the ``python -m repro.scenarios`` CLI;
* :mod:`repro.formal`   — the Appendix A core calculus.
"""

from repro.apps import ALL_APPLICATIONS, Application, FirewallExperiment
from repro.backend import (
    CompiledProgram,
    CompilerOptions,
    MergeOptions,
    P4Program,
    PipelineLayout,
    TofinoModel,
    compile_checked,
    compile_program,
    count_lucid_loc,
    generate_p4,
)
from repro.control import ControlPlaneConfig, RemoteController
from repro.errors import (
    LayoutError,
    LexError,
    LucidError,
    MemopError,
    OrderError,
    ParseError,
    TypeError_,
)
from repro.frontend import CheckedProgram, check_program, parse_program
from repro.interp import (
    ENGINE_NAMES,
    ENGINES,
    CompiledEngine,
    CompiledSwitchRuntime,
    EventInstance,
    HandlerCompiler,
    HandlerInterpreter,
    Network,
    PisaEngine,
    ReferenceEngine,
    RuntimeArray,
    SchedulerConfig,
    Switch,
    SwitchEngine,
    SwitchRuntime,
    lucid_hash,
    make_engine,
    register_engine,
    resolve_engine_name,
    single_switch_network,
)
from repro.pisa import PisaPipeline, simulate_concurrent_delays
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    run_scenario,
    run_scenario_all_engines,
    run_scenario_both,
    run_scenario_engines,
)
from repro.workloads import DnsTrafficMix, FlowWorkload, LinkFailureSchedule

__all__ = [
    # language frontend
    "parse_program",
    "check_program",
    "CheckedProgram",
    # compiler
    "compile_program",
    "compile_checked",
    "CompilerOptions",
    "CompiledProgram",
    "MergeOptions",
    "PipelineLayout",
    "P4Program",
    "TofinoModel",
    "generate_p4",
    "count_lucid_loc",
    # interpreter / simulation
    "Network",
    "Switch",
    "SwitchRuntime",
    "HandlerInterpreter",
    "CompiledSwitchRuntime",
    "HandlerCompiler",
    # execution engines
    "SwitchEngine",
    "ReferenceEngine",
    "CompiledEngine",
    "PisaEngine",
    "ENGINES",
    "ENGINE_NAMES",
    "make_engine",
    "register_engine",
    "resolve_engine_name",
    "EventInstance",
    "RuntimeArray",
    "SchedulerConfig",
    "single_switch_network",
    "lucid_hash",
    "PisaPipeline",
    "simulate_concurrent_delays",
    # applications and evaluation support
    "ALL_APPLICATIONS",
    "Application",
    "FirewallExperiment",
    "RemoteController",
    "ControlPlaneConfig",
    "FlowWorkload",
    "DnsTrafficMix",
    "LinkFailureSchedule",
    # scenario engine
    "SCENARIOS",
    "Scenario",
    "run_scenario",
    "run_scenario_engines",
    "run_scenario_all_engines",
    "run_scenario_both",
    # errors
    "LucidError",
    "LexError",
    "ParseError",
    "MemopError",
    "TypeError_",
    "OrderError",
    "LayoutError",
]
