"""Command-line entry point of the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios run <name> [--events N] [--seed S]
                                  [--fast-path | --reference | --both]
                                  [--json PATH] [--quiet]

``run`` exits 0 when every invariant held (and, with ``--both``, when the
compiled and reference engines produced identical verdicts and final array
states); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.scenarios.registry import SCENARIOS, get
from repro.scenarios.runner import ScenarioResult, run_scenario, run_scenario_both


def _print_listing() -> None:
    width = max(len(name) for name in SCENARIOS)
    print(f"{'name'.ljust(width)}  app     topology        title")
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(f"{name.ljust(width)}  {s.app_key.ljust(6)}  {s.topology.ljust(14)}  {s.title}")


def _print_result(result: ScenarioResult, quiet: bool) -> None:
    status = "ok" if result.ok else "FAILED"
    print(
        f"[{result.engine}] {result.scenario}: {status} — "
        f"{result.events_injected} injected, {result.events_handled} handled, "
        f"{result.sim_ns / 1e6:.2f} ms simulated, "
        f"{result.events_per_sec:,.0f} events/s, digest {result.array_digest}"
    )
    for report in result.invariants:
        mark = "ok " if report.ok else "VIOLATED"
        print(f"  [{mark}] {report.name}" + (f" ({report.violations} violations)" if not report.ok else ""))
        if not report.ok and not quiet:
            for message in report.messages:
                print(f"        {message}")
    if result.details and not quiet:
        for key, value in result.details.items():
            print(f"  {key}: {value}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the bundled scenarios")
    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("name", help="scenario name (see 'list')")
    run_parser.add_argument("--events", type=int, default=20_000,
                            help="traffic events to stream (default 20000)")
    run_parser.add_argument("--seed", type=int, default=1, help="workload seed")
    engine = run_parser.add_mutually_exclusive_group()
    engine.add_argument("--fast-path", action="store_true", default=False,
                        help="compiled-closure engine only (the default)")
    engine.add_argument("--reference", action="store_true",
                        help="tree-walking reference engine only")
    engine.add_argument("--both", action="store_true",
                        help="run both engines and require identical verdicts "
                        "and final array states")
    run_parser.add_argument("--json", type=str, default="",
                            help="also write the result(s) as JSON to PATH")
    run_parser.add_argument("--quiet", action="store_true",
                            help="suppress violation messages and details")
    args = parser.parse_args(argv)

    if args.command == "list":
        _print_listing()
        return 0

    try:
        scenario = get(args.name)
    except KeyError as exc:
        print(exc.args[0])
        return 2

    results: List[ScenarioResult] = []
    if args.both:
        try:
            fast, reference = run_scenario_both(scenario, args.events, args.seed)
        except AssertionError as exc:
            print(f"ENGINE MISMATCH: {exc}")
            return 1
        results = [fast, reference]
    else:
        # --fast-path and the default both select the compiled engine
        fast_path = args.fast_path or not args.reference
        results = [run_scenario(scenario, args.events, args.seed, fast_path=fast_path)]

    for result in results:
        _print_result(result, args.quiet)
    if args.both:
        print("engines agree: identical invariant verdicts and array states")

    if args.json:
        payload = [r.to_dict() for r in results]
        with open(args.json, "w") as fh:
            json.dump(payload if len(payload) > 1 else payload[0], fh, indent=2)
        print(f"wrote {args.json}")

    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
