"""Command-line entry point of the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios run <name> [--events N] [--seed S]
                                  [--engine reference|compiled|pisa]
                                  [--all-engines | --both]
                                  [--json PATH] [--quiet]

``--engine`` selects the execution engine (default ``compiled``);
``--all-engines`` runs reference, compiled, AND the PISA pipeline engine and
requires identical invariant verdicts and final array digests across all
three (``--both`` is the older two-engine form).  ``run`` exits 0 when every
invariant held (and, with ``--both``/``--all-engines``, when the engines
agreed); 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.interp.engine import ENGINE_NAMES
from repro.scenarios.registry import SCENARIOS, get
from repro.scenarios.runner import (
    ScenarioResult,
    run_scenario,
    run_scenario_all_engines,
    run_scenario_both,
)


def _print_listing() -> None:
    width = max(len(name) for name in SCENARIOS)
    print(f"{'name'.ljust(width)}  app     topology        title")
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(f"{name.ljust(width)}  {s.app_key.ljust(6)}  {s.topology.ljust(14)}  {s.title}")


def _print_result(result: ScenarioResult, quiet: bool) -> None:
    status = "ok" if result.ok else "FAILED"
    print(
        f"[{result.engine}] {result.scenario}: {status} — "
        f"{result.events_injected} injected, {result.events_handled} handled, "
        f"{result.sim_ns / 1e6:.2f} ms simulated, "
        f"{result.events_per_sec:,.0f} events/s, digest {result.array_digest}"
    )
    for report in result.invariants:
        mark = "ok " if report.ok else "VIOLATED"
        print(f"  [{mark}] {report.name}" + (f" ({report.violations} violations)" if not report.ok else ""))
        if not report.ok and not quiet:
            for message in report.messages:
                print(f"        {message}")
    totals = result.pipeline_totals
    if totals:
        print(
            "  pipeline: "
            f"{totals.get('stages', 0)} stages occupied, "
            f"{totals.get('recirculated_events', 0)} events recirculated, "
            f"peak queue depth {totals.get('peak_queue_depth', 0)}, "
            f"{totals.get('recirc_passes', 0)} recirc passes "
            f"({totals.get('recirc_bytes', 0)} B"
            + (
                f", {totals['recirc_bandwidth_bps'] / 1e9:.3f} Gb/s"
                if "recirc_bandwidth_bps" in totals
                else ""
            )
            + f"), {totals.get('recirc_drops', 0)} queue-overflow drops"
        )
    if result.details and not quiet:
        for key, value in result.details.items():
            print(f"  {key}: {value}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the bundled scenarios")
    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("name", help="scenario name (see 'list')")
    run_parser.add_argument("--events", type=int, default=20_000,
                            help="traffic events to stream (default 20000)")
    run_parser.add_argument("--seed", type=int, default=1, help="workload seed")
    engine = run_parser.add_mutually_exclusive_group()
    engine.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                        help="execution engine (default: compiled)")
    engine.add_argument("--fast-path", action="store_true", default=False,
                        help="compiled-closure engine only (deprecated alias "
                        "for --engine compiled)")
    engine.add_argument("--reference", action="store_true",
                        help="tree-walking reference engine only (deprecated "
                        "alias for --engine reference)")
    engine.add_argument("--both", action="store_true",
                        help="run the compiled and reference engines and "
                        "require identical verdicts and final array states")
    engine.add_argument("--all-engines", action="store_true",
                        help="run ALL engines (reference, compiled, pisa) and "
                        "require identical verdicts and final array states")
    run_parser.add_argument("--json", type=str, default="",
                            help="also write the result(s) as JSON to PATH")
    run_parser.add_argument("--quiet", action="store_true",
                            help="suppress violation messages and details")
    args = parser.parse_args(argv)

    if args.command == "list":
        _print_listing()
        return 0

    try:
        scenario = get(args.name)
    except KeyError as exc:
        print(exc.args[0])
        return 2

    results: List[ScenarioResult] = []
    if args.both or args.all_engines:
        try:
            if args.all_engines:
                results = run_scenario_all_engines(scenario, args.events, args.seed)
            else:
                results = list(run_scenario_both(scenario, args.events, args.seed))
        except AssertionError as exc:
            print(f"ENGINE MISMATCH: {exc}")
            return 1
    else:
        if args.engine:
            engine_name = args.engine
        elif args.reference:
            engine_name = "reference"
        else:
            # --fast-path and the default both select the compiled engine
            engine_name = "compiled"
        results = [run_scenario(scenario, args.events, args.seed, engine=engine_name)]

    for result in results:
        _print_result(result, args.quiet)
    if args.both or args.all_engines:
        engines = ", ".join(r.engine for r in results)
        print(f"engines agree ({engines}): identical invariant verdicts and array states")

    if args.json:
        payload = [r.to_dict() for r in results]
        with open(args.json, "w") as fh:
            json.dump(payload if len(payload) > 1 else payload[0], fh, indent=2)
        print(f"wrote {args.json}")

    return 0 if all(r.ok for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
