"""Command-line entry point of the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios run <name> [--events N] [--seed S]
                                  [--engine reference|compiled|pisa]
                                  [--all-engines | --both]
                                  [--shards N] [--shard-engines E1,E2,...]
                                  [--trace PATH] [--profile] [--metrics]
                                  [--json PATH] [--quiet]
    python -m repro.scenarios serve <name> [--events N | --unbounded]
                                  [--seed S] [--engine E]
                                  [--checkpoint-dir DIR] [--checkpoint-every N]
                                  [--telemetry PATH] [--telemetry-every N]
                                  [--telemetry-flush-every N]
                                  [--chunk N] [--keep N] [--max-events N]
                                  [--fresh]
    python -m repro.scenarios soak [<name> ...] [--events N] [--seed S]
                                  [--engine E] [--checkpoint-at N] [--json PATH]

``--engine`` selects the execution engine (default ``compiled``);
``--all-engines`` runs reference, compiled, AND the PISA pipeline engine and
requires identical invariant verdicts and final array digests across all
three (``--both`` is the older two-engine form).  ``run`` exits 0 when every
invariant held (and, with ``--both``/``--all-engines``, when the engines
agreed); 1 otherwise.

Observability (see :mod:`repro.obs`): ``--trace PATH`` writes the run's
event-lifecycle span tree as Chrome trace-event JSON (open in Perfetto);
with ``--both``/``--all-engines`` one file per engine is written
(``out.<engine>.json``) and the traces are required to be byte-identical.
``--profile`` prints a top-N hot-handler report (plus per-PISA-stage rows);
``--metrics`` enables the global metrics registry and dumps its Prometheus
text exposition after the run.

``--shards N`` partitions the topology over N worker processes under the
conservative-lookahead barrier (see :mod:`repro.shard`); results are
byte-identical to ``--shards 1``.  ``--shard-engines`` optionally names one
engine per shard (comma-separated).  Sharding composes with ``--metrics``
(worker registries are merged) but not with ``--trace``/``--profile`` or
``--both``/``--all-engines``.

``serve`` runs the scenario as a long-lived process: traffic streams in
bounded chunks, JSON-lines telemetry goes to ``--telemetry`` (stderr by
default), rolling checkpoints land in ``--checkpoint-dir``, SIGTERM/SIGINT
stop cleanly after writing a checkpoint, and a restarted serve resumes from
the newest checkpoint (``--fresh`` ignores it).  Exit code: 0 when stopped
mid-stream or finished with all invariants holding, 1 on violations.

``soak`` is the checkpoint/restore determinism gate: for each named
scenario (default: all) it runs straight-through AND interrupted+resumed at
``--checkpoint-at`` handled events (default: half), and exits non-zero
unless both runs agree on every deterministic field.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.interp.engine import ENGINE_NAMES
from repro.scenarios.registry import SCENARIOS, get
from repro.scenarios.runner import (
    ScenarioResult,
    run_scenario,
    run_scenario_engines,
)


def _print_listing() -> None:
    width = max(len(name) for name in SCENARIOS)
    print(f"{'name'.ljust(width)}  app     topology        title")
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(f"{name.ljust(width)}  {s.app_key.ljust(6)}  {s.topology.ljust(14)}  {s.title}")


def _print_result(result: ScenarioResult, quiet: bool) -> None:
    status = "ok" if result.ok else "FAILED"
    print(
        f"[{result.engine}] {result.scenario}: {status} — "
        f"{result.events_injected} injected, {result.events_handled} handled, "
        f"{result.sim_ns / 1e6:.2f} ms simulated, "
        f"{result.events_per_sec:,.0f} events/s, digest {result.array_digest}"
    )
    for report in result.invariants:
        mark = "ok " if report.ok else "VIOLATED"
        print(f"  [{mark}] {report.name}" + (f" ({report.violations} violations)" if not report.ok else ""))
        if not report.ok and not quiet:
            for message in report.messages:
                print(f"        {message}")
    totals = result.pipeline_totals
    if totals:
        print(
            "  pipeline: "
            f"{totals.get('stages', 0)} stages occupied, "
            f"{totals.get('recirculated_events', 0)} events recirculated, "
            f"peak queue depth {totals.get('peak_queue_depth', 0)}, "
            f"{totals.get('recirc_passes', 0)} recirc passes "
            f"({totals.get('recirc_bytes', 0)} B"
            + (
                f", {totals['recirc_bandwidth_bps'] / 1e9:.3f} Gb/s"
                if "recirc_bandwidth_bps" in totals
                else ""
            )
            + f"), {totals.get('recirc_drops', 0)} queue-overflow drops"
        )
    if result.details and not quiet:
        for key, value in result.details.items():
            print(f"  {key}: {value}")
    if result.profile:
        _print_profile(result)


def _print_profile(result: ScenarioResult) -> None:
    rows = result.profile.get("hot_handlers", [])
    if rows:
        print(f"  hot handlers ({result.engine}):")
        header = f"    {'handler':<20} {'calls':>8} {'wall_s':>10} {'share':>7} {'us/call':>9}"
        print(header)
        for row in rows:
            print(
                f"    {row['handler']:<20} {row['calls']:>8} "
                f"{row['wall_s']:>10.6f} {row['wall_share'] * 100:>6.1f}% "
                f"{row['us_per_call']:>9.3f}"
            )
    stages = result.profile.get("stages", [])
    if stages:
        print(f"  pipeline stages ({result.engine}):")
        print(f"    {'stage':>5} {'events':>9} {'tables':>9} {'wall_s':>10}")
        for row in stages:
            print(
                f"    {row['stage']:>5} {row['events']:>9} "
                f"{row['tables_executed']:>9} {row['wall_s']:>10.6f}"
            )


def _trace_path(base: str, engine: str, multi: bool) -> str:
    """Per-engine trace file name: ``out.json`` -> ``out.<engine>.json``."""
    if not multi:
        return base
    root, dot, ext = base.rpartition(".")
    return f"{root}.{engine}.{ext}" if dot else f"{base}.{engine}"


def _serve(args) -> int:
    # imported here: the service layer is only needed by this subcommand
    from repro.service.server import (
        UNBOUNDED_EVENTS,
        ScenarioService,
        ServiceConfig,
    )

    try:
        scenario = get(args.name)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    telemetry_stream = None
    telemetry_file = None
    if args.telemetry and args.telemetry != "-":
        telemetry_file = open(args.telemetry, "a")
        telemetry_stream = telemetry_file
    config = ServiceConfig(
        engine=args.engine,
        seed=args.seed,
        events=UNBOUNDED_EVENTS if args.unbounded else args.events,
        checkpoint_dir=args.checkpoint_dir or None,
        checkpoint_every=args.checkpoint_every,
        keep_checkpoints=args.keep,
        telemetry_every=args.telemetry_every,
        telemetry_flush_every=args.telemetry_flush_every,
        chunk_events=args.chunk,
        max_events=args.max_events,
        resume=not args.fresh,
        telemetry_stream=telemetry_stream,
    )
    service = ScenarioService(scenario, config)
    service.install_signal_handlers()
    try:
        outcome = service.run()
    finally:
        if telemetry_file is not None:
            telemetry_file.close()
    if outcome.resumed_from:
        print(f"resumed from {outcome.resumed_from}")
    if outcome.stopped:
        print(
            f"[{args.engine}] {scenario.name}: stopped after "
            f"{outcome.handled} handled events"
            + (f", checkpoint {outcome.checkpoint_path}" if outcome.checkpoint_path else "")
        )
        return 0
    _print_result(outcome.result, quiet=False)
    if outcome.checkpoint_path:
        print(f"final checkpoint: {outcome.checkpoint_path}")
    return 0 if outcome.result.ok else 1


def _soak(args) -> int:
    from repro.service.server import soak_compare

    names = args.names or sorted(SCENARIOS)
    comparisons = []
    failures = 0
    for name in names:
        try:
            scenario = get(name)
        except KeyError as exc:
            print(exc.args[0])
            return 2
        cmp = soak_compare(
            scenario, args.events, args.seed,
            engine=args.engine, checkpoint_after=args.checkpoint_at,
        )
        comparisons.append(cmp)
        status = "match" if cmp["match"] else "MISMATCH"
        verdict = "ok" if cmp["ok"] else "violations"
        print(
            f"[{cmp['engine']}] {name}: {status} — interrupted+resumed vs "
            f"straight-through at {cmp['events']} events "
            f"(checkpoint at {cmp['checkpoint_after']}), digest "
            f"{cmp['array_digest']}, {verdict}"
        )
        if not cmp["match"]:
            failures += 1
            for line in cmp["mismatches"]:
                print(f"    {line}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(comparisons, fh, indent=2)
        print(f"wrote {args.json}")
    print(
        f"soak: {len(comparisons) - failures}/{len(comparisons)} scenarios "
        f"deterministic under checkpoint/restore"
    )
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the bundled scenarios")
    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("name", help="scenario name (see 'list')")
    run_parser.add_argument("--events", type=int, default=20_000,
                            help="traffic events to stream (default 20000)")
    run_parser.add_argument("--seed", type=int, default=1, help="workload seed")
    engine = run_parser.add_mutually_exclusive_group()
    engine.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                        help="execution engine (default: compiled)")
    engine.add_argument("--fast-path", action="store_true", default=False,
                        help="compiled-closure engine only (deprecated alias "
                        "for --engine compiled)")
    engine.add_argument("--reference", action="store_true",
                        help="tree-walking reference engine only (deprecated "
                        "alias for --engine reference)")
    engine.add_argument("--both", action="store_true",
                        help="run the compiled and reference engines and "
                        "require identical verdicts and final array states")
    engine.add_argument("--all-engines", action="store_true",
                        help="run ALL engines "
                        f"({', '.join(ENGINE_NAMES)}) and "
                        "require identical verdicts and final array states")
    run_parser.add_argument("--shards", type=int, default=1,
                            help="partition the topology over N worker "
                            "processes (default 1: in-process)")
    run_parser.add_argument("--shard-engines", type=str, default="",
                            help="comma-separated engine name per shard "
                            "(requires --shards N with matching N)")
    run_parser.add_argument("--dump-source", action="store_true",
                            help="print the Python source the codegen engine "
                            "generates for the scenario's application, then "
                            "exit without running")
    run_parser.add_argument("--trace", type=str, default="",
                            help="write an event-lifecycle Chrome trace "
                            "(Perfetto-compatible JSON) to PATH; with "
                            "--both/--all-engines, one file per engine")
    run_parser.add_argument("--profile", action="store_true",
                            help="per-handler (and per-PISA-stage) "
                            "wall-time profiling, printed as a top-N report")
    run_parser.add_argument("--metrics", action="store_true",
                            help="enable the metrics registry and print its "
                            "Prometheus text exposition after the run")
    run_parser.add_argument("--json", type=str, default="",
                            help="also write the result(s) as JSON to PATH")
    run_parser.add_argument("--quiet", action="store_true",
                            help="suppress violation messages and details")

    serve_parser = sub.add_parser(
        "serve", help="run one scenario as a checkpointed long-lived service"
    )
    serve_parser.add_argument("name", help="scenario name (see 'list')")
    events = serve_parser.add_mutually_exclusive_group()
    events.add_argument("--events", type=int, default=1_000_000,
                        help="traffic events to stream (default 1000000)")
    events.add_argument("--unbounded", action="store_true",
                        help="stream traffic until stopped (SIGTERM/SIGINT)")
    serve_parser.add_argument("--seed", type=int, default=1, help="workload seed")
    serve_parser.add_argument("--engine", choices=ENGINE_NAMES, default="compiled",
                              help="execution engine (default: compiled)")
    serve_parser.add_argument("--checkpoint-dir", type=str, default="",
                              help="directory for rolling checkpoints "
                              "(no checkpointing when omitted)")
    serve_parser.add_argument("--checkpoint-every", type=int, default=200_000,
                              help="handled events between checkpoints "
                              "(default 200000)")
    serve_parser.add_argument("--keep", type=int, default=3,
                              help="rolling checkpoints to retain (default 3)")
    serve_parser.add_argument("--telemetry", type=str, default="",
                              help="append JSONL telemetry to PATH "
                              "('-' or omitted: stderr)")
    serve_parser.add_argument("--telemetry-every", type=int, default=25_000,
                              help="handled events between telemetry records "
                              "(default 25000)")
    serve_parser.add_argument("--telemetry-flush-every", type=int, default=1,
                              help="telemetry records buffered before a "
                              "stream flush (default 1: flush each record)")
    serve_parser.add_argument("--chunk", type=int, default=5_000,
                              help="handled events per scheduler chunk — the "
                              "signal/checkpoint granularity (default 5000)")
    serve_parser.add_argument("--max-events", type=int, default=None,
                              help="stop (with a checkpoint) after N handled "
                              "events; for bounded soaks and tests")
    serve_parser.add_argument("--fresh", action="store_true",
                              help="ignore existing checkpoints instead of "
                              "resuming from the newest one")

    soak_parser = sub.add_parser(
        "soak", help="assert interrupted+resumed runs match straight-through runs"
    )
    soak_parser.add_argument("names", nargs="*",
                             help="scenario names (default: all bundled)")
    soak_parser.add_argument("--events", type=int, default=20_000,
                             help="traffic events per scenario (default 20000)")
    soak_parser.add_argument("--seed", type=int, default=1, help="workload seed")
    soak_parser.add_argument("--engine", choices=ENGINE_NAMES, default=None,
                             help="execution engine (default: compiled)")
    soak_parser.add_argument("--checkpoint-at", type=int, default=None,
                             help="handled events before the checkpoint "
                             "(default: half of --events)")
    soak_parser.add_argument("--json", type=str, default="",
                             help="also write the comparisons as JSON to PATH")
    args = parser.parse_args(argv)

    if args.command == "list":
        _print_listing()
        return 0
    if args.command == "serve":
        return _serve(args)
    if args.command == "soak":
        return _soak(args)

    try:
        scenario = get(args.name)
    except KeyError as exc:
        print(exc.args[0])
        return 2

    if args.metrics:
        from repro.obs import enable

        enable()
    try:
        return _run(args, scenario)
    finally:
        if args.metrics:
            from repro.obs import disable

            disable()


def _run(args, scenario) -> int:
    if args.dump_source:
        from repro.apps import ALL_APPLICATIONS
        from repro.frontend import check_program
        from repro.interp.codegen import dump_program_source

        app = ALL_APPLICATIONS[scenario.app_key]
        checked = check_program(app.source, name=scenario.app_key)
        print(dump_program_source(checked))
        return 0

    tracer_factory = None
    if args.trace:
        from repro.obs import Tracer

        tracer_factory = lambda engine_name: Tracer(seed=args.seed)  # noqa: E731

    if args.shards > 1 or args.shard_engines:
        if args.both or args.all_engines:
            print("--shards does not compose with --both/--all-engines")
            return 2
        if args.trace or args.profile:
            print("--shards does not support --trace/--profile (the tracer "
                  "and profiler attach to a single in-process network)")
            return 2
        from repro.shard import run_sharded

        shard_engines = None
        if args.shard_engines:
            shard_engines = [s.strip() for s in args.shard_engines.split(",")]
        engine_name = args.engine or ("reference" if args.reference else "compiled")
        result = run_sharded(
            scenario, args.events, args.seed, args.shards,
            engine=engine_name, engines=shard_engines,
        )
        _print_result(result, args.quiet)
        if args.metrics:
            from repro.obs import REGISTRY

            print(REGISTRY.render_text(), end="")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result.to_dict(), fh, indent=2)
            print(f"wrote {args.json}")
        return 0 if result.ok else 1

    results: List[ScenarioResult] = []
    if args.both or args.all_engines:
        engines = ENGINE_NAMES if args.all_engines else ("compiled", "reference")
        try:
            results = run_scenario_engines(
                scenario, args.events, args.seed, engines=engines,
                tracer_factory=tracer_factory, profile=args.profile,
            )
        except AssertionError as exc:
            print(f"ENGINE MISMATCH: {exc}")
            return 1
    else:
        if args.engine:
            engine_name = args.engine
        elif args.reference:
            engine_name = "reference"
        else:
            # --fast-path and the default both select the compiled engine
            engine_name = "compiled"
        results = [run_scenario(
            scenario, args.events, args.seed, engine=engine_name,
            tracer=tracer_factory(engine_name) if tracer_factory else None,
            profile=args.profile,
        )]

    for result in results:
        _print_result(result, args.quiet)
    if args.both or args.all_engines:
        engines = ", ".join(r.engine for r in results)
        print(f"engines agree ({engines}): identical invariant verdicts and array states")

    traces_diverge = False
    if args.trace:
        multi = len(results) > 1
        blobs = {}
        for result in results:
            path = _trace_path(args.trace, result.engine, multi)
            spans = result.tracer.write(path)
            blobs[result.engine] = result.tracer.to_json_bytes()
            print(f"wrote {path} ({spans} spans)")
        if multi:
            if len(set(blobs.values())) == 1:
                print("traces byte-identical across engines")
            else:
                traces_diverge = True
                print("TRACE MISMATCH: engines produced different span trees")

    if args.metrics:
        from repro.obs import REGISTRY

        print(REGISTRY.render_text(), end="")

    if args.json:
        payload = [r.to_dict() for r in results]
        with open(args.json, "w") as fh:
            json.dump(payload if len(payload) > 1 else payload[0], fh, indent=2)
        print(f"wrote {args.json}")

    return 0 if all(r.ok for r in results) and not traces_diverge else 1


if __name__ == "__main__":
    sys.exit(main())
