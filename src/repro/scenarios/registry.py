"""The bundled scenario catalogue.

Each :class:`Scenario` names an application, a topology, a streaming traffic
model, and the invariants that must hold; ``build(events, seed)`` assembles a
fresh :class:`~repro.scenarios.runner.ScenarioSetup` (fresh traffic model and
invariant instances, so runs on different engines cannot contaminate each
other).  The catalogue spans the bundled Figure 9 applications, from a
single-switch heavy-hitter sketch to a 20-switch k=4 fat-tree, a link
failure on a leaf-spine, and the Figure 17 install-latency comparison driven
through the remote controller model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterator, List

import random

from repro.apps import ALL_APPLICATIONS
from repro.control import ControlPlaneConfig, RemoteController
from repro.interp.events import EventInstance
from repro.interp.interpreter import lucid_hash
from repro.interp.network import Network, SchedulerConfig, SourceItem
from repro.scenarios import topology as topo
from repro.scenarios import traffic as tm
from repro.scenarios.invariants import (
    DnsVictimBlocked,
    FirewallSolicitedOnly,
    Invariant,
    NoDrops,
    SketchOverestimates,
)
from repro.scenarios.runner import ScenarioSetup
from repro.workloads.failures import LinkFailure

INFINITY = 1_048_576


@dataclass(frozen=True)
class Scenario:
    """One named, registered scenario."""

    name: str
    title: str
    app_key: str
    topology: str
    description: str
    build: Callable[[int, int], ScenarioSetup]


SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario '{scenario.name}' registered twice")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario '{name}'; known: {sorted(SCENARIOS)}"
        ) from None


def _app_source(key: str) -> str:
    return ALL_APPLICATIONS[key].source


def _app_invariants(key: str) -> List[Invariant]:
    """The application's own invariant hooks (the single source of truth for
    per-app defaults); scenario builders append scenario-specific checks."""
    return ALL_APPLICATIONS[key].make_invariants()


# ---------------------------------------------------------------------------
# heavy hitters (CM) — single switch and k=4 fat-tree
# ---------------------------------------------------------------------------
def _build_heavy_hitter(topology: topo.Topology):
    def build(events: int, seed: int) -> ScenarioSetup:
        traffic = tm.ZipfPacketTraffic(event_name="pkt", hosts=512, alpha=1.2)
        return ScenarioSetup(
            topology=topology,
            make_network=lambda engine: topology.build_network(
                _app_source("CM"), engine=engine, name="CM"
            ),
            traffic=lambda: traffic.events(topology.edge, events, seed),
            invariants=_app_invariants("CM") + [SketchOverestimates(traffic)],
            settle_ns=100_000,
        )

    return build


register(
    Scenario(
        name="heavy-hitter-single",
        title="Zipf heavy hitters, one switch",
        app_key="CM",
        topology="single",
        description="Zipf-distributed flow mix through the count-min sketch; "
        "checks sketch conservation and the count-min overestimate guarantee.",
        build=_build_heavy_hitter(topo.single_switch()),
    )
)

register(
    Scenario(
        name="heavy-hitter-fattree",
        title="Zipf heavy hitters, k=4 fat-tree",
        app_key="CM",
        topology="fattree-4",
        description="The same Zipf mix sprayed across the 8 edge switches of "
        "a 20-switch k=4 fat-tree; per-switch sketch invariants must hold "
        "everywhere.",
        build=_build_heavy_hitter(topo.fat_tree(4)),
    )
)


def _build_heavy_hitter_fattree8(events: int, seed: int) -> ScenarioSetup:
    # WAN-scale link latencies (50 us) give the shard barrier a generous
    # conservative lookahead — config.link_latency_ns must match the
    # topology's, since undeclared switch pairs deliver at the config default
    topology = topo.fat_tree(8, latency_ns=50_000)
    config = SchedulerConfig(link_latency_ns=50_000)
    traffic = tm.ZipfPacketTraffic(
        event_name="pkt", hosts=4096, alpha=1.2, mean_gap_ns=200
    )
    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("CM"), config=config, engine=engine, name="CM"
        ),
        traffic=lambda: traffic.events(topology.edge, events, seed),
        invariants=_app_invariants("CM") + [SketchOverestimates(traffic)],
        settle_ns=200_000,
    )


register(
    Scenario(
        name="heavy-hitter-fattree8",
        title="Zipf heavy hitters, k=8 fat-tree (shard-scale)",
        app_key="CM",
        topology="fattree-8",
        description="The Zipf mix sprayed across the 32 edge switches of an "
        "80-switch k=8 fat-tree with 50 us WAN links — the sharded-execution "
        "benchmark workload (8 pods split cleanly across worker processes).",
        build=_build_heavy_hitter_fattree8,
    )
)


# ---------------------------------------------------------------------------
# stateful firewall (SFW) — scan burst and install latency
# ---------------------------------------------------------------------------
def _build_sfw_scan_burst(events: int, seed: int) -> ScenarioSetup:
    topology = topo.single_switch()
    benign_events = max(1, (events * 7) // 10)
    scan_events = max(0, events - benign_events)
    benign = tm.FirewallFlowTraffic(hosts=256, external_hosts=1024)
    # the scan begins a third of the way into the benign window; with
    # returns on, each flow contributes 2*packets_per_flow events
    events_per_flow = benign.packets_per_flow * (2 if benign.with_returns else 1)
    mean_flow_gap_ns = 1e9 / benign.flow_rate_per_s
    scan_start = int(benign_events / events_per_flow * mean_flow_gap_ns / 3)
    scan = tm.ScanBurstTraffic(start_ns=scan_start, target_hosts=256)
    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("SFW"), engine=engine, name="SFW"
        ),
        traffic=lambda: tm.merge(
            benign.events(topology.edge, benign_events, seed),
            scan.events(topology.edge, scan_events, seed + 1),
        ),
        invariants=_app_invariants("SFW"),
        settle_ns=1_000_000,
    )


register(
    Scenario(
        name="sfw-scan-burst",
        title="Stateful firewall under a scan burst",
        app_key="SFW",
        topology="single",
        description="Benign enterprise flows with returns, plus an inbound "
        "scan/DDoS burst; the firewall must never admit an unsolicited flow.",
        build=_build_sfw_scan_burst,
    )
)


@lru_cache(maxsize=None)
def _sfw_flow_key(src: int, dst: int) -> int:
    """Memoised SFW flow key: the observer hashes every handled packet, and
    flows repeat — ``lucid_hash`` is pure, so the cache cannot diverge."""
    return lucid_hash(32, [src, dst, 10398247])


@lru_cache(maxsize=None)
def _sfw_slots(key: int, size1: int, size2: int):
    """Memoised cuckoo slot pair for one flow key (pure, per table sizes)."""
    return (
        lucid_hash(10, [key, 10398247]) % size1,
        lucid_hash(10, [key, 1295981879]) % size2,
    )


class DataPlaneBeatsRemote(Invariant):
    """The Figure 17 claim at scenario scale: mean flow-installation latency
    with data-plane integrated control beats the Mantis-style remote
    controller on the same flow arrivals.  Observes install completions the
    way the Figure 17 harness does; the controller baseline is replayed
    through :meth:`RemoteController.install_stream` over the same flows."""

    name = "dataplane-beats-remote"
    #: recent flows legitimately have installs still in flight mid-run, and
    #: they would be charged the full remaining run
    streaming = False

    def __init__(self, traffic: tm.FirewallFlowTraffic, seed: int = 0xC0FFEE):
        self.traffic = traffic
        self.seed = seed
        self._installed: Dict[int, int] = {}
        self._arrays = None
        self.summary: Dict[str, float] = {}

    def reset(self, network: Network, topology) -> None:
        self._installed.clear()
        switch = network.switch(0)
        self._arrays = (
            switch.array("keys1"),
            switch.array("keys2"),
            switch.array("stash"),
        )

    @staticmethod
    def _flow_key(src: int, dst: int) -> int:
        return _sfw_flow_key(src, dst)

    def _is_installed(self, key: int) -> bool:
        keys1, keys2, stash = self._arrays
        h1, h2 = _sfw_slots(key, keys1.size, keys2.size)
        return keys1.cells[h1] == key or keys2.cells[h2] == key or stash.cells[0] == key

    def observe(self, entry) -> None:
        event = entry.event
        if event.name == "pkt_out":
            key = self._flow_key(event.args[0], event.args[1])
        elif event.name == "install":
            key = event.args[0]
        else:
            return
        if key not in self._installed and self._is_installed(key):
            self._installed[key] = entry.time_ns

    def snapshot_state(self) -> Dict[str, object]:
        return {"installed": [[key, t] for key, t in self._installed.items()]}

    def restore_state(self, state: Dict[str, object]) -> None:
        self._installed = {key: t for key, t in state["installed"]}

    def check(self, network: Network) -> List[str]:
        flows = sorted(self.traffic.first_packet_ns.items(), key=lambda kv: kv[1])
        if not flows:
            return []
        total_dp = 0
        never_installed = 0
        for (src, dst), first_ns in flows:
            done = self._installed.get(self._flow_key(src, dst))
            if done is None:
                # a flow that never installed is charged the full remaining
                # run — a broken install path must FAIL this invariant, not
                # count as a free instant install
                never_installed += 1
                done = network.now_ns
            total_dp += max(0, done - first_ns)
        mean_dp = total_dp / len(flows)
        controller = RemoteController(config=ControlPlaneConfig(), seed=self.seed)
        remote = controller.install_stream(
            (self._flow_key(src, dst), t) for (src, dst), t in flows
        )
        self.summary = {
            "flows": len(flows),
            "never_installed": never_installed,
            "dataplane_mean_install_ns": round(mean_dp, 1),
            "remote_mean_install_ns": round(remote.mean_latency_ns, 1),
        }
        if mean_dp >= remote.mean_latency_ns:
            return [
                f"data-plane mean install {mean_dp:.0f}ns is not below the "
                f"remote controller's {remote.mean_latency_ns:.0f}ns "
                f"over {len(flows)} flows"
            ]
        return []


def _build_sfw_install_latency(events: int, seed: int) -> ScenarioSetup:
    topology = topo.single_switch()
    traffic = tm.FirewallFlowTraffic(
        hosts=256, external_hosts=1024, with_returns=False, packets_per_flow=2
    )
    latency = DataPlaneBeatsRemote(traffic)
    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("SFW"), engine=engine, name="SFW"
        ),
        traffic=lambda: traffic.events(topology.edge, events, seed),
        invariants=[latency],
        settle_ns=1_000_000,
        details=lambda network: dict(latency.summary),
    )


register(
    Scenario(
        name="sfw-install-latency",
        title="Flow-install latency: data plane vs remote controller",
        app_key="SFW",
        topology="single",
        description="Streams outbound flows through the firewall and compares "
        "mean flow-installation latency against the Mantis-style remote "
        "controller model (the Figure 17 comparison, driven by the scenario "
        "engine).",
        build=_build_sfw_install_latency,
    )
)


# ---------------------------------------------------------------------------
# DNS reflection defense
# ---------------------------------------------------------------------------
def _build_dns_reflection(events: int, seed: int) -> ScenarioSetup:
    topology = topo.single_switch()
    traffic = tm.DnsReflectionTraffic(reflected_share=0.3)
    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("DNS"), engine=engine, name="DNS"
        ),
        traffic=lambda: traffic.events(topology.edge, events, seed),
        invariants=[DnsVictimBlocked(victim=traffic.victim, traffic=traffic)],
        settle_ns=500_000,
    )


register(
    Scenario(
        name="dns-reflection",
        title="DNS reflection attack vs the closed-loop defense",
        app_key="DNS",
        topology="single",
        description="Benign query/response pairs mixed with reflected "
        "responses aimed at a victim; once the sketch crosses the threshold "
        "the victim must be blocked, while a collision-free benign witness "
        "must never be.",
        build=_build_dns_reflection,
    )
)


# ---------------------------------------------------------------------------
# NAT churn
# ---------------------------------------------------------------------------
def _build_nat_churn(events: int, seed: int) -> ScenarioSetup:
    topology = topo.single_switch()
    traffic = tm.NatChurnTraffic()
    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("NAT"), engine=engine, name="NAT"
        ),
        traffic=lambda: traffic.events(topology.edge, events, seed),
        invariants=_app_invariants("NAT"),
        settle_ns=200_000,
    )


register(
    Scenario(
        name="nat-churn",
        title="NAT under flow churn",
        app_key="NAT",
        topology="single",
        description="A rotating population of internal flows plus inbound "
        "probes keeps the translation table churning; mappings must stay "
        "bijective (one flow per slot, one external port per flow).",
        build=_build_nat_churn,
    )
)


# ---------------------------------------------------------------------------
# RIP convergence on a line
# ---------------------------------------------------------------------------
def _build_rip_line(events: int, seed: int) -> ScenarioSetup:
    topology = topo.line(5)
    n = topology.num_switches

    def prepare(network: Network) -> None:
        for sid in range(n):
            network.switch(sid).array("dist").cells[0] = 0 if sid == 0 else INFINITY

    def traffic() -> Iterator[SourceItem]:
        # kick off every switch's advertisement loop, then sprinkle data
        # packets across the convergence window
        for sid in range(n):
            yield (0, sid, EventInstance("periodic_advertise", ()))
        rng = random.Random(seed)
        now = 0.0
        for i in range(events):
            now += rng.expovariate(1.0 / 2_000)
            yield (int(now), i % n, EventInstance("data_pkt", (0,)))

    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("RIP"), engine=engine, name="RIP"
        ),
        traffic=traffic,
        prepare=prepare,
        invariants=_app_invariants("RIP"),
        # the advertisement period is 1 ms; leave room for diameter+1 rounds
        settle_ns=8_000_000,
    )


register(
    Scenario(
        name="rip-line-convergence",
        title="RIP convergence on a 5-switch line",
        app_key="RIP",
        topology="line-5",
        description="All switches start with infinite distance except the "
        "destination; periodic advertisements must converge every switch to "
        "its true hop count with a next hop one hop closer.",
        build=_build_rip_line,
    )
)


# ---------------------------------------------------------------------------
# fast rerouter: link failure on a leaf-spine
# ---------------------------------------------------------------------------
def _build_reroute_linkfail(events: int, seed: int) -> ScenarioSetup:
    topology = topo.leaf_spine(4, 2)
    leaves = topology.edge
    ports = topology.shortest_path_ports()

    def prepare(network: Network) -> None:
        for sid in range(topology.num_switches):
            switch = network.switch(sid)
            hops = topology.hop_distances_from(sid)
            nexthops = switch.array("nexthops")
            pathlens = switch.array("pathlens")
            for dst in range(topology.num_switches):
                if dst == sid:
                    continue
                nexthops.cells[dst] = ports[(sid, dst)]
                pathlens.cells[dst] = hops[dst]
            linkstat = switch.array("linkstat")
            for peer in topology.neighbors(sid):
                linkstat.cells[peer] = 3

    mean_gap_ns = 2_000
    fail_at = int(events * mean_gap_ns / 3)
    failed_leaf, dead_spine = 0, 4  # leaf 0's lowest-id uplink
    (recovers,) = _app_invariants("RR")  # RerouteRecovers, tolerance 50 us

    def on_fail(network: Network, failure: LinkFailure) -> None:
        # the hardware port-down signal: mark the uplink dead and invalidate
        # the routes that used it, which is what re-triggers route queries
        switch = network.switch(failed_leaf)
        switch.array("linkstat").cells[dead_spine] = 0
        nexthops = switch.array("nexthops")
        pathlens = switch.array("pathlens")
        for dst in range(topology.num_switches):
            if nexthops.cells[dst] == dead_spine:
                pathlens.cells[dst] = INFINITY
        recovers.announce_failure(network.now_ns, failed_leaf, dead_spine)

    def data_packets() -> Iterator[SourceItem]:
        rng = random.Random(seed)
        now = 0.0
        for i in range(events):
            now += rng.expovariate(1.0 / mean_gap_ns)
            leaf = leaves[i % len(leaves)]
            others = [l for l in leaves if l != leaf]
            dst = others[rng.randrange(len(others))]
            yield (int(now), leaf, EventInstance("data_pkt", (dst,)))

    schedule = [
        LinkFailure(link=(failed_leaf, dead_spine), fail_at_ns=fail_at, recover_at_ns=None)
    ]

    def traffic() -> Iterator[SourceItem]:
        return tm.merge(
            data_packets(), tm.link_failure_actions(schedule, on_fail=on_fail)
        )

    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("RR"), engine=engine, name="RR"
        ),
        traffic=traffic,
        prepare=prepare,
        invariants=[recovers],
        settle_ns=1_000_000,
    )


register(
    Scenario(
        name="reroute-leafspine-linkfail",
        title="Fast rerouter around a failed leaf-spine uplink",
        app_key="RR",
        topology="leafspine-4x2",
        description="Leaf-to-leaf traffic on a 4x2 leaf-spine; one uplink "
        "fails mid-run.  The rerouter must stop using the dead uplink within "
        "the tolerance and keep forwarding via the surviving spine.",
        build=_build_reroute_linkfail,
    )
)


# ---------------------------------------------------------------------------
# SRO: sequenced replicated writes on a leaf-spine
# ---------------------------------------------------------------------------
def _build_sro_writes(events: int, seed: int) -> ScenarioSetup:
    topology = topo.leaf_spine(4, 2)
    n = topology.num_switches
    replicas = list(range(n))

    def traffic() -> Iterator[SourceItem]:
        rng = random.Random(seed)
        now = 0.0
        for i in range(events):
            now += rng.expovariate(1.0 / 5_000)
            if rng.random() < 0.75:
                key = rng.randrange(256)
                value = 1 + rng.randrange(1 << 16)
                # all writes enter through the sequencer (switch 0)
                yield (int(now), 0, EventInstance("write_req", (key, value)))
            else:
                key = rng.randrange(256)
                client = rng.randrange(n)
                yield (int(now), rng.randrange(n), EventInstance("read_req", (key, client)))

    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("SRO"),
            engine=engine,
            groups=lambda sid: {"REPLICAS": replicas},
            name="SRO",
        ),
        traffic=traffic,
        invariants=_app_invariants("SRO"),
        settle_ns=500_000,
    )


register(
    Scenario(
        name="sro-replicated-writes",
        title="Strongly consistent replicated arrays on a leaf-spine",
        app_key="SRO",
        topology="leafspine-4x2",
        description="Writes are sequenced at switch 0 and fanned out to all "
        "six replicas, with reads served locally; at quiescence every replica "
        "must hold identical values and no sequence number above what the "
        "sequencer issued.",
        build=_build_sro_writes,
    )
)


# ---------------------------------------------------------------------------
# DFW: asymmetric returns on a border ring
# ---------------------------------------------------------------------------
def _build_dfw_ring(events: int, seed: int) -> ScenarioSetup:
    topology = topo.ring(4)
    n = topology.num_switches
    traffic = tm.FirewallFlowTraffic(
        hosts=256,
        external_hosts=1024,
        flow_rate_per_s=20_000.0,
        roam_returns=True,
    )
    return ScenarioSetup(
        topology=topology,
        make_network=lambda engine: topology.build_network(
            _app_source("DFW"),
            engine=engine,
            groups=lambda sid: {"PEERS": [s for s in range(n) if s != sid]},
            name="DFW",
        ),
        traffic=lambda: traffic.events(topology.edge, events, seed),
        invariants=_app_invariants("DFW") + [FirewallSolicitedOnly(), NoDrops()],
        settle_ns=500_000,
    )


register(
    Scenario(
        name="dfw-ring-roaming",
        title="Distributed firewall with asymmetric returns",
        app_key="DFW",
        topology="ring-4",
        description="Flows leave through one border switch and return through "
        "another; Bloom-filter sync must admit every return (no drops), the "
        "filters must converge to identical state, and nothing unsolicited "
        "may pass.",
        build=_build_dfw_ring,
    )
)
