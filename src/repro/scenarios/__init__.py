"""The scenario engine: topologies, streaming traffic models, invariants,
and a runner that wires them to the bundled applications.

Quick tour::

    from repro.scenarios import SCENARIOS, run_scenario, run_scenario_both

    result = run_scenario(SCENARIOS["nat-churn"], events=20_000, seed=1)
    assert result.ok                       # every invariant held
    fast, ref = run_scenario_both(SCENARIOS["dns-reflection"], 5_000, 1)

or from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios run heavy-hitter-fattree --events 1000000 --seed 1

Traffic is streamed (`Network.run(source=...)`), so the peak memory of a run
is independent of the event count.
"""

from repro.scenarios.invariants import (
    Invariant,
    InvariantReport,
    invariant_names,
    make_invariant,
)
from repro.scenarios.registry import SCENARIOS, Scenario, get, register
from repro.scenarios.runner import (
    ScenarioResult,
    ScenarioSetup,
    network_array_digest,
    run_scenario,
    run_scenario_all_engines,
    run_scenario_both,
    run_scenario_engines,
    run_setup,
)
from repro.scenarios.topology import (
    Topology,
    fat_tree,
    leaf_spine,
    line,
    ring,
    single_switch,
)

__all__ = [
    "Invariant",
    "InvariantReport",
    "invariant_names",
    "make_invariant",
    "SCENARIOS",
    "Scenario",
    "get",
    "register",
    "ScenarioResult",
    "ScenarioSetup",
    "network_array_digest",
    "run_scenario",
    "run_scenario_all_engines",
    "run_scenario_both",
    "run_scenario_engines",
    "run_setup",
    "Topology",
    "fat_tree",
    "leaf_spine",
    "line",
    "ring",
    "single_switch",
]
