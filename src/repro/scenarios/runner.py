"""The scenario runner: wire an application + topology + streaming traffic +
invariants, run it on any execution engine (reference interpreter, compiled
fast path, or the PISA pipeline model), and report verdicts and per-switch
stats — including pipeline/recirculation statistics for engines that model
the hardware substrate.

The scenario's traffic factory yields a lazy, time-ordered stream that is
merged with the simulator's internal event heap (:meth:`Network.run` with
``source=``).  The batch runner materialises that stream up front so the
timed region measures the engine alone (``traffic_s`` records the
generation cost separately); the service mode keeps streaming lazily, since
its checkpoints serialise the cursor, not the buffer.  After the stream is
exhausted the network is drained for ``settle_ns`` more simulated time so
in-flight control events (cuckoo installs, sync updates, advertisement
rounds) complete before invariants are checked — self-perpetuating control
loops are bounded by the same horizon.
"""

from __future__ import annotations

import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.interp.engine import ENGINE_NAMES, resolve_engine_name
from repro.interp.network import Network, SourceItem
from repro.scenarios.invariants import (
    Invariant,
    InvariantReport,
    evaluate,
    observer_callback,
)
from repro.scenarios.topology import Topology
from repro.service.source import ReplayableSource


@dataclass
class ScenarioSetup:
    """Everything needed to run one scenario once: built fresh per run so
    stateful traffic models and invariants never leak between engines."""

    topology: Topology
    #: engine-name -> ready network factory (``"reference" | "compiled" | "pisa"``)
    make_network: Callable[[str], Network]
    #: zero-arg factory returning the streaming traffic source
    traffic: Callable[[], Iterable[SourceItem]]
    invariants: List[Invariant] = field(default_factory=list)
    #: preload state (routing tables, link status) before traffic starts
    prepare: Optional[Callable[[Network], None]] = None
    #: extra simulated time after the last traffic event before verdicts
    settle_ns: int = 2_000_000
    #: extra result details computed from the finished network
    details: Optional[Callable[[Network], Dict[str, object]]] = None


@dataclass
class ScenarioResult:
    """Outcome of one scenario run on one engine."""

    scenario: str
    engine: str
    seed: int
    events_injected: int
    events_handled: int
    sim_ns: int
    wall_s: float
    events_per_sec: float
    invariants: List[InvariantReport]
    #: per-switch summary counters (includes the engine name and, for
    #: pipeline-modelling engines, a nested ``"pipeline"`` stats dict)
    switch_stats: Dict[int, Dict[str, object]]
    #: CRC32 digest of every switch's final array state
    array_digest: str
    #: wall time spent building the network + compiling handlers + preloading
    #: state (everything before the first event) — excluded from ``wall_s``
    setup_s: float = 0.0
    #: wall time spent generating the traffic workload — excluded from
    #: ``wall_s`` so ``events_per_sec`` measures the engines, not the
    #: traffic models
    traffic_s: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)
    #: network-wide pipeline totals (stage occupancy, recirculated events,
    #: peak queue depth, recirc passes/bytes/drops); empty for engines that
    #: do not model a pipeline
    pipeline_totals: Dict[str, object] = field(default_factory=dict)
    #: profiling report (``{"hot_handlers": [...], "stages": [...]}``) when
    #: the run was profiled; empty otherwise
    profile: Dict[str, object] = field(default_factory=dict)
    #: the :class:`repro.obs.trace.Tracer` attached to the run, when tracing
    #: was requested — excluded from :meth:`to_dict` (the CLI writes it to
    #: its own file)
    tracer: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.invariants)

    def verdict_signature(self) -> Tuple:
        """What must be identical across engines: every invariant verdict
        plus the final array states."""
        return (
            tuple((r.name, r.ok, r.violations) for r in self.invariants),
            self.array_digest,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "seed": self.seed,
            "events_injected": self.events_injected,
            "events_handled": self.events_handled,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 4),
            "setup_s": round(self.setup_s, 4),
            "traffic_s": round(self.traffic_s, 4),
            "events_per_sec": round(self.events_per_sec),
            "ok": self.ok,
            "invariants": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "violations": r.violations,
                    "messages": r.messages,
                }
                for r in self.invariants
            ],
            "array_digest": self.array_digest,
            "details": self.details,
            "pipeline": self.pipeline_totals,
            **({"profile": self.profile} if self.profile else {}),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output (worker→coordinator
        transport, JSON archives).  ``switch_stats`` and the attached tracer
        are not part of the dict form and come back empty/None; the float
        fields carry the dict's rounding."""
        return cls(
            scenario=state["scenario"],
            engine=state["engine"],
            seed=state["seed"],
            events_injected=state["events_injected"],
            events_handled=state["events_handled"],
            sim_ns=state["sim_ns"],
            wall_s=state["wall_s"],
            setup_s=state.get("setup_s", 0.0),
            traffic_s=state.get("traffic_s", 0.0),
            events_per_sec=state["events_per_sec"],
            invariants=[
                InvariantReport(
                    name=r["name"],
                    ok=r["ok"],
                    violations=r["violations"],
                    messages=list(r["messages"]),
                )
                for r in state["invariants"]
            ],
            switch_stats={},
            array_digest=state["array_digest"],
            details=dict(state.get("details") or {}),
            pipeline_totals=dict(state.get("pipeline") or {}),
            profile=dict(state.get("profile") or {}),
        )


#: the runner's source wrapper is the service-mode replayable cursor (the
#: old name is kept as an alias); it still counts injected events and the
#: last timestamp without buffering anything
_SourceTracker = ReplayableSource


def network_array_digest(network: Network) -> str:
    """CRC32 over every switch's final array cells, switch/array-name
    ordered — a compact equality signature for engine-parity checks."""
    crc = 0
    for sid in sorted(network.switches):
        switch = network.switches[sid]
        for name in sorted(switch.runtime.arrays):
            cells = switch.runtime.arrays[name].cells
            crc = zlib.crc32(name.encode(), crc)
            crc = zlib.crc32(struct.pack(f"<ii{len(cells)}I", sid, len(cells), *cells), crc)
    return f"{crc:08x}"


def _aggregate_pipeline_totals(network: Network) -> Dict[str, object]:
    """Sum per-switch pipeline stats into a network-wide summary (max for
    depth/stage peaks).  Heterogeneous networks aggregate only the switches
    whose engines expose pipeline stats."""
    totals: Dict[str, object] = {}
    switches = 0
    for switch in network.switches.values():
        stats = switch.engine.pipeline_stats(duration_ns=network.now_ns)
        if stats is None:
            continue
        switches += 1
        for key, value in stats.items():
            if not isinstance(value, (int, float)):
                continue
            if key in ("max_stages_traversed", "peak_queue_depth", "stages"):
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    if switches:
        totals["switches"] = switches
        totals["recirc_drops"] = sum(
            sw.stats.recirc_drops for sw in network.switches.values()
        )
    return totals


def prepare_run(
    setup: ScenarioSetup,
    engine_name: str,
    tracer: Optional[object] = None,
    profile: bool = False,
) -> Tuple[Network, ReplayableSource]:
    """Build the network, preload state, reset + wire the invariants, and
    wrap the traffic stream in a replayable cursor — everything up to (but
    not including) the first handled event.  Shared by the batch runner and
    the service mode (:mod:`repro.service.server`), which restores a
    checkpoint into the returned network instead of running from scratch.

    ``tracer`` attaches a :class:`repro.obs.trace.Tracer` to the network;
    ``profile=True`` attaches a fresh
    :class:`repro.obs.profile.HandlerProfiler` (plus a per-pipeline
    :class:`~repro.obs.profile.StageProfiler` on every PISA switch)."""
    network = setup.make_network(engine_name)
    if setup.prepare is not None:
        setup.prepare(network)
    for inv in setup.invariants:
        inv.reset(network, setup.topology)
    network.trace_enabled = False
    network.on_handle = observer_callback(setup.invariants)
    if tracer is not None:
        network.tracer = tracer
    if profile:
        from repro.obs.profile import HandlerProfiler, StageProfiler

        network.profiler = HandlerProfiler()
        for switch in network.switches.values():
            pipeline = getattr(switch.engine, "pipeline", None)
            if pipeline is not None and hasattr(pipeline, "stage_prof"):
                pipeline.stage_prof = StageProfiler(pipeline.layout.num_stages())
    return network, ReplayableSource(setup.traffic)


def settle_horizon(setup: ScenarioSetup, network: Network, source: ReplayableSource) -> int:
    """The simulated time up to which the network is drained after the
    traffic stream ends, so in-flight control events complete before final
    verdicts (self-perpetuating control loops are bounded by it)."""
    return max(source.last_ns, network.now_ns) + setup.settle_ns


def build_result(
    setup: ScenarioSetup,
    scenario_name: str,
    seed: int,
    engine_name: str,
    network: Network,
    events_injected: int,
    events_handled: int,
    wall_s: float,
    setup_s: float = 0.0,
    traffic_s: float = 0.0,
) -> ScenarioResult:
    """Evaluate the invariants and assemble the :class:`ScenarioResult` for
    a finished (streamed + settled) network."""
    reports = evaluate(setup.invariants, network)
    stats: Dict[int, Dict[str, object]] = {}
    for sid, sw in network.switches.items():
        entry: Dict[str, object] = {
            "engine": sw.engine_name,
            "events_handled": sw.stats.events_handled,
            "events_generated": sw.stats.events_generated,
            "recirculations": sw.stats.recirculations,
            "remote_sends": sw.stats.remote_sends,
            "drops": sw.stats.drops,
            "link_drops": sw.stats.link_drops,
            "recirc_drops": sw.stats.recirc_drops,
        }
        pipeline = sw.engine.pipeline_stats(duration_ns=network.now_ns)
        if pipeline is not None:
            entry["pipeline"] = pipeline
        stats[sid] = entry
    details = setup.details(network) if setup.details is not None else {}
    profile: Dict[str, object] = {}
    if network.profiler is not None:
        from repro.obs.profile import merge_stage_rows

        profile["hot_handlers"] = network.profiler.top(10)
        stage_rows = merge_stage_rows([
            getattr(getattr(sw.engine, "pipeline", None), "stage_prof", None)
            for sw in network.switches.values()
        ])
        if stage_rows:
            profile["stages"] = stage_rows
    return ScenarioResult(
        scenario=scenario_name,
        engine=engine_name,
        seed=seed,
        events_injected=events_injected,
        events_handled=events_handled,
        sim_ns=network.now_ns,
        wall_s=wall_s,
        setup_s=setup_s,
        traffic_s=traffic_s,
        events_per_sec=events_handled / wall_s if wall_s > 0 else 0.0,
        invariants=reports,
        switch_stats=stats,
        array_digest=network_array_digest(network),
        details=details,
        pipeline_totals=_aggregate_pipeline_totals(network),
        profile=profile,
        tracer=network.tracer,
    )


def run_setup(setup: ScenarioSetup, scenario_name: str, seed: int,
              fast_path: Optional[bool] = None,
              engine: Optional[str] = None,
              tracer: Optional[object] = None,
              profile: bool = False) -> ScenarioResult:
    """Execute one prepared scenario on one engine (``engine=`` names it;
    ``fast_path=`` remains as the deprecated boolean alias).  ``tracer`` /
    ``profile`` attach observability hooks — see :func:`prepare_run`.

    Wall time is split three ways so ``events_per_sec`` measures the engine
    rather than everything around it: ``setup_s`` (network construction +
    handler compilation + preload), ``traffic_s`` (workload generation —
    the traffic stream is materialised through the replayable cursor before
    the clock starts), and ``wall_s`` (the drain + settle only)."""
    engine_name = resolve_engine_name(engine, fast_path)
    t0 = time.perf_counter()
    network, source = prepare_run(setup, engine_name, tracer=tracer, profile=profile)
    t1 = time.perf_counter()
    items = list(source)
    start = time.perf_counter()
    handled = network.run(source=items)
    handled += network.run(until_ns=settle_horizon(setup, network, source))
    wall = time.perf_counter() - start
    return build_result(
        setup, scenario_name, seed, engine_name, network,
        events_injected=source.injected, events_handled=handled, wall_s=wall,
        setup_s=t1 - t0, traffic_s=start - t1,
    )


def run_scenario(scenario, events: int, seed: int,
                 fast_path: Optional[bool] = None,
                 engine: Optional[str] = None,
                 tracer: Optional[object] = None,
                 profile: bool = False) -> ScenarioResult:
    """Build and run a registered scenario once (see
    :mod:`repro.scenarios.registry` for the catalogue).  ``engine`` selects
    the execution engine (default ``"compiled"``)."""
    setup = scenario.build(events, seed)
    return run_setup(setup, scenario.name, seed, fast_path=fast_path,
                     engine=engine, tracer=tracer, profile=profile)


def run_scenario_engines(
    scenario, events: int, seed: int, engines: Sequence[str] = ENGINE_NAMES,
    tracer_factory: Optional[Callable[[str], object]] = None,
    profile: bool = False,
) -> List[ScenarioResult]:
    """Run one scenario under several engines (a fresh setup per engine, so
    stateful traffic models cannot leak) and require identical invariant
    verdicts and final array digests across all of them — the differential
    conformance contract, now three-way.

    ``tracer_factory(engine_name)`` supplies a fresh tracer per engine run
    (each result keeps its tracer on ``result.tracer``), so callers can
    compare the serialized traces across engines."""
    results = [
        run_scenario(
            scenario, events, seed, engine=name,
            tracer=tracer_factory(name) if tracer_factory is not None else None,
            profile=profile,
        )
        for name in engines
    ]
    baseline = results[0]
    for other in results[1:]:
        if other.verdict_signature() != baseline.verdict_signature():
            raise AssertionError(
                f"engines diverge on scenario '{scenario.name}': "
                f"{baseline.engine}={baseline.verdict_signature()!r} "
                f"{other.engine}={other.verdict_signature()!r}"
            )
    return results


def run_scenario_all_engines(scenario, events: int, seed: int) -> List[ScenarioResult]:
    """Run a scenario on every bundled engine (reference, compiled, pisa)
    and assert they agree; returns the results in :data:`ENGINE_NAMES` order."""
    return run_scenario_engines(scenario, events, seed, engines=ENGINE_NAMES)


def run_scenario_both(scenario, events: int, seed: int) -> Tuple[ScenarioResult, ScenarioResult]:
    """Run a scenario under the compiled fast path AND the tree-walking
    reference engine; raises AssertionError if their invariant verdicts or
    final array states differ (the differential conformance contract)."""
    compiled, reference = run_scenario_engines(
        scenario, events, seed, engines=("compiled", "reference")
    )
    return compiled, reference
