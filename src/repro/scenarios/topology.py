"""Topology generators: line, ring, leaf-spine, and k-ary fat-tree.

A :class:`Topology` is a switch-level graph with per-link latencies.  It can
instantiate itself as a ready-to-run :class:`~repro.interp.network.Network`,
binding each switch's multicast-group constants (``NEIGHBORS``, ``PEERS``,
``REPLICAS``, ...) to that switch's actual neighbour set from the graph —
the same program text thus runs unmodified on any topology.  Shortest-path
distances and a next-hop port map (Dijkstra over link latencies) are exposed
for preloading routing tables and for checking convergence invariants.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.frontend import ast, parse_program
from repro.frontend.type_checker import check_program
from repro.interp.engine import resolve_engine_name
from repro.interp.network import Network, SchedulerConfig


@dataclass
class Topology:
    """A named multi-switch topology with per-link latencies."""

    name: str
    num_switches: int
    #: undirected links as (a, b, latency_ns), each listed once
    links: List[Tuple[int, int, int]] = field(default_factory=list)
    #: switches where external traffic enters (all switches if unset)
    edge: List[int] = field(default_factory=list)
    #: locality groups for shard partitioning (``repro.shard``): disjoint
    #: lists of switch ids that should stay in one shard (e.g. a fat-tree
    #: pod's edge+agg switches).  Switches in no group (cores, spines) are
    #: placed by the partitioner.  None → no locality structure; the
    #: partitioner falls back to contiguous id ranges.
    pods: Optional[List[List[int]]] = None

    def __post_init__(self) -> None:
        if not self.edge:
            self.edge = list(range(self.num_switches))
        self._adj: Dict[int, Dict[int, int]] = {s: {} for s in range(self.num_switches)}
        for a, b, latency in self.links:
            self._adj[a][b] = latency
            self._adj[b][a] = latency

    # -- graph queries -----------------------------------------------------
    def neighbors(self, switch_id: int) -> List[int]:
        return sorted(self._adj[switch_id])

    def degree(self, switch_id: int) -> int:
        return len(self._adj[switch_id])

    def distances_from(self, source: int) -> Dict[int, int]:
        """Dijkstra latencies (ns) from ``source`` to every switch."""
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for peer, latency in self._adj[node].items():
                candidate = d + latency
                if candidate < dist.get(peer, float("inf")):
                    dist[peer] = candidate
                    heapq.heappush(heap, (candidate, peer))
        return dist

    def hop_distances_from(self, source: int) -> Dict[int, int]:
        """BFS hop counts from ``source`` (unit link weights)."""
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for node in frontier:
                for peer in self._adj[node]:
                    if peer not in dist:
                        dist[peer] = dist[node] + 1
                        nxt.append(peer)
            frontier = nxt
        return dist

    def shortest_path_ports(self) -> Dict[Tuple[int, int], int]:
        """``(switch, destination) -> next-hop switch id`` for every reachable
        pair, minimising total link latency.  Ties break toward the lowest
        neighbour id, so the map is deterministic."""
        ports: Dict[Tuple[int, int], int] = {}
        for dst in range(self.num_switches):
            dist = self.distances_from(dst)
            for node in range(self.num_switches):
                if node == dst or node not in dist:
                    continue
                best: Optional[int] = None
                for peer in self.neighbors(node):
                    if peer not in dist:
                        continue
                    cost = self._adj[node][peer] + dist[peer]
                    if cost == dist[node] and (best is None or peer < best):
                        best = peer
                if best is not None:
                    ports[(node, dst)] = best
        return ports

    # -- network construction ----------------------------------------------
    def group_bindings_for(self, switch_id: int, group_names: Sequence[str]) -> Dict[str, List[int]]:
        """Default per-switch group bindings: every named group becomes this
        switch's neighbour set (the common case for NEIGHBORS-style groups)."""
        return {name: self.neighbors(switch_id) for name in group_names}

    def build_network(
        self,
        program: str,
        config: Optional[SchedulerConfig] = None,
        fast_path: Optional[bool] = None,
        groups: Optional[Callable[[int], Dict[str, List[int]]]] = None,
        symbolic_bindings: Optional[Dict[str, int]] = None,
        name: str = "<scenario>",
        engine: Optional[str] = None,
    ) -> Network:
        """Instantiate this topology as a :class:`Network` running ``program``
        on every switch.

        ``groups`` maps a switch id to that switch's group bindings (e.g.
        ``{"NEIGHBORS": [4, 5]}``); when omitted, every ``const group`` the
        program declares is bound to the switch's neighbour set.  The program
        is parsed once and re-checked per binding set.  ``engine`` selects
        the execution engine for every switch (``fast_path`` is the
        deprecated boolean alias); switches sharing a binding set share one
        checked program — and, under the PISA engine, one compiled layout.
        """
        parsed = parse_program(program, name=name)
        declared_groups = [
            decl.name
            for decl in parsed.decls
            if isinstance(decl, ast.DConst) and isinstance(decl.ty, ast.TGroup)
        ]
        network = Network(config=config, engine=resolve_engine_name(engine, fast_path))
        checked_cache: Dict[Tuple[Tuple[str, Tuple[int, ...]], ...], object] = {}
        for switch_id in range(self.num_switches):
            if groups is not None:
                bindings = groups(switch_id)
            else:
                bindings = self.group_bindings_for(switch_id, declared_groups)
            cache_key = tuple(sorted((k, tuple(v)) for k, v in bindings.items()))
            checked = checked_cache.get(cache_key)
            if checked is None:
                checked = check_program(
                    parsed,
                    name=name,
                    symbolic_bindings=symbolic_bindings,
                    group_bindings=bindings,
                )
                checked_cache[cache_key] = checked
            network.add_switch(switch_id, checked)
        for a, b, latency in self.links:
            network.add_link(a, b, latency_ns=latency)
        return network


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------
def single_switch() -> Topology:
    """The degenerate one-switch topology (the paper's Figure 9 setting)."""
    return Topology(name="single", num_switches=1, links=[], edge=[0])


def line(n: int, latency_ns: int = 1_000) -> Topology:
    """``n`` switches in a path: 0 - 1 - ... - (n-1)."""
    if n < 1:
        raise ValueError("line topology needs at least one switch")
    links = [(i, i + 1, latency_ns) for i in range(n - 1)]
    return Topology(name=f"line-{n}", num_switches=n, links=links)


def ring(n: int, latency_ns: int = 1_000) -> Topology:
    """``n`` switches in a cycle."""
    if n < 3:
        raise ValueError("ring topology needs at least three switches")
    links = [(i, (i + 1) % n, latency_ns) for i in range(n)]
    return Topology(name=f"ring-{n}", num_switches=n, links=links)


def leaf_spine(leaves: int, spines: int, latency_ns: int = 1_000) -> Topology:
    """A two-tier Clos: every leaf connects to every spine.  Leaves are
    switches ``0..leaves-1`` (the traffic edge); spines follow."""
    if leaves < 1 or spines < 1:
        raise ValueError("leaf-spine topology needs at least one leaf and one spine")
    links = [
        (leaf, leaves + spine, latency_ns)
        for leaf in range(leaves)
        for spine in range(spines)
    ]
    return Topology(
        name=f"leafspine-{leaves}x{spines}",
        num_switches=leaves + spines,
        links=links,
        edge=list(range(leaves)),
        # each leaf is its own locality group; spines are placed by the
        # partitioner (they talk to every leaf equally)
        pods=[[leaf] for leaf in range(leaves)],
    )


def fat_tree(k: int, latency_ns: int = 1_000) -> Topology:
    """The classic k-ary fat-tree (Al-Fares et al.): ``k`` pods of ``k/2``
    edge and ``k/2`` aggregation switches, plus ``(k/2)^2`` core switches.

    Switch ids: edges first (pod-major), then aggregations, then cores; the
    edge switches are the traffic edge.  Every edge switch links to every
    aggregation switch in its pod; aggregation switch ``j`` of each pod links
    to cores ``j*k/2 .. (j+1)*k/2 - 1``.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("fat-tree arity k must be an even number >= 2")
    half = k // 2
    num_edge = k * half
    num_agg = k * half
    num_core = half * half
    edge_id = lambda pod, i: pod * half + i
    agg_id = lambda pod, j: num_edge + pod * half + j
    core_id = lambda j, c: num_edge + num_agg + j * half + c
    links: List[Tuple[int, int, int]] = []
    for pod in range(k):
        for i in range(half):
            for j in range(half):
                links.append((edge_id(pod, i), agg_id(pod, j), latency_ns))
    for pod in range(k):
        for j in range(half):
            for c in range(half):
                links.append((agg_id(pod, j), core_id(j, c), latency_ns))
    return Topology(
        name=f"fattree-{k}",
        num_switches=num_edge + num_agg + num_core,
        links=links,
        edge=list(range(num_edge)),
        # one locality group per pod (its edge + aggregation switches);
        # cores sit between pods and are placed by the partitioner
        pods=[
            [edge_id(pod, i) for i in range(half)] + [agg_id(pod, j) for j in range(half)]
            for pod in range(k)
        ],
    )
