"""Streaming traffic models for the scenario engine.

Every model is a factory of lazily generated, time-ordered
``(time_ns, switch_id, EventInstance)`` items — the streaming source protocol
of :meth:`repro.interp.network.Network.run`.  Nothing here materialises an
event list: a million-event scenario holds O(1) traffic state (a seeded RNG,
a small pending heap for request/response pairs, and per-heavy-hitter
counters bounded by the host population, not the event count).

Models compose: :func:`merge` interleaves any number of sorted streams, and
:func:`link_failure_actions` turns a :class:`~repro.workloads.failures`
schedule into scheduled control actions that fail/restore links mid-run.
"""

from __future__ import annotations

import heapq
import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.interp.events import EventInstance
from repro.interp.network import CONTROL, Network, SourceItem
from repro.workloads.failures import LinkFailure


def merge(*streams: Iterable[SourceItem]) -> Iterator[SourceItem]:
    """Merge time-ordered streams into one time-ordered stream (stable heap
    merge: ties go to the earlier-listed stream)."""
    return heapq.merge(*streams, key=lambda item: item[0])


def control_action(time_ns: int, fn: Callable[[Network], None]) -> SourceItem:
    """One scheduled control action: ``fn(network)`` runs at ``time_ns``."""
    return (time_ns, CONTROL, fn)


def link_failure_actions(
    failures: Iterable[LinkFailure],
    on_fail: Optional[Callable[[Network, LinkFailure], None]] = None,
    on_recover: Optional[Callable[[Network, LinkFailure], None]] = None,
) -> Iterator[SourceItem]:
    """Turn a link-failure schedule into a stream of control actions.

    Each failure yields a fail action (take the link down, then call
    ``on_fail`` — e.g. to poke a switch's link-status array the way a
    hardware port-down signal would) and, if the failure recovers, a recover
    action.  Assumes the schedule is ordered by ``fail_at_ns`` and downtimes
    do not overlap out of order (true for the streaming generator).
    """
    pending: List[Tuple[int, int, SourceItem]] = []
    serial = 0
    for failure in failures:

        def make_fail(f: LinkFailure) -> Callable[[Network], None]:
            def act(network: Network) -> None:
                network.fail_link(*f.link)
                if on_fail is not None:
                    on_fail(network, f)

            return act

        def make_recover(f: LinkFailure) -> Callable[[Network], None]:
            def act(network: Network) -> None:
                network.restore_link(*f.link)
                if on_recover is not None:
                    on_recover(network, f)

            return act

        while pending and pending[0][0] <= failure.fail_at_ns:
            yield heapq.heappop(pending)[2]
        yield control_action(failure.fail_at_ns, make_fail(failure))
        if failure.recover_at_ns is not None:
            serial += 1
            heapq.heappush(
                pending,
                (
                    failure.recover_at_ns,
                    serial,
                    control_action(failure.recover_at_ns, make_recover(failure)),
                ),
            )
    while pending:
        yield heapq.heappop(pending)[2]


class _ZipfSampler:
    """Discrete power-law sampler over ``n`` ranks: P(rank i) ~ 1/(i+1)^alpha.

    O(n) memory for the cumulative table, O(log n) per draw — independent of
    how many samples are drawn.
    """

    def __init__(self, n: int, alpha: float):
        weights = [1.0 / (i + 1) ** alpha for i in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        return bisect_left(self._cumulative, rng.random())


@dataclass
class ZipfPacketTraffic:
    """Zipf-distributed flow mix: a few heavy-hitter flows dominate a long
    uniform-ish tail — the canonical sketch/telemetry workload.

    Emits ``event_name(src, dst)`` (``extra_args`` appended) round-robin over
    the topology's edge switches with exponential inter-arrival gaps.  The
    per-flow emission counts of the ``track_top`` heaviest ranks are recorded
    in :attr:`emitted`, keyed by switch then flow, so invariants can compare
    sketch estimates against ground truth without observing every event.
    """

    event_name: str = "pkt"
    hosts: int = 512
    alpha: float = 1.2
    mean_gap_ns: int = 1_000
    extra_args: Tuple[int, ...] = ()
    track_top: int = 4
    #: filled while streaming: {switch_id: {(src, dst): count}}
    emitted: Dict[int, Dict[Tuple[int, int], int]] = field(default_factory=dict)

    def flow_for_rank(self, rank: int) -> Tuple[int, int]:
        """The deterministic (src, dst) pair of a Zipf rank."""
        src = (rank * 2654435761 + 1) % self.hosts
        dst = (rank * 40503 + 7) % self.hosts
        return src, dst

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        sampler = _ZipfSampler(self.hosts, self.alpha)
        rng = random.Random(seed)
        self.emitted.clear()
        now = 0.0
        for i in range(count):
            now += rng.expovariate(1.0 / self.mean_gap_ns)
            rank = sampler.sample(rng)
            src, dst = self.flow_for_rank(rank)
            switch = edge[i % len(edge)]
            if rank < self.track_top:
                per_switch = self.emitted.setdefault(switch, {})
                per_switch[(src, dst)] = per_switch.get((src, dst), 0) + 1
            yield (
                int(now),
                switch,
                EventInstance(self.event_name, (src, dst) + self.extra_args),
            )


@dataclass
class FirewallFlowTraffic:
    """Benign enterprise traffic for the stateful-firewall apps: outbound
    flows (``pkt_out``) from trusted hosts, each answered by inbound return
    packets (``pkt_in``) one RTT later.

    The pending-return heap holds only the flows in flight during one RTT —
    bounded by ``rate * rtt``, independent of the total event count.  Records
    the first-packet time of every distinct flow in :attr:`first_packet_ns`
    (bounded by distinct flows) for install-latency measurements.
    """

    hosts: int = 256
    external_hosts: int = 1024
    flow_rate_per_s: float = 50_000.0
    packets_per_flow: int = 2
    inter_packet_ns: int = 10_000
    rtt_ns: int = 200_000
    with_returns: bool = True
    #: return packets enter at the *next* edge switch (distributed-firewall
    #: asymmetric routing: the flow leaves through one border and returns
    #: through another)
    roam_returns: bool = False
    out_event: str = "pkt_out"
    in_event: str = "pkt_in"
    #: filled while streaming: {(src, dst): first outbound packet time}
    first_packet_ns: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        rng = random.Random(seed)
        self.first_packet_ns.clear()
        pending: List[Tuple[int, int, int, EventInstance]] = []
        serial = 0
        emitted = 0
        flow_index = 0
        now = 0.0
        while emitted < count:
            now += rng.expovariate(self.flow_rate_per_s) * 1e9
            start = int(now)
            src = rng.randrange(self.hosts)
            dst = self.hosts + rng.randrange(self.external_hosts)
            switch = edge[flow_index % len(edge)]
            return_switch = (
                edge[(flow_index + 1) % len(edge)] if self.roam_returns else switch
            )
            flow_index += 1
            while pending and pending[0][0] <= start and emitted < count:
                t, _, sw, event = heapq.heappop(pending)
                yield (t, sw, event)
                emitted += 1
            if emitted >= count:
                break
            self.first_packet_ns.setdefault((src, dst), start)
            for p in range(self.packets_per_flow):
                t_out = start + p * self.inter_packet_ns
                serial += 1
                if p == 0:
                    yield (t_out, switch, EventInstance(self.out_event, (src, dst)))
                    emitted += 1
                else:
                    heapq.heappush(
                        pending,
                        (t_out, serial, switch, EventInstance(self.out_event, (src, dst))),
                    )
                if self.with_returns:
                    serial += 1
                    heapq.heappush(
                        pending,
                        (
                            t_out + self.rtt_ns,
                            serial,
                            return_switch,
                            EventInstance(self.in_event, (dst, src)),
                        ),
                    )
                if emitted >= count:
                    break
        while pending and emitted < count:
            t, _, sw, event = heapq.heappop(pending)
            yield (t, sw, event)
            emitted += 1


@dataclass
class ScanBurstTraffic:
    """A scan/DDoS burst: unsolicited inbound probes (``pkt_in``) from a
    range of attacker sources against a sweep of internal hosts, at a high
    constant rate inside a burst window."""

    attacker_base: int = 1_000_000
    attackers: int = 32
    target_hosts: int = 256
    start_ns: int = 0
    gap_ns: int = 500
    in_event: str = "pkt_in"

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        rng = random.Random(seed)
        t = self.start_ns
        for i in range(count):
            attacker = self.attacker_base + rng.randrange(self.attackers)
            target = i % self.target_hosts
            # an inbound probe arrives with the attacker as its source
            yield (
                t,
                edge[i % len(edge)],
                EventInstance(self.in_event, (attacker, target)),
            )
            t += self.gap_ns


@dataclass
class DnsReflectionTraffic:
    """The DNS-defense workload: benign query/response pairs mixed with
    reflected responses aimed at a victim (streaming version of
    :class:`repro.workloads.dns.DnsTrafficMix`)."""

    reflected_share: float = 0.3
    clients: int = 64
    servers: int = 16
    victim: int = 7
    mean_gap_ns: int = 20_000
    response_delay_ns: int = 50_000
    #: filled while streaming: reflected responses emitted so far (lets the
    #: victim-blocked invariant stay vacuous below the blocking threshold)
    reflected_emitted: int = 0

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        from repro.workloads.dns import stream_dns_mix

        self.reflected_emitted = 0
        for i, packet in enumerate(
            stream_dns_mix(
                count,
                reflected_share=self.reflected_share,
                clients=self.clients,
                servers=self.servers,
                victim=self.victim,
                mean_gap_ns=self.mean_gap_ns,
                response_delay_ns=self.response_delay_ns,
                seed=seed,
            )
        ):
            if packet.reflected:
                self.reflected_emitted += 1
            name = "dns_response" if packet.is_response else "dns_query"
            yield (
                packet.time_ns,
                edge[i % len(edge)],
                EventInstance(name, (packet.client, packet.server)),
            )


@dataclass
class NatChurnTraffic:
    """NAT churn: a rotating population of internal flows (``pkt_internal``)
    with occasional inbound probes (``pkt_external``).  New flows keep
    arriving while old ones re-send, so the mapping table keeps churning."""

    internal_hosts: int = 128
    external_hosts: int = 64
    active_flows: int = 64
    churn_every: int = 16
    probe_share: float = 0.1
    mean_gap_ns: int = 2_000
    first_port: int = 1024

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        rng = random.Random(seed)
        now = 0.0
        next_flow = 0
        active: List[Tuple[int, int]] = []
        for i in range(count):
            now += rng.expovariate(1.0 / self.mean_gap_ns)
            t = int(now)
            switch = edge[i % len(edge)]
            if i % self.churn_every == 0 or not active:
                src = next_flow % self.internal_hosts
                dst = self.internal_hosts + (next_flow * 13 + 5) % self.external_hosts
                next_flow += 1
                active.append((src, dst))
                if len(active) > self.active_flows:
                    active.pop(0)
            if rng.random() < self.probe_share:
                port = self.first_port + rng.randrange(max(1, next_flow + 8))
                dst_ext = self.internal_hosts + rng.randrange(self.external_hosts)
                yield (t, switch, EventInstance("pkt_external", (dst_ext, port)))
            else:
                src, dst = active[rng.randrange(len(active))]
                yield (t, switch, EventInstance("pkt_internal", (src, dst)))


@dataclass
class DiurnalRampTraffic:
    """A diurnal load ramp wrapped around another model: time is warped so
    the instantaneous event rate follows ``1 + depth*sin(...)`` over
    ``period_ns`` — mornings quiet, evenings busy.  The wrapped model's
    event *sequence* is unchanged; only arrival times stretch, so invariants
    that depend on ordering are unaffected."""

    inner: object = None
    period_ns: int = 50_000_000
    depth: float = 0.8

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        import math

        if self.inner is None:
            raise ValueError("DiurnalRampTraffic needs an inner traffic model")
        if not 0.0 <= self.depth <= 1.0:
            # depth > 1 would make the time warp non-monotone, violating the
            # non-decreasing-time contract of streaming sources
            raise ValueError("DiurnalRampTraffic depth must be in [0, 1]")
        two_pi = 2.0 * math.pi
        for time_ns, switch, event in self.inner.events(edge, count, seed):
            phase = (time_ns % self.period_ns) / self.period_ns
            # rate(t) = 1 + depth*sin(2*pi*t): integrate to warp timestamps
            warped = time_ns + self.depth * (self.period_ns / two_pi) * (
                1.0 - math.cos(two_pi * phase)
            )
            yield (int(warped), switch, event)


@dataclass
class EventMixTraffic:
    """Round-robin over explicit event templates — the escape hatch for
    custom scenarios: each template is ``(event_name, argument_ranges)`` and
    arguments are drawn uniformly from their range."""

    templates: Sequence[Tuple[str, Sequence[int]]] = ()
    mean_gap_ns: int = 1_000

    def events(
        self, edge: Sequence[int], count: int, seed: int
    ) -> Iterator[SourceItem]:
        rng = random.Random(seed)
        now = 0.0
        for i in range(count):
            now += rng.expovariate(1.0 / self.mean_gap_ns)
            name, ranges = self.templates[i % len(self.templates)]
            args = tuple(rng.randrange(r) for r in ranges)
            yield (int(now), edge[i % len(edge)], EventInstance(name, args))
