"""Invariant checks, evaluated at end-of-run *or incrementally mid-stream.

Every invariant exposes the streaming pair the service mode needs:
``observe(entry)`` is called per handled event (only for invariants that
need it — state-only invariants keep the batched trace-free drain, which is
what lets million-event scenarios run at full speed), and ``check(network)``
may be called **at any inter-event point**, not just at quiescence.
Invariants whose check is only meaningful once the network has settled
(in-flight sync or routing updates would trip them spuriously) set
``streaming = False`` and are skipped by mid-run evaluation
(``evaluate(..., streaming_only=True)``); their verdict comes from the final
end-of-run evaluation as before.

Observation-based invariants carry state (seen flows, recorded violations),
so they also implement ``snapshot_state()``/``restore_state()`` — the
checkpoint/restore contract of :mod:`repro.service`: a run resumed from a
checkpoint must reach the same verdicts as the uninterrupted run.

``make_invariant`` resolves the invariant names that applications advertise
(:attr:`repro.apps.base.Application.invariants`) to fresh instances; scenario
builders can also construct invariants directly with custom parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.interp.interpreter import lucid_hash
from repro.interp.network import Network, TraceEntry

#: cap on recorded violation messages per invariant (the count is exact)
MAX_VIOLATIONS = 8


class Invariant:
    """Base class: subclass and override ``check`` (and optionally
    ``observe`` + ``snapshot_state``/``restore_state``)."""

    name = "invariant"

    #: whether ``check`` is meaningful between any two handled events
    #: (streaming evaluation); ``False`` restricts it to end-of-run, after
    #: the settle horizon, because in-flight control traffic would trip it
    streaming = True

    def observes(self) -> bool:
        """Whether this invariant needs to see every handled event."""
        cls = type(self)
        return (
            cls.observe is not Invariant.observe
            or cls.on_handle is not Invariant.on_handle
        )

    def reset(self, network: Network, topology) -> None:
        """Called once before the run starts (and again, to re-bind network
        references, before ``restore_state`` when resuming a checkpoint)."""

    def observe(self, entry: TraceEntry) -> None:
        """Called for every handled event (only when ``observes()``) — the
        streaming observation hook."""

    def on_handle(self, entry: TraceEntry) -> None:
        """Deprecated alias of :meth:`observe` (the pre-service-mode name);
        still dispatched for subclasses that override it."""
        self.observe(entry)

    def check(self, network: Network) -> List[str]:
        """Return violation messages (empty when the invariant holds).  Safe
        to call between any two handled events when ``streaming`` is true."""
        return []

    def violation_count(self) -> Optional[int]:
        """Exact number of violations, when it exceeds the recorded messages
        (observation-based invariants cap the messages they keep but count
        every violation).  ``None`` means ``len(check(...))`` is exact."""
        return None

    # -- checkpointing -----------------------------------------------------
    def snapshot_state(self) -> Optional[Dict[str, object]]:
        """Internal observation state as a JSON-serialisable dict, or
        ``None`` for stateless invariants.  Observation-based invariants
        must implement this (checkpointing refuses otherwise — losing their
        state would silently change verdicts on resume)."""
        return None

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore the state of :meth:`snapshot_state`.  Called after
        :meth:`reset` has re-bound network/topology references."""
        raise NotImplementedError(
            f"invariant '{self.name}' does not implement restore_state"
        )


@dataclass
class InvariantReport:
    """Verdict of one invariant over one run."""

    name: str
    ok: bool
    violations: int = 0
    messages: List[str] = field(default_factory=list)


def evaluate(
    invariants: Sequence[Invariant],
    network: Network,
    streaming_only: bool = False,
) -> List[InvariantReport]:
    """Evaluate invariants against the network's current state.

    With ``streaming_only=True`` (the mid-run/service path) invariants whose
    ``streaming`` flag is false are skipped — their check is only meaningful
    after the settle horizon — so the returned list covers the streaming
    subset only."""
    reports = []
    for inv in invariants:
        if streaming_only and not inv.streaming:
            continue
        messages = inv.check(network)
        count = inv.violation_count()
        if count is None:
            count = len(messages)
        reports.append(
            InvariantReport(
                name=inv.name,
                ok=count == 0 and not messages,
                violations=count,
                messages=messages[:MAX_VIOLATIONS],
            )
        )
    return reports


def observer_callback(
    invariants: Sequence[Invariant],
) -> Optional[Callable[[TraceEntry], None]]:
    """Build the ``Network.on_handle`` callback feeding every observing
    invariant (or ``None`` when no invariant observes) — shared by the batch
    runner and the service mode so the wiring cannot drift.  Dispatches to
    ``observe`` directly, falling back to a legacy ``on_handle`` override."""
    callbacks = []
    for inv in invariants:
        if not inv.observes():
            continue
        if type(inv).observe is not Invariant.observe:
            callbacks.append(inv.observe)
        else:
            callbacks.append(inv.on_handle)
    if not callbacks:
        return None
    if len(callbacks) == 1:
        return callbacks[0]

    def on_handle(entry: TraceEntry, _callbacks=tuple(callbacks)) -> None:
        for callback in _callbacks:
            callback(entry)

    return on_handle


def capture_invariant_states(
    invariants: Sequence[Invariant],
) -> List[Optional[Dict[str, object]]]:
    """Snapshot every invariant's observation state, index-aligned with the
    input.  Observation-based invariants without checkpoint support are
    refused: resuming them with empty state would silently change verdicts."""
    states: List[Optional[Dict[str, object]]] = []
    for inv in invariants:
        state = inv.snapshot_state()
        if state is None and inv.observes():
            raise SimulationError(
                f"invariant '{inv.name}' observes events but does not "
                f"implement snapshot_state(); it cannot be checkpointed"
            )
        states.append(state)
    return states


def restore_invariant_states(
    invariants: Sequence[Invariant],
    states: Sequence[Optional[Dict[str, object]]],
) -> None:
    """Restore states captured by :func:`capture_invariant_states` (call
    each invariant's ``reset`` first to re-bind network references)."""
    if len(states) != len(invariants):
        raise SimulationError(
            f"checkpoint holds {len(states)} invariant states but the "
            f"scenario built {len(invariants)} invariants"
        )
    for inv, state in zip(invariants, states):
        if state is not None:
            inv.restore_state(state)


# ---------------------------------------------------------------------------
# firewall family
# ---------------------------------------------------------------------------
class FirewallSolicitedOnly(Invariant):
    """The firewall never admits an un-solicited inbound flow: every
    ``pkt_in`` forwarded to the trusted port must reverse a previously seen
    outbound flow.  Observation-based (tracks outbound flow keys; memory is
    bounded by distinct flows, not events)."""

    name = "firewall-solicited-only"

    def __init__(self, out_event: str = "pkt_out", in_event: str = "pkt_in",
                 trusted_port: int = 1):
        self.out_event = out_event
        self.in_event = in_event
        self.trusted_port = trusted_port
        self._outbound: Set[Tuple[int, int]] = set()
        self._violations: List[str] = []
        self._count = 0

    def reset(self, network: Network, topology) -> None:
        self._outbound.clear()
        self._violations.clear()
        self._count = 0

    def observe(self, entry: TraceEntry) -> None:
        event = entry.event
        if event.name == self.out_event:
            self._outbound.add((event.args[0], event.args[1]))
        elif event.name == self.in_event and entry.result.forwarded_port == self.trusted_port:
            src, dst = event.args[0], event.args[1]
            if (dst, src) not in self._outbound:
                self._count += 1
                if len(self._violations) < MAX_VIOLATIONS:
                    self._violations.append(
                        f"t={entry.time_ns}ns sw{entry.switch_id}: unsolicited "
                        f"{self.in_event}({src}, {dst}) admitted to trusted port"
                    )

    def check(self, network: Network) -> List[str]:
        return list(self._violations)

    def violation_count(self) -> Optional[int]:
        return self._count

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "outbound": sorted(list(pair) for pair in self._outbound),
            "violations": list(self._violations),
            "count": self._count,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._outbound = {(a, b) for a, b in state["outbound"]}
        self._violations = list(state["violations"])
        self._count = state["count"]


class NatMappingsBijective(Invariant):
    """NAT mappings are bijective: every occupied slot holds a distinct flow
    key and a distinct external port (no two flows share a port, no flow
    appears twice)."""

    name = "nat-bijective"

    def __init__(self, key_array: str = "map_key", port_array: str = "map_port",
                 first_port: int = 1024):
        self.key_array = key_array
        self.port_array = port_array
        self.first_port = first_port

    def check(self, network: Network) -> List[str]:
        messages = []
        for sid, switch in network.switches.items():
            keys = switch.array(self.key_array).cells
            ports = switch.array(self.port_array).cells
            seen_keys: Dict[int, int] = {}
            seen_ports: Dict[int, int] = {}
            for idx, key in enumerate(keys):
                if key == 0:
                    continue
                port = ports[idx]
                if key in seen_keys:
                    messages.append(
                        f"sw{sid}: flow key {key} mapped twice "
                        f"(slots {seen_keys[key]} and {idx})"
                    )
                seen_keys.setdefault(key, idx)
                if port != 0:
                    if port <= self.first_port:
                        messages.append(
                            f"sw{sid}: slot {idx} allocated reserved port {port}"
                        )
                    if port in seen_ports:
                        messages.append(
                            f"sw{sid}: external port {port} assigned to two flows "
                            f"(slots {seen_ports[port]} and {idx})"
                        )
                    seen_ports.setdefault(port, idx)
        return messages


# ---------------------------------------------------------------------------
# DNS defense
# ---------------------------------------------------------------------------
class DnsVictimBlocked(Invariant):
    """After enough reflected responses, the victim client is blocked — and a
    designated benign witness client (whose blocked-table cell provably does
    not collide with the victim's) never is.

    When a ``traffic`` model with a ``reflected_emitted`` counter is given,
    the victim half of the check stays vacuous until the emitted reflected
    responses comfortably exceed the blocking threshold (the witness half
    always applies)."""

    name = "dns-victim-blocked"

    def __init__(self, victim: int = 7, clients: int = 64, seed_a: int = 7,
                 threshold: int = 100, traffic=None):
        self.victim = victim
        self.clients = clients
        self.seed_a = seed_a
        self.threshold = threshold
        self.traffic = traffic
        self.witness = self._pick_witness()

    def _pick_witness(self) -> Optional[int]:
        victim_cell = lucid_hash(10, [self.victim, self.seed_a])
        for client in range(self.clients):
            if client == self.victim:
                continue
            if lucid_hash(10, [client, self.seed_a]) != victim_cell:
                return client
        return None

    def check(self, network: Network) -> List[str]:
        expect_blocked = True
        if self.traffic is not None:
            reflected = getattr(self.traffic, "reflected_emitted", 0)
            expect_blocked = reflected > self.threshold + 8
        messages = []
        for sid, switch in network.switches.items():
            handled = switch.stats.handled_by_event.get("dns_response", 0)
            if handled == 0:
                continue
            blocked = switch.array("blocked").cells
            victim_cell = lucid_hash(10, [self.victim, self.seed_a]) % len(blocked)
            if expect_blocked and blocked[victim_cell] != 1:
                messages.append(
                    f"sw{sid}: victim client {self.victim} not blocked after "
                    f"{handled} responses"
                )
            if self.witness is not None:
                witness_cell = lucid_hash(10, [self.witness, self.seed_a]) % len(blocked)
                if blocked[witness_cell] == 1:
                    messages.append(
                        f"sw{sid}: benign witness client {self.witness} was blocked"
                    )
        return messages


# ---------------------------------------------------------------------------
# sketches
# ---------------------------------------------------------------------------
class SketchConservation(Invariant):
    """Count-min conservation: with no export/aging running, every packet
    increments each sketch row exactly once, so each row sums to the number
    of ``pkt`` events the switch handled."""

    name = "sketch-conservation"

    def __init__(self, rows: Sequence[str] = ("row_a", "row_b"), pkt_event: str = "pkt"):
        self.rows = tuple(rows)
        self.pkt_event = pkt_event

    def check(self, network: Network) -> List[str]:
        messages = []
        for sid, switch in network.switches.items():
            handled = switch.stats.handled_by_event.get(self.pkt_event, 0)
            for row in self.rows:
                total = sum(switch.array(row).cells)
                if total != handled:
                    messages.append(
                        f"sw{sid}: sum({row}) = {total} but {handled} "
                        f"{self.pkt_event} events were handled"
                    )
        return messages


class SketchOverestimates(Invariant):
    """The count-min guarantee: for every tracked heavy-hitter flow, the
    sketch estimate (min across rows) is at least the true emitted count.
    Ground truth comes from the traffic model's per-switch counters."""

    name = "sketch-overestimates"
    #: ground truth counts packets at *emission*; an emitted-but-unhandled
    #: packet would make the sketch look low mid-run
    streaming = False

    def __init__(self, traffic, rows=(("row_a", 5), ("row_b", 211)), width: int = 10):
        self.traffic = traffic
        self.rows = rows
        self.width = width

    def check(self, network: Network) -> List[str]:
        messages = []
        for sid, flows in self.traffic.emitted.items():
            switch = network.switches[sid]
            for (src, dst), true_count in flows.items():
                estimate = None
                for row_name, seed in self.rows:
                    cells = switch.array(row_name).cells
                    idx = lucid_hash(self.width, [src, dst, seed]) % len(cells)
                    value = cells[idx]
                    estimate = value if estimate is None else min(estimate, value)
                if estimate is not None and estimate < true_count:
                    messages.append(
                        f"sw{sid}: flow ({src}, {dst}) estimate {estimate} < "
                        f"true count {true_count}"
                    )
        return messages


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------
class RipConverged(Invariant):
    """Distance-vector convergence: every switch's advertised distance to the
    destination equals its true hop count in the topology, and its next hop
    is a neighbour that is one hop closer."""

    name = "rip-converged"
    #: convergence is an end-state property; mid-run distances are in flux
    streaming = False

    def __init__(self, dest: int = 0, infinity: int = 1_048_576):
        self.dest = dest
        self.infinity = infinity
        self._topology = None

    def reset(self, network: Network, topology) -> None:
        self._topology = topology

    def check(self, network: Network) -> List[str]:
        if self._topology is None:
            return ["rip-converged: no topology bound (reset was not called)"]
        hops = self._topology.hop_distances_from(self.dest)
        messages = []
        for sid, switch in network.switches.items():
            expected = hops.get(sid)
            dist = switch.array("dist").cells[0]
            if expected is None:
                if dist < self.infinity:
                    messages.append(
                        f"sw{sid}: unreachable from {self.dest} but advertises {dist}"
                    )
                continue
            if dist != expected:
                messages.append(
                    f"sw{sid}: distance {dist} != true hop count {expected}"
                )
                continue
            if sid != self.dest:
                nexthop = switch.array("nexthop").cells[0]
                if nexthop not in self._topology.neighbors(sid):
                    messages.append(f"sw{sid}: next hop {nexthop} is not a neighbour")
                elif hops.get(nexthop) != expected - 1:
                    messages.append(
                        f"sw{sid}: next hop {nexthop} is not one hop closer to "
                        f"{self.dest}"
                    )
        return messages


class RerouteRecovers(Invariant):
    """After a link failure, the rerouter converges: no data packet is
    forwarded into the failed link after ``tolerance_ns``, and at least one
    data packet is successfully rerouted afterwards.  The failure context
    (switch, dead peer, time) is announced via :meth:`announce_failure` by
    the failure control action."""

    name = "reroute-recovers"
    #: right after a failure no packet has been rerouted yet — only the
    #: settled network can be held to "at least one packet rerouted"
    streaming = False

    def __init__(self, tolerance_ns: int = 50_000, data_event: str = "data_pkt"):
        self.tolerance_ns = tolerance_ns
        self.data_event = data_event
        self._failures: List[Tuple[int, int, int]] = []  # (time, switch, dead peer)
        self._violations: List[str] = []
        self._late_count = 0
        self._forwarded_after = 0

    def reset(self, network: Network, topology) -> None:
        self._failures.clear()
        self._violations.clear()
        self._late_count = 0
        self._forwarded_after = 0

    def announce_failure(self, time_ns: int, switch_id: int, dead_peer: int) -> None:
        self._failures.append((time_ns, switch_id, dead_peer))

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "failures": [list(f) for f in self._failures],
            "violations": list(self._violations),
            "late_count": self._late_count,
            "forwarded_after": self._forwarded_after,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        self._failures = [tuple(f) for f in state["failures"]]
        self._violations = list(state["violations"])
        self._late_count = state["late_count"]
        self._forwarded_after = state["forwarded_after"]

    def observe(self, entry: TraceEntry) -> None:
        if entry.event.name != self.data_event:
            return
        port = entry.result.forwarded_port
        if port is None:
            return
        for fail_ns, switch_id, dead_peer in self._failures:
            if entry.switch_id != switch_id or entry.time_ns < fail_ns:
                continue
            if port == dead_peer:
                if entry.time_ns > fail_ns + self.tolerance_ns:
                    self._late_count += 1
                    if len(self._violations) < MAX_VIOLATIONS:
                        self._violations.append(
                            f"t={entry.time_ns}ns sw{switch_id}: still forwarding "
                            f"into failed link toward {dead_peer} "
                            f"({entry.time_ns - fail_ns}ns after failure)"
                        )
            else:
                self._forwarded_after += 1

    def _never_recovered(self) -> bool:
        return bool(self._failures) and self._forwarded_after == 0

    def check(self, network: Network) -> List[str]:
        messages = list(self._violations)
        if self._never_recovered():
            messages.append(
                "no data packet was rerouted around the failed link"
            )
        return messages

    def violation_count(self) -> Optional[int]:
        return self._late_count + (1 if self._never_recovered() else 0)


# ---------------------------------------------------------------------------
# replication
# ---------------------------------------------------------------------------
class ReplicasConsistent(Invariant):
    """At quiescence, the named arrays are identical on every (replica)
    switch — distributed synchronisation delivered every update."""

    #: replicas legitimately diverge while sync events are in flight
    streaming = False

    def __init__(self, arrays: Sequence[str], switches: Optional[Sequence[int]] = None,
                 name: str = "replicas-consistent"):
        self.arrays = tuple(arrays)
        self.switches = tuple(switches) if switches is not None else None
        self.name = name

    def check(self, network: Network) -> List[str]:
        ids = list(self.switches) if self.switches is not None else sorted(network.switches)
        if len(ids) < 2:
            return []
        messages = []
        reference = ids[0]
        for array_name in self.arrays:
            baseline = network.switches[reference].array(array_name).cells
            for sid in ids[1:]:
                cells = network.switches[sid].array(array_name).cells
                if cells != baseline:
                    diverging = sum(1 for a, b in zip(baseline, cells) if a != b)
                    messages.append(
                        f"array '{array_name}' diverges between sw{reference} and "
                        f"sw{sid} ({diverging} cells differ)"
                    )
        return messages


class NoDrops(Invariant):
    """No switch dropped any packet (used where every flow is benign and
    solicited, e.g. the DFW ring with RTT far above the sync latency)."""

    name = "no-drops"

    def check(self, network: Network) -> List[str]:
        return [
            f"sw{sid}: {switch.stats.drops} packets dropped"
            for sid, switch in network.switches.items()
            if switch.stats.drops > 0
        ]


class SequencerMonotone(Invariant):
    """SRO: the sequencer handed out exactly one sequence number per write
    request, and no replica holds a sequence number above the maximum
    issued."""

    name = "sequencer-monotone"

    def __init__(self, sequencer: int = 0):
        self.sequencer = sequencer

    def check(self, network: Network) -> List[str]:
        messages = []
        seq_switch = network.switches[self.sequencer]
        issued = seq_switch.array("next_seq").cells[0]
        writes = seq_switch.stats.handled_by_event.get("write_req", 0)
        if issued != writes:
            messages.append(
                f"sequencer issued {issued} sequence numbers for {writes} write_req"
            )
        for sid, switch in network.switches.items():
            held = max(switch.array("seqs").cells, default=0)
            if held > issued:
                messages.append(
                    f"sw{sid}: holds sequence number {held} > {issued} ever issued"
                )
        return messages


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[], Invariant]] = {
    "firewall-solicited-only": FirewallSolicitedOnly,
    "nat-bijective": NatMappingsBijective,
    "dns-victim-blocked": DnsVictimBlocked,
    "sketch-conservation": SketchConservation,
    "rip-converged": RipConverged,
    "reroute-recovers": RerouteRecovers,
    "no-drops": NoDrops,
    "sequencer-monotone": SequencerMonotone,
    "dfw-filters-consistent": lambda: ReplicasConsistent(
        ("bloom_a", "bloom_b"), name="dfw-filters-consistent"
    ),
    "sro-replicas-consistent": lambda: ReplicasConsistent(
        ("values", "seqs"), name="sro-replicas-consistent"
    ),
}


def make_invariant(name: str) -> Invariant:
    """Instantiate a registered invariant by name (fresh instance per call)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown invariant '{name}'; known: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def invariant_names() -> List[str]:
    return sorted(_FACTORIES)
