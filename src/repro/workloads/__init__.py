"""Synthetic workload generators used by the examples and benchmarks.

Two families live here: the original materialising generators
(:class:`FlowWorkload`, :class:`DnsTrafficMix`, :class:`LinkFailureSchedule`)
and their streaming counterparts (:func:`iter_flows`, :func:`stream_dns_mix`,
:func:`iter_random_failures`) which yield lazily in time order so
arbitrarily long workloads never materialise a list.  The scenario engine
(:mod:`repro.scenarios`) builds its traffic models on the streaming family.
"""

from repro.workloads.flows import Flow, FlowWorkload, iter_flows, poisson_flow_arrivals
from repro.workloads.failures import LinkFailure, LinkFailureSchedule, iter_random_failures
from repro.workloads.dns import DnsPacket, DnsTrafficMix, stream_dns_mix

__all__ = [
    "Flow",
    "FlowWorkload",
    "iter_flows",
    "poisson_flow_arrivals",
    "LinkFailure",
    "LinkFailureSchedule",
    "iter_random_failures",
    "DnsPacket",
    "DnsTrafficMix",
    "stream_dns_mix",
]
