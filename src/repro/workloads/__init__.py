"""Synthetic workload generators used by the examples and benchmarks."""

from repro.workloads.flows import Flow, FlowWorkload, poisson_flow_arrivals
from repro.workloads.failures import LinkFailureSchedule
from repro.workloads.dns import DnsTrafficMix

__all__ = [
    "Flow",
    "FlowWorkload",
    "poisson_flow_arrivals",
    "LinkFailureSchedule",
    "DnsTrafficMix",
]
