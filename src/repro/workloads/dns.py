"""DNS traffic mixes for the closed-loop DNS-defense application.

A DNS reflection attack sends queries with a spoofed (victim) source address;
the victim then receives unsolicited responses.  The defense application
tracks query/response asymmetry per source with sketches and Bloom filters.
This generator produces a mix of benign query/response pairs and reflected
responses with no matching query.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class DnsPacket:
    """One DNS packet: (time, client, server, is_response)."""

    time_ns: int
    client: int
    server: int
    is_response: bool
    reflected: bool = False


@dataclass
class DnsTrafficMix:
    """A deterministic mix of benign DNS traffic and reflected responses."""

    packets: List[DnsPacket] = field(default_factory=list)

    @staticmethod
    def generate(
        benign_queries: int = 200,
        reflected_responses: int = 100,
        clients: int = 64,
        servers: int = 16,
        victim: int = 7,
        duration_ns: int = 10_000_000,
        seed: int = 11,
    ) -> "DnsTrafficMix":
        rng = random.Random(seed)
        packets: List[DnsPacket] = []
        for _ in range(benign_queries):
            t = rng.randrange(duration_ns)
            client = rng.randrange(clients)
            server = rng.randrange(servers)
            packets.append(DnsPacket(time_ns=t, client=client, server=server, is_response=False))
            packets.append(
                DnsPacket(time_ns=t + 50_000, client=client, server=server, is_response=True)
            )
        for _ in range(reflected_responses):
            t = rng.randrange(duration_ns)
            server = rng.randrange(servers)
            packets.append(
                DnsPacket(
                    time_ns=t, client=victim, server=server, is_response=True, reflected=True
                )
            )
        packets.sort(key=lambda p: p.time_ns)
        return DnsTrafficMix(packets=packets)

    def benign(self) -> List[DnsPacket]:
        return [p for p in self.packets if not p.reflected]

    def reflected(self) -> List[DnsPacket]:
        return [p for p in self.packets if p.reflected]


def stream_dns_mix(
    total_packets: int,
    reflected_share: float = 0.3,
    clients: int = 64,
    servers: int = 16,
    victim: int = 7,
    mean_gap_ns: int = 20_000,
    response_delay_ns: int = 50_000,
    seed: int = 11,
) -> Iterator[DnsPacket]:
    """Stream a benign-query/reflected-response mix in time order, lazily.

    Unlike :meth:`DnsTrafficMix.generate` (which materialises and sorts),
    arrivals follow a Poisson process so the stream is ordered by
    construction.  Pending responses (a query's answer arrives
    ``response_delay_ns`` later) sit in a small heap bounded by the number of
    queries in flight during one response delay — independent of
    ``total_packets``.  Reflected responses target ``victim`` with no matching
    query.  Deterministic for a fixed seed.
    """
    rng = random.Random(seed)
    pending: List[Tuple[int, int, DnsPacket]] = []  # (time, tiebreak, response)
    emitted = 0
    tiebreak = 0
    now = 0.0
    while emitted < total_packets:
        now += rng.expovariate(1.0 / mean_gap_ns)
        arrival = int(now)
        # release responses that come due before this arrival
        while pending and pending[0][0] <= arrival and emitted < total_packets:
            yield heapq.heappop(pending)[2]
            emitted += 1
        if emitted >= total_packets:
            break
        if rng.random() < reflected_share:
            server = rng.randrange(servers)
            yield DnsPacket(
                time_ns=arrival, client=victim, server=server,
                is_response=True, reflected=True,
            )
            emitted += 1
        else:
            client = rng.randrange(clients)
            server = rng.randrange(servers)
            yield DnsPacket(
                time_ns=arrival, client=client, server=server, is_response=False
            )
            emitted += 1
            tiebreak += 1
            heapq.heappush(
                pending,
                (
                    arrival + response_delay_ns,
                    tiebreak,
                    DnsPacket(
                        time_ns=arrival + response_delay_ns,
                        client=client,
                        server=server,
                        is_response=True,
                    ),
                ),
            )
    # drain whatever responses remain due, still in time order
    while pending and emitted < total_packets:
        yield heapq.heappop(pending)[2]
        emitted += 1
