"""DNS traffic mixes for the closed-loop DNS-defense application.

A DNS reflection attack sends queries with a spoofed (victim) source address;
the victim then receives unsolicited responses.  The defense application
tracks query/response asymmetry per source with sketches and Bloom filters.
This generator produces a mix of benign query/response pairs and reflected
responses with no matching query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class DnsPacket:
    """One DNS packet: (time, client, server, is_response)."""

    time_ns: int
    client: int
    server: int
    is_response: bool
    reflected: bool = False


@dataclass
class DnsTrafficMix:
    """A deterministic mix of benign DNS traffic and reflected responses."""

    packets: List[DnsPacket] = field(default_factory=list)

    @staticmethod
    def generate(
        benign_queries: int = 200,
        reflected_responses: int = 100,
        clients: int = 64,
        servers: int = 16,
        victim: int = 7,
        duration_ns: int = 10_000_000,
        seed: int = 11,
    ) -> "DnsTrafficMix":
        rng = random.Random(seed)
        packets: List[DnsPacket] = []
        for _ in range(benign_queries):
            t = rng.randrange(duration_ns)
            client = rng.randrange(clients)
            server = rng.randrange(servers)
            packets.append(DnsPacket(time_ns=t, client=client, server=server, is_response=False))
            packets.append(
                DnsPacket(time_ns=t + 50_000, client=client, server=server, is_response=True)
            )
        for _ in range(reflected_responses):
            t = rng.randrange(duration_ns)
            server = rng.randrange(servers)
            packets.append(
                DnsPacket(
                    time_ns=t, client=victim, server=server, is_response=True, reflected=True
                )
            )
        packets.sort(key=lambda p: p.time_ns)
        return DnsTrafficMix(packets=packets)

    def benign(self) -> List[DnsPacket]:
        return [p for p in self.packets if not p.reflected]

    def reflected(self) -> List[DnsPacket]:
        return [p for p in self.packets if p.reflected]
