"""Flow-level traffic generation.

The stateful-firewall, NAT, load-balancer and telemetry applications are
driven by flows: a 5-tuple-ish key, an arrival time, a packet count, and a
direction (outbound from the protected enterprise or inbound return traffic).
The generators here are deterministic given a seed, so every benchmark and
test is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Flow:
    """One flow: a source/destination pair plus timing."""

    flow_id: int
    src: int
    dst: int
    start_ns: int
    packets: int = 4
    inter_packet_ns: int = 10_000
    outbound: bool = True

    def key(self) -> Tuple[int, int]:
        """The key the firewall / NAT tables index on."""
        return (self.src, self.dst)

    def reverse_key(self) -> Tuple[int, int]:
        return (self.dst, self.src)

    def packet_times(self) -> List[int]:
        return [self.start_ns + i * self.inter_packet_ns for i in range(self.packets)]


@dataclass
class FlowWorkload:
    """A reproducible collection of flows."""

    flows: List[Flow] = field(default_factory=list)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def __len__(self) -> int:
        return len(self.flows)

    @property
    def duration_ns(self) -> int:
        if not self.flows:
            return 0
        return max(t for f in self.flows for t in f.packet_times())

    @staticmethod
    def generate(
        num_flows: int,
        flow_rate_per_s: float = 10_000.0,
        hosts: int = 256,
        external_hosts: int = 1024,
        packets_per_flow: int = 4,
        rtt_ns: int = 200_000,
        seed: int = 1,
    ) -> "FlowWorkload":
        """Generate ``num_flows`` outbound flows with Poisson arrivals.

        Each outbound flow is followed by its return flow one RTT later, which
        is what makes the firewall's flow-installation latency matter.
        Materialises :func:`iter_flows`; use the generator directly for
        streaming workloads that should not hold every flow in memory.
        """
        return FlowWorkload(
            flows=list(
                iter_flows(
                    num_flows,
                    flow_rate_per_s=flow_rate_per_s,
                    hosts=hosts,
                    external_hosts=external_hosts,
                    packets_per_flow=packets_per_flow,
                    rtt_ns=rtt_ns,
                    seed=seed,
                )
            )
        )


def iter_flows(
    num_flows: int,
    flow_rate_per_s: float = 10_000.0,
    hosts: int = 256,
    external_hosts: int = 1024,
    packets_per_flow: int = 4,
    rtt_ns: int = 200_000,
    seed: int = 1,
) -> Iterator[Flow]:
    """Stream the flows of :meth:`FlowWorkload.generate` lazily, in the same
    deterministic order (outbound flow, then its return flow one RTT later).

    Outbound flows are emitted in non-decreasing ``start_ns`` order; the
    paired return flow starts ``rtt_ns`` later and may therefore interleave
    with subsequent outbound flows on the wire — callers that need a fully
    time-ordered packet stream should merge on packet times (the scenario
    traffic models do).
    """
    rng = random.Random(seed)
    now = 0.0
    for flow_id in range(num_flows):
        now += rng.expovariate(flow_rate_per_s) * 1e9
        src = rng.randrange(hosts)
        dst = hosts + rng.randrange(external_hosts)
        yield Flow(
            flow_id=2 * flow_id,
            src=src,
            dst=dst,
            start_ns=int(now),
            packets=packets_per_flow,
            outbound=True,
        )
        yield Flow(
            flow_id=2 * flow_id + 1,
            src=dst,
            dst=src,
            start_ns=int(now) + rtt_ns,
            packets=packets_per_flow,
            outbound=False,
        )


def poisson_flow_arrivals(
    rate_per_s: float, duration_s: float, seed: int = 1
) -> List[int]:
    """Arrival times (ns) of a Poisson process — used by the overhead models."""
    rng = random.Random(seed)
    times: List[int] = []
    now = 0.0
    limit = duration_s * 1e9
    while True:
        now += rng.expovariate(rate_per_s) * 1e9
        if now > limit:
            break
        times.append(int(now))
    return times
