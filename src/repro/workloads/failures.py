"""Link-failure schedules for the fast rerouter and RIP applications."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class LinkFailure:
    """One link failing (and optionally recovering)."""

    link: Tuple[int, int]
    fail_at_ns: int
    recover_at_ns: Optional[int] = None


@dataclass
class LinkFailureSchedule:
    """A reproducible schedule of link failures."""

    failures: List[LinkFailure] = field(default_factory=list)

    def failed_links(self, now_ns: int) -> List[Tuple[int, int]]:
        """Links that are down at ``now_ns``."""
        down = []
        for failure in self.failures:
            if failure.fail_at_ns <= now_ns and (
                failure.recover_at_ns is None or now_ns < failure.recover_at_ns
            ):
                down.append(failure.link)
        return down

    @staticmethod
    def random_failures(
        links: List[Tuple[int, int]],
        count: int,
        window_ns: int,
        mean_downtime_ns: int = 5_000_000,
        seed: int = 7,
    ) -> "LinkFailureSchedule":
        rng = random.Random(seed)
        failures = []
        for _ in range(count):
            link = rng.choice(links)
            fail_at = rng.randrange(window_ns)
            downtime = int(rng.expovariate(1.0 / mean_downtime_ns))
            failures.append(
                LinkFailure(link=link, fail_at_ns=fail_at, recover_at_ns=fail_at + downtime)
            )
        failures.sort(key=lambda f: f.fail_at_ns)
        return LinkFailureSchedule(failures=failures)


def iter_random_failures(
    links: List[Tuple[int, int]],
    count: int,
    mean_gap_ns: int = 2_000_000,
    mean_downtime_ns: int = 5_000_000,
    seed: int = 7,
) -> Iterator[LinkFailure]:
    """Stream ``count`` link failures lazily, sorted by construction.

    Failure times follow a Poisson process (exponential inter-failure gaps)
    rather than uniform draws over a fixed window, so the stream is emitted
    in non-decreasing ``fail_at_ns`` order without materialising and sorting —
    the streaming counterpart of :meth:`LinkFailureSchedule.random_failures`.
    Deterministic for a fixed seed.
    """
    rng = random.Random(seed)
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(1.0 / mean_gap_ns)
        link = rng.choice(links)
        downtime = int(rng.expovariate(1.0 / mean_downtime_ns))
        fail_at = int(now)
        yield LinkFailure(link=link, fail_at_ns=fail_at, recover_at_ns=fail_at + downtime)
