"""Sharded multiprocess network execution.

Partitions a topology across worker processes (one shard per fat-tree /
leaf-spine pod group), runs each shard's switches with the ordinary
:class:`~repro.interp.network.Network` streaming drain, and exchanges
cross-shard events in timestamp-bucketed batches under a conservative
lookahead barrier — every shard only advances to ``t + lookahead`` once all
peers have flushed their events ``<= t``.

Determinism is exact, not statistical: heap tie-break keys are
content-derived (see ``interp/network.py``), so the same seed produces
byte-identical per-switch array digests, stats, and invariant verdicts as
the single-process run, for any shard count and any per-shard engine mix.
"""

from repro.shard.partition import ShardPlan, partition_topology
from repro.shard.coordinator import run_sharded

__all__ = ["ShardPlan", "partition_topology", "run_sharded"]
