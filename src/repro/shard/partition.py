"""Topology partitioning and lookahead computation for sharded execution.

The partitioner maps every switch to a shard and derives the *lookahead*:
the minimum simulated time any event takes to cross a shard boundary.  A
shard that has seen all peer events ``<= T`` can therefore safely execute
its own events in ``[T, T + lookahead)`` — nothing a peer does in that
window can land inside it (conservative, null-message-free barrier; the
classic Chandy–Misra–Bryant bound specialised to our fixed link latencies).

The lookahead must be a *global* bound, not just the minimum over declared
cross-shard links: the simulated fabric is logically full-mesh (a handler
may generate an event for *any* switch, delivered at the default link
latency — see :meth:`Network.link_latency`), so the default latency always
participates in the minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.interp.network import SchedulerConfig
from repro.scenarios.topology import Topology


@dataclass
class ShardPlan:
    """Switch-to-shard assignment plus the barrier lookahead."""

    num_shards: int
    #: switch id -> shard index
    owner: Dict[int, int]
    #: shard index -> sorted switch ids
    shards: List[List[int]] = field(default_factory=list)
    #: conservative barrier window (ns): min simulated time for any event to
    #: cross a shard boundary
    lookahead_ns: int = 0
    #: declared links that cross a shard boundary, as (a, b, latency_ns)
    cross_links: List[Tuple[int, int, int]] = field(default_factory=list)

    def shard_of(self, switch_id: int) -> int:
        return self.owner[switch_id]


def partition_topology(
    topology: Topology,
    num_shards: int,
    config: Optional[SchedulerConfig] = None,
) -> ShardPlan:
    """Partition ``topology`` into ``num_shards`` shards.

    Locality groups (:attr:`Topology.pods`) are kept whole and distributed
    contiguously across shards; switches in no group (fat-tree cores,
    leaf-spine spines) are round-robined by id.  Topologies without pod
    metadata (line, ring) fall back to contiguous id ranges, which keeps
    neighbouring switches together.
    """
    if num_shards < 1:
        raise SimulationError(f"need at least one shard, got {num_shards}")
    if num_shards > topology.num_switches:
        raise SimulationError(
            f"cannot split {topology.num_switches} switches into "
            f"{num_shards} shards"
        )
    config = config or SchedulerConfig()

    owner: Dict[int, int] = {}
    pods = topology.pods
    if pods and len(pods) >= num_shards:
        # contiguous group chunking: group g of G goes to shard g*N//G, so
        # shard sizes differ by at most one group
        num_groups = len(pods)
        for g, members in enumerate(pods):
            shard = g * num_shards // num_groups
            for sid in members:
                owner[sid] = shard
        leftover = [s for s in range(topology.num_switches) if s not in owner]
        for i, sid in enumerate(leftover):
            owner[sid] = i % num_shards
    else:
        # contiguous id ranges (line/ring, or more shards than pods)
        n = topology.num_switches
        for sid in range(n):
            owner[sid] = sid * num_shards // n

    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for sid in sorted(owner):
        shards[owner[sid]].append(sid)
    for shard, members in enumerate(shards):
        if not members:
            raise SimulationError(f"shard {shard} ended up with no switches")

    cross_links = [
        (a, b, latency)
        for a, b, latency in topology.links
        if owner[a] != owner[b]
    ]
    # the full-mesh default bounds every undeclared pair, and a declared
    # cross-shard link may be faster still
    min_link = config.link_latency_ns
    for _, _, latency in cross_links:
        min_link = min(min_link, latency)
    lookahead = config.pipeline_latency_ns + min_link
    if lookahead <= 0:
        raise SimulationError(
            "conservative sharding needs positive cross-shard latency "
            f"(pipeline {config.pipeline_latency_ns} ns + min link "
            f"{min_link} ns)"
        )
    return ShardPlan(
        num_shards=num_shards,
        owner=owner,
        shards=shards,
        lookahead_ns=lookahead,
        cross_links=cross_links,
    )
