"""The shard worker: one process, one subset of a scenario's switches.

Each worker rebuilds the scenario from the registry (name + events + seed —
deterministic, so no closures cross the process boundary), filters the full
traffic stream down to the switches it owns (keeping *every* CONTROL action,
since link state is global), and then executes barrier windows on command
from the coordinator: deliver the peers' exported events, drain up to the
window end with the ordinary streaming drain, and ship back whatever its
own switches generated for switches it does not own.

For scenarios with observing invariants the worker also records each
dispatch's ``(time, tie-break key)`` plus the fields those invariants read
(event name/args, forwarded port, drop flag); the coordinator sorts the
records from all shards into the exact single-process dispatch order and
replays them through fresh invariant instances.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from repro.interp.network import CONTROL, SourceItem
from repro.obs.metrics import REGISTRY, enable as obs_enable


@dataclass
class ShardSpec:
    """Everything a worker needs to rebuild and run its shard (picklable)."""

    scenario: str
    events: int
    seed: int
    engine: str
    shard_index: int
    owned: Tuple[int, ...]
    #: record per-dispatch observation tuples for invariant replay
    record_obs: bool = False
    #: enable the obs metrics registry and ship a value dump at finish
    metrics: bool = False


class ShardSource:
    """This shard's slice of the traffic stream, tagged with each item's
    *global* stream index (the deterministic tie-break key for source-
    delivered dispatches).  Implements the ``push_back`` hook so interrupted
    windows hold their place, exactly like the service-mode cursor."""

    def __init__(self, items: List[Tuple[int, SourceItem]]):
        self._items = items
        self._pos = 0
        self._pushed: Optional[Tuple[int, SourceItem]] = None
        #: global stream index of the most recently yielded item
        self.last_index = -1

    def __iter__(self) -> "ShardSource":
        return self

    def __next__(self) -> SourceItem:
        if self._pushed is not None:
            idx, item = self._pushed
            self._pushed = None
        else:
            if self._pos >= len(self._items):
                raise StopIteration
            idx, item = self._items[self._pos]
            self._pos += 1
        self.last_index = idx
        return item

    def push_back(self, item: SourceItem) -> None:
        # the drain only ever returns the item it pulled last
        self._pushed = (self.last_index, item)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next item, or None when exhausted."""
        if self._pushed is not None:
            return self._pushed[1][0]
        if self._pos < len(self._items):
            return self._items[self._pos][1][0]
        return None


def _worker_loop(conn, spec: ShardSpec) -> None:
    # imported here so a spawned child only pays for what it uses
    from repro.scenarios import registry

    t0 = perf_counter()
    if spec.metrics:
        obs_enable()
    scenario = registry.get(spec.scenario)
    setup = scenario.build(spec.events, spec.seed)
    network = setup.make_network(spec.engine)
    if setup.prepare is not None:
        setup.prepare(network)
    network.trace_enabled = False

    exports: List[Tuple[int, int, int, object]] = []
    network.set_shard(
        spec.owned,
        lambda time_ns, key, switch_id, event: exports.append(
            (time_ns, key, switch_id, event)
        ),
    )

    t1 = perf_counter()
    owned = frozenset(spec.owned)
    items: List[Tuple[int, SourceItem]] = []
    last_ns = 0
    injected = 0
    for idx, item in enumerate(setup.traffic()):
        if item[0] > last_ns:
            last_ns = item[0]
        sid = item[1]
        if sid == CONTROL:
            # link state is global: every shard replays every control action
            items.append((idx, item))
        elif sid in owned:
            injected += 1
            items.append((idx, item))
    source = ShardSource(items)
    t2 = perf_counter()

    records: List[tuple] = []
    if spec.record_obs:

        def on_handle(entry, _records=records, _network=network, _source=source):
            key = _network._last_pop_key
            if key is None:
                kind, key = 0, _source.last_index
            else:
                kind = 1
            result = entry.result
            _records.append(
                (
                    entry.time_ns,
                    kind,
                    key,
                    entry.switch_id,
                    entry.event.name,
                    entry.event.args,
                    result.forwarded_port,
                    result.dropped,
                )
            )

        network.on_handle = on_handle

    conn.send(
        (
            "ready",
            {
                "last_ns": last_ns,
                "injected": injected,
                "next": source.peek_time(),
                "setup_s": t1 - t0,
                "traffic_s": t2 - t1,
            },
        )
    )

    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "window":
            _, until_ns, incoming = msg
            for time_ns, key, switch_id, event in incoming:
                network.enqueue_remote(time_ns, key, switch_id, event)
            network.run(source=source, until_ns=until_ns)
            batch = list(exports)
            exports.clear()
            heap_next = network._queue[0][0] if network._queue else None
            src_next = source.peek_time()
            candidates = [t for t in (heap_next, src_next) if t is not None]
            conn.send(("window_done", batch, min(candidates) if candidates else None))
        elif cmd == "finish":
            snap = network.snapshot()
            dump = REGISTRY.dump_values() if spec.metrics else None
            conn.send(
                (
                    "finished",
                    {
                        "switches": {
                            str(sid): snap["switches"][str(sid)] for sid in spec.owned
                        },
                        "down_links": snap["down_links"],
                        "records": records,
                        "metrics": dump,
                        "injected": injected,
                    },
                )
            )
            return
        else:
            raise RuntimeError(f"shard worker: unknown command {cmd!r}")


def worker_main(conn, spec: ShardSpec) -> None:
    """Process entry point (module-level, so the spawn start method can
    import it).  Any exception is reported to the coordinator instead of
    dying silently."""
    try:
        _worker_loop(conn, spec)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()
