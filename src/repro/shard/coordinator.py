"""The shard coordinator: conservative-lookahead barrier execution.

One worker process per shard runs its switches with the ordinary streaming
drain; the coordinator grants lockstep *windows*.  A window starting at the
global minimum next-event time ``T`` extends to ``T + lookahead - 1``: the
lookahead (from :func:`repro.shard.partition.partition_topology`) is the
minimum simulated time any event needs to cross a shard boundary, so
nothing a peer does inside the window can land in it — events exported
during the window arrive strictly after it and are delivered before the
next window is granted.  This is the classic conservative parallel
discrete-event scheme (Chandy–Misra–Bryant lookahead, coordinator-mediated
instead of null messages), specialised to our fixed link latencies.

Determinism is byte-exact, not approximate: heap tie-break keys are
content-derived (``interp/network.py``), every shard replays every CONTROL
action, and the coordinator reconstructs the exact global dispatch order
from the workers' records to replay observing invariants.  The parity
tests pin ``--shards N`` against the single-process run for digests,
stats, and verdicts.

Known limits (documented, guarded where possible): invariants whose
``observe`` reads *live* array state (only ``DataPlaneBeatsRemote``, a
single-switch scenario) cannot be replayed after the fact, and CONTROL
actions that ``inject()`` new events mid-run would get per-worker serial
keys; no bundled scenario does either on a multi-switch topology.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.interp.engine import resolve_engine_name
from repro.interp.events import EventInstance
from repro.interp.network import (
    CONTROL,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    Switch,
    TraceEntry,
)
from repro.obs.metrics import OBS, REGISTRY
from repro.scenarios.invariants import observer_callback
from repro.scenarios.runner import ScenarioResult, build_result, run_setup
from repro.shard.partition import partition_topology
from repro.shard.worker import ShardSpec, worker_main


class _ReplayResult:
    """The slice of :class:`ExecutionResult` that observing invariants read,
    rebuilt from a worker's dispatch record."""

    __slots__ = ("forwarded_port", "dropped")

    def __init__(self, forwarded_port: Optional[int], dropped: bool):
        self.forwarded_port = forwarded_port
        self.dropped = dropped


def _mp_context():
    # fork is cheapest and inherits the imported interpreter; fall back to
    # spawn elsewhere (worker_main is module-level importable either way)
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _recv(conn):
    msg = conn.recv()
    if msg[0] == "error":
        raise SimulationError(f"shard worker failed:\n{msg[1]}")
    return msg


def run_sharded(
    scenario,
    events: int,
    seed: int,
    num_shards: int,
    engine: Optional[str] = None,
    engines: Optional[Sequence[str]] = None,
) -> ScenarioResult:
    """Run a registered scenario partitioned over ``num_shards`` worker
    processes; returns a :class:`ScenarioResult` byte-identical (array
    digest, per-switch stats, invariant verdicts) to the single-process run
    on the same seed.

    ``engines`` optionally names one engine per shard (the PR 3
    heterogeneity at shard granularity); ``engine`` sets all shards at once.
    ``num_shards=1`` degenerates to the plain in-process runner.
    """
    if engines is not None:
        if len(engines) != num_shards:
            raise SimulationError(
                f"engines lists {len(engines)} names for {num_shards} shards"
            )
        shard_engines = [resolve_engine_name(name) for name in engines]
    else:
        shard_engines = [resolve_engine_name(engine)] * num_shards
    if num_shards == 1:
        return run_setup(
            scenario.build(events, seed), scenario.name, seed,
            engine=shard_engines[0],
        )

    t0 = perf_counter()
    setup = scenario.build(events, seed)
    coord_engine = shard_engines[0]
    network = setup.make_network(coord_engine)
    if setup.prepare is not None:
        setup.prepare(network)
    network.trace_enabled = False
    plan = partition_topology(setup.topology, num_shards, network.config)
    # shards may run different engines: give the coordinator's merge target
    # the same per-switch engine mix so restore() accepts the snapshots
    for shard, engine_name in enumerate(shard_engines):
        if engine_name == coord_engine:
            continue
        for sid in plan.shards[shard]:
            old = network.switches[sid]
            network.switches[sid] = Switch(
                sid, old.runtime.checked, engine=engine_name, config=network.config
            )

    # one full pass over the traffic stream: the horizon must be known
    # before the first window (otherwise a window could overrun the settle
    # horizon and dispatch events the single-process run leaves queued),
    # and streaming the generator here also populates the traffic model's
    # side state (ground-truth counters) that settle-time invariants read.
    t1 = perf_counter()
    control_items: List[tuple] = []
    injected = 0
    last_ns = 0
    for idx, item in enumerate(setup.traffic()):
        if item[0] > last_ns:
            last_ns = item[0]
        if item[1] == CONTROL:
            control_items.append((idx, item[0], item[2]))
        else:
            injected += 1
    horizon = last_ns + setup.settle_ns
    t2 = perf_counter()

    record_obs = any(inv.observes() for inv in setup.invariants)
    metrics = OBS.enabled

    ctx = _mp_context()
    workers = []
    try:
        for shard in range(num_shards):
            parent_conn, child_conn = ctx.Pipe()
            spec = ShardSpec(
                scenario=scenario.name,
                events=events,
                seed=seed,
                engine=shard_engines[shard],
                shard_index=shard,
                owned=tuple(plan.shards[shard]),
                record_obs=record_obs,
                metrics=metrics,
            )
            proc = ctx.Process(
                target=worker_main, args=(child_conn, spec), daemon=True
            )
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn))

        nexts: List[Optional[int]] = [None] * num_shards
        worker_injected = 0
        for shard, (_, conn) in enumerate(workers):
            _, ready = _recv(conn)
            nexts[shard] = ready["next"]
            worker_injected += ready["injected"]
            if ready["last_ns"] != last_ns:
                raise SimulationError(
                    f"shard {shard} saw traffic ending at {ready['last_ns']} ns "
                    f"but the coordinator saw {last_ns} ns — the traffic stream "
                    f"is not seed-deterministic"
                )
        if worker_injected != injected:
            raise SimulationError(
                f"shards claim {worker_injected} injected events, coordinator "
                f"counted {injected} — the partition does not cover the stream"
            )
        setup_s = (t1 - t0) + (perf_counter() - t2)

        # -- the barrier loop ---------------------------------------------
        start = perf_counter()
        lookahead = plan.lookahead_ns
        pending: List[List[tuple]] = [[] for _ in range(num_shards)]
        rounds = 0
        while True:
            candidates = [t for t in nexts if t is not None]
            for buf in pending:
                for item in buf:
                    candidates.append(item[0])
            if not candidates:
                break
            window_start = min(candidates)
            if window_start > horizon:
                break
            until = min(window_start + lookahead - 1, horizon)
            for shard, (_, conn) in enumerate(workers):
                conn.send(("window", until, pending[shard]))
                pending[shard] = []
            for shard, (_, conn) in enumerate(workers):
                _, batch, nxt = _recv(conn)
                nexts[shard] = nxt
                for time_ns, key, switch_id, event in batch:
                    if time_ns <= until:
                        raise SimulationError(
                            f"lookahead violated: shard {shard} exported an "
                            f"event at {time_ns} ns inside its own window "
                            f"(until {until} ns)"
                        )
                    owner = plan.owner.get(switch_id)
                    if owner is None:
                        # a generate to a switch id that does not exist; the
                        # single-process drain would pop and skip it
                        continue
                    pending[owner].append((time_ns, key, switch_id, event))
            rounds += 1
        wall = perf_counter() - start

        # -- collect and merge --------------------------------------------
        for _, conn in workers:
            conn.send(("finish",))
        finals = [_recv(conn)[1] for _, conn in workers]
    finally:
        for proc, conn in workers:
            conn.close()
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join()

    switch_entries: Dict[str, dict] = {}
    for payload in finals:
        switch_entries.update(payload["switches"])
    handled = sum(
        entry["stats"]["events_handled"] for entry in switch_entries.values()
    )
    combined = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "now_ns": horizon,
        "serial": 0,
        "queue": [],
        # every shard executed every CONTROL action, so link state agrees
        "down_links": finals[0]["down_links"],
        "switches": switch_entries,
    }

    for inv in setup.invariants:
        inv.reset(network, setup.topology)
    _replay_observations(network, setup, control_items, finals)
    network.restore(combined)

    if metrics:
        for payload in finals:
            if payload["metrics"]:
                REGISTRY.merge_values(payload["metrics"])

    result = build_result(
        setup,
        scenario.name,
        seed,
        coord_engine if len(set(shard_engines)) == 1 else ",".join(shard_engines),
        network,
        events_injected=injected,
        events_handled=handled,
        wall_s=wall,
        setup_s=setup_s,
        traffic_s=t2 - t1,
    )
    result.details["shards"] = {
        "num_shards": num_shards,
        "lookahead_ns": plan.lookahead_ns,
        "barrier_rounds": rounds,
        "engines": list(shard_engines),
        "switches_per_shard": [len(s) for s in plan.shards],
        "host_cpus": os.cpu_count(),
    }
    return result


def _replay_observations(network, setup, control_items, finals) -> None:
    """Feed the observing invariants the exact single-process dispatch order.

    CONTROL actions (kind 0, keyed by global stream index) and recorded
    dispatches (kind 0 = source-delivered, keyed by stream index; kind 1 =
    heap-popped, keyed by the content-derived heap key) from every shard
    sort into one total order on ``(time, kind, key)`` — the same order the
    single-process drain dispatches in.  Control actions run against the
    coordinator network (their array/link effects are overwritten by the
    authoritative restore afterwards; what must survive is their invariant
    side channel, e.g. ``announce_failure``)."""
    callback = observer_callback(setup.invariants)
    entries: List[tuple] = []
    for idx, time_ns, fn in control_items:
        entries.append((time_ns, 0, idx, None, fn))
    if callback is not None:
        for payload in finals:
            for (time_ns, kind, key, sid, name, args, fwd, dropped) in payload[
                "records"
            ]:
                entries.append((time_ns, kind, key, sid, (name, args, fwd, dropped)))
    if not entries:
        return
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    for time_ns, kind, key, sid, payload in entries:
        if sid is None:
            network.now_ns = time_ns
            payload(network)
        else:
            name, args, fwd, dropped = payload
            callback(
                TraceEntry(
                    time_ns=time_ns,
                    switch_id=sid,
                    event=EventInstance(name, args),
                    result=_ReplayResult(fwd, dropped),
                )
            )
