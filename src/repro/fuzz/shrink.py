"""Greedy shrinking of failing fuzz cases into minimal reproducers.

The shrinker parses the case's source back into an AST and repeatedly tries
semantics-shrinking mutations — drop an injection, drop a statement, unwrap
a branch into its body, simplify an expression to one of its operands or a
small literal, drop a whole declaration, collapse the topology to one
switch — keeping a mutation only when the mutated case (a) still passes the
type checker (the same validity oracle the generator uses) and (b) still
fails the caller-supplied predicate (normally "the engines still diverge").
Mutations are ordered coarse-to-fine and the loop runs to a fixpoint, so
the survivor is 1-minimal with respect to the mutation set: removing any
single remaining piece either breaks the program or makes the bug
disappear.

Statements and expressions are addressed by *paths* (declaration index plus
a descent of block/branch steps), so every candidate is produced by
resolving the path against a fresh deep copy — the working AST is never
mutated in place.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import LucidError
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.type_checker import check_program
from repro.frontend.unparse import unparse
from repro.fuzz.case import FuzzCase


def _checks(case: FuzzCase) -> bool:
    try:
        check_program(case.source)
    except LucidError:
        return False
    return True


def _rebuild(case: FuzzCase, **overrides) -> FuzzCase:
    fields = dict(
        source=case.source,
        events=list(case.events),
        switches=case.switches,
        links=list(case.links),
        name=case.name,
        description=case.description,
        seed=case.seed,
    )
    fields.update(overrides)
    return FuzzCase(**fields)


def _with_program(case: FuzzCase, program: ast.Program) -> FuzzCase:
    return _rebuild(case, source=unparse(program))


# ---------------------------------------------------------------------------
# statement addressing
# ---------------------------------------------------------------------------
#: one descent step inside a body: (statement index, branch selector) where
#: the selector is "then", "else", or an int match-arm index
_Step = Tuple[int, Union[str, int]]
#: a statement address: (decl index, descent steps, index in final block)
_Addr = Tuple[int, Tuple[_Step, ...], int]


def _block_addresses(
    decl_index: int, steps: Tuple[_Step, ...], block: Sequence[ast.Stmt]
) -> Iterator[_Addr]:
    for i, stmt in enumerate(block):
        yield (decl_index, steps, i)
        if isinstance(stmt, ast.SIf):
            yield from _block_addresses(decl_index, steps + ((i, "then"),), stmt.then_body)
            yield from _block_addresses(decl_index, steps + ((i, "else"),), stmt.else_body)
        elif isinstance(stmt, ast.SMatch):
            for k, (_, body) in enumerate(stmt.branches):
                yield from _block_addresses(decl_index, steps + ((i, k),), body)


def _stmt_addresses(program: ast.Program) -> List[_Addr]:
    out: List[_Addr] = []
    for decl_index, decl in enumerate(program.decls):
        if isinstance(decl, (ast.DHandler, ast.DFun)):
            out.extend(_block_addresses(decl_index, (), decl.body))
    return out


def _resolve_block(program: ast.Program, decl_index: int, steps: Tuple[_Step, ...]) -> List[ast.Stmt]:
    block: List[ast.Stmt] = program.decls[decl_index].body  # type: ignore[union-attr]
    for index, selector in steps:
        stmt = block[index]
        if selector == "then":
            block = stmt.then_body  # type: ignore[union-attr]
        elif selector == "else":
            block = stmt.else_body  # type: ignore[union-attr]
        else:
            block = stmt.branches[selector][1]  # type: ignore[union-attr]
    return block


# ---------------------------------------------------------------------------
# expression addressing (within one statement)
# ---------------------------------------------------------------------------
#: root slots on a statement, by attribute name (SMatch scrutinees by index)
def _root_slots(stmt: ast.Stmt) -> List[Union[str, int]]:
    if isinstance(stmt, ast.SLocal):
        return ["init"]
    if isinstance(stmt, ast.SAssign):
        return ["value"]
    if isinstance(stmt, ast.SIf):
        return ["cond"]
    if isinstance(stmt, ast.SReturn):
        return ["value"] if stmt.value is not None else []
    if isinstance(stmt, ast.SExpr):
        return ["expr"]
    if isinstance(stmt, ast.SGenerate):
        return ["event"]
    if isinstance(stmt, ast.SMatch):
        return list(range(len(stmt.scrutinees)))
    return []


def _get_root(stmt: ast.Stmt, slot: Union[str, int]) -> ast.Expr:
    if isinstance(slot, int):
        return stmt.scrutinees[slot]  # type: ignore[union-attr]
    return getattr(stmt, slot)


def _set_root(stmt: ast.Stmt, slot: Union[str, int], value: ast.Expr) -> None:
    if isinstance(slot, int):
        stmt.scrutinees[slot] = value  # type: ignore[union-attr]
    else:
        setattr(stmt, slot, value)


#: one descent step inside an expression tree
_EStep = Union[str, int]  # "left" | "right" | "operand" | arg index


def _expr_paths(expr: ast.Expr, prefix: Tuple[_EStep, ...] = ()) -> Iterator[Tuple[_EStep, ...]]:
    yield prefix
    if isinstance(expr, ast.EBinary):
        yield from _expr_paths(expr.left, prefix + ("left",))
        yield from _expr_paths(expr.right, prefix + ("right",))
    elif isinstance(expr, ast.EUnary):
        yield from _expr_paths(expr.operand, prefix + ("operand",))
    elif isinstance(expr, (ast.ECall, ast.EEvent)):
        for i, arg in enumerate(expr.args):
            yield from _expr_paths(arg, prefix + (i,))


def _get_expr(root: ast.Expr, path: Tuple[_EStep, ...]) -> ast.Expr:
    expr = root
    for step in path:
        if step == "left":
            expr = expr.left  # type: ignore[union-attr]
        elif step == "right":
            expr = expr.right  # type: ignore[union-attr]
        elif step == "operand":
            expr = expr.operand  # type: ignore[union-attr]
        else:
            expr = expr.args[step]  # type: ignore[union-attr]
    return expr


def _set_expr(stmt: ast.Stmt, slot: Union[str, int], path: Tuple[_EStep, ...], value: ast.Expr) -> None:
    if not path:
        _set_root(stmt, slot, value)
        return
    parent = _get_expr(_get_root(stmt, slot), path[:-1])
    step = path[-1]
    if step == "left":
        parent.left = value  # type: ignore[union-attr]
    elif step == "right":
        parent.right = value  # type: ignore[union-attr]
    elif step == "operand":
        parent.operand = value  # type: ignore[union-attr]
    else:
        parent.args[step] = value  # type: ignore[union-attr]


def _replacements_for(expr: ast.Expr) -> List[ast.Expr]:
    """Smaller expressions a given expression may shrink to."""
    out: List[ast.Expr] = []
    if isinstance(expr, ast.EBinary):
        out.extend([expr.left, expr.right])
    elif isinstance(expr, ast.EUnary):
        out.append(expr.operand)
    elif isinstance(expr, (ast.ECall, ast.EEvent)):
        out.extend(expr.args)
    if not (isinstance(expr, ast.EInt) and expr.value in (0, 1)):
        out.append(ast.EInt(span=expr.span, value=0))
        out.append(ast.EInt(span=expr.span, value=1))
    return out


# ---------------------------------------------------------------------------
# the mutation stream (coarse to fine)
# ---------------------------------------------------------------------------
def _mutations(case: FuzzCase) -> Iterator[FuzzCase]:
    # 1. traffic: drop one injection
    for i in range(len(case.events)):
        yield _rebuild(case, events=case.events[:i] + case.events[i + 1 :])
    # 2. topology: collapse to one switch
    if case.switches > 1:
        yield _rebuild(
            case,
            switches=1,
            links=[],
            events=[(t, 0, n, a) for t, _sid, n, a in case.events],
        )
    # 3. traffic: zero one injection's time / args
    for i, (time_ns, switch_id, name, args) in enumerate(case.events):
        if time_ns != 0:
            events = list(case.events)
            events[i] = (0, switch_id, name, args)
            yield _rebuild(case, events=events)
        if any(args):
            events = list(case.events)
            events[i] = (time_ns, switch_id, name, tuple(0 for _ in args))
            yield _rebuild(case, events=events)
    try:
        program = parse_program(case.source)
    except LucidError:  # pragma: no cover - cases come from unparse
        return
    # 4. drop one whole declaration
    for i in range(len(program.decls)):
        mutated = copy.deepcopy(program)
        del mutated.decls[i]
        yield _with_program(case, mutated)
    addresses = _stmt_addresses(program)
    # 5. drop one statement (anywhere, deepest first so inner noise goes early)
    for decl_index, steps, index in reversed(addresses):
        mutated = copy.deepcopy(program)
        block = _resolve_block(mutated, decl_index, steps)
        del block[index]
        yield _with_program(case, mutated)
    # 6. unwrap a branch statement into one of its bodies
    for decl_index, steps, index in addresses:
        stmt = _resolve_block(program, decl_index, steps)[index]
        if isinstance(stmt, ast.SIf):
            arms = [stmt.then_body, stmt.else_body]
        elif isinstance(stmt, ast.SMatch):
            arms = [body for _, body in stmt.branches]
        else:
            continue
        for arm_index in range(len(arms)):
            mutated = copy.deepcopy(program)
            block = _resolve_block(mutated, decl_index, steps)
            live = block[index]
            if isinstance(live, ast.SIf):
                replacement = [live.then_body, live.else_body][arm_index]
            else:
                replacement = live.branches[arm_index][1]
            block[index : index + 1] = replacement
            yield _with_program(case, mutated)
    # 7. simplify one expression
    for decl_index, steps, index in addresses:
        stmt = _resolve_block(program, decl_index, steps)[index]
        for slot in _root_slots(stmt):
            root = _get_root(stmt, slot)
            for path in _expr_paths(root):
                target = _get_expr(root, path)
                for replacement in _replacements_for(target):
                    mutated = copy.deepcopy(program)
                    live_stmt = _resolve_block(mutated, decl_index, steps)[index]
                    _set_expr(live_stmt, slot, path, copy.deepcopy(replacement))
                    yield _with_program(case, mutated)


# ---------------------------------------------------------------------------
# the greedy loop
# ---------------------------------------------------------------------------
def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_evaluations: int = 600,
) -> FuzzCase:
    """Reduce ``case`` while ``still_fails`` keeps returning True.

    ``still_fails`` should re-run the differential check and return whether
    the divergence (or crash) is still present.  Candidates that fail the
    type checker are skipped without consuming an evaluation.  Returns the
    smallest failing case found (the original if nothing could be removed).
    """
    current = case
    evaluations = 0
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for candidate in _mutations(current):
            if evaluations >= max_evaluations:
                break
            if (
                candidate.source == current.source
                and candidate.events == current.events
                and candidate.switches == current.switches
            ):
                continue
            if not _checks(candidate):
                continue
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
