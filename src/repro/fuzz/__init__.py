"""Differential fuzzing of the three execution engines.

The Lucid paper's central promise is that one program means one thing on
every substrate.  This package turns that promise into a generative test:

* :mod:`repro.fuzz.gen` — a seeded generator of small well-typed programs
  (arrays, memops, branchy handlers, event chains, delays, recirculation)
  that uses the type checker as its validity oracle, plus a matching random
  traffic generator;
* :mod:`repro.fuzz.diff` — a differential runner that executes one
  (program, traffic) case under the reference interpreter, the compiled
  fast path, and the PISA pipeline executor and demands identical traces,
  array digests, stats, prints, and crash behaviour;
* :mod:`repro.fuzz.shrink` — an AST-level shrinker that reduces a failing
  case to a minimal reproducer (re-validated through the type checker at
  every step);
* ``python -m repro.fuzz`` — the CLI tying them together, writing shrunk
  reproducers ready to check into ``tests/regressions/``.
"""

from repro.fuzz.case import FuzzCase, load_case, save_case
from repro.fuzz.diff import CaseResult, DiffOutcome, run_case, run_differential
from repro.fuzz.gen import CaseGenerator
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CaseGenerator",
    "CaseResult",
    "DiffOutcome",
    "FuzzCase",
    "load_case",
    "run_case",
    "run_differential",
    "save_case",
    "shrink_case",
]
