"""Differential execution of one fuzz case on every switch engine.

Each engine gets its own :class:`~repro.interp.network.Network` (fresh
runtime state), but all of them share one :class:`CheckedProgram` — so the
PISA layout is compiled once per case, and the comparison is between
executions, not between independent frontend runs.  The observables compared
are exactly the ones the paper's "same program, same meaning" claim is about:

* the handled-event trace — ``(time_ns, switch_id, event, args)`` per event;
* the final array digest (every cell of every switch's register file);
* per-switch scheduler stats (handled/generated/recirculations/sends/drops);
* per-switch print logs;
* crash behaviour — a checked program must not crash *any* engine, and an
  error in one engine but not another is a divergence like any other.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.type_checker import CheckedProgram, check_program
from repro.fuzz.case import FuzzCase
from repro.interp.engine import ENGINE_NAMES
from repro.interp.events import EventInstance
from repro.interp.network import Network
from repro.scenarios.runner import network_array_digest

#: per-switch counters compared across engines (all scheduler-maintained)
_STAT_KEYS = (
    "events_handled",
    "events_generated",
    "recirculations",
    "remote_sends",
    "drops",
    "link_drops",
    "recirc_drops",
)

#: one handled event, as compared across engines
TraceRow = Tuple[int, int, str, Tuple[int, ...]]

#: hard ceiling on handled events per engine run.  Generated programs always
#: terminate (hop-counted chains), but shrink candidates can legally rewrite
#: ``generate ev(hops - 1)`` into ``generate ev(hops)`` — a well-typed,
#: non-terminating program.  The cap is deterministic and identical across
#: engines, so a capped run still compares exactly.
MAX_EVENTS_PER_RUN = 20_000


@dataclass
class CaseResult:
    """Everything observable about one engine's execution of one case."""

    engine: str
    error: Optional[str] = None
    digest: Optional[str] = None
    trace: List[TraceRow] = field(default_factory=list)
    stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    logs: Dict[int, List[str]] = field(default_factory=dict)

    @property
    def crashed(self) -> bool:
        return self.error is not None


@dataclass
class DiffOutcome:
    """Every registered engine's result plus the list of disagreements."""

    case: FuzzCase
    results: Dict[str, CaseResult] = field(default_factory=dict)
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.ok:
            return f"{self.case.name}: all engines agree"
        lines = [f"{self.case.name}: {len(self.divergences)} divergence(s)"]
        lines.extend(f"  - {d}" for d in self.divergences)
        return "\n".join(lines)


def _build_network(case: FuzzCase, engine: str, checked: CheckedProgram) -> Network:
    network = Network(engine=engine)
    for switch_id in range(case.switches):
        network.add_switch(switch_id, checked)
    for a, b in case.links:
        network.add_link(a, b)
    return network


def run_case(case: FuzzCase, engine: str, checked: Optional[CheckedProgram] = None) -> CaseResult:
    """Execute ``case`` under one engine and collect its observables.

    Any exception — compiling the program for the engine, or executing any
    event — is captured as the result's ``error``: crash-freedom is one of
    the differential properties, so crashes are data, not runner failures.
    """
    result = CaseResult(engine=engine)
    try:
        if checked is None:
            checked = check_program(case.source)
        network = _build_network(case, engine, checked)
        for time_ns, switch_id, name, args in case.events:
            network.inject(switch_id, EventInstance(name=name, args=tuple(args)), at_ns=time_ns)
        network.run(max_events=MAX_EVENTS_PER_RUN)
    except Exception as error:  # noqa: BLE001 - crash capture is the point
        result.error = f"{type(error).__name__}: {error}"
        return result
    result.digest = network_array_digest(network)
    result.trace = [
        (entry.time_ns, entry.switch_id, entry.event.name, tuple(entry.event.args))
        for entry in network.trace
    ]
    for switch_id in sorted(network.switches):
        switch = network.switches[switch_id]
        result.stats[switch_id] = {
            key: getattr(switch.stats, key) for key in _STAT_KEYS
        }
        result.logs[switch_id] = list(switch.log)
    return result


def _first_diff_index(a: List, b: List) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))


def _compare(base: CaseResult, other: CaseResult, out: List[str]) -> None:
    tag = f"{base.engine} vs {other.engine}"
    if base.crashed or other.crashed:
        if base.error != other.error:
            out.append(
                f"{tag}: crash behaviour differs "
                f"({base.engine}: {base.error or 'ok'}; {other.engine}: {other.error or 'ok'})"
            )
        return
    if base.digest != other.digest:
        out.append(f"{tag}: array digest {base.digest} != {other.digest}")
    if base.trace != other.trace:
        i = _first_diff_index(base.trace, other.trace)
        lhs = base.trace[i] if i < len(base.trace) else "<end>"
        rhs = other.trace[i] if i < len(other.trace) else "<end>"
        out.append(
            f"{tag}: trace differs at event {i} "
            f"({len(base.trace)} vs {len(other.trace)} handled): {lhs} != {rhs}"
        )
    if base.stats != other.stats:
        out.append(f"{tag}: stats differ ({base.stats} != {other.stats})")
    if base.logs != other.logs:
        out.append(f"{tag}: print logs differ ({base.logs} != {other.logs})")


def run_case_checkpointed(
    case: FuzzCase,
    engine: str,
    checked: Optional[CheckedProgram] = None,
    split: int = 1,
) -> CaseResult:
    """Execute ``case`` with a snapshot/restore cycle after ``split`` handled
    events: the first segment's network is snapshotted, the snapshot is
    pushed through a JSON round-trip (the on-disk checkpoint path), and a
    *fresh* network finishes the run from the restored state.  All
    observables — including the handled-event trace, concatenated across the
    two segments — must equal :func:`run_case`'s."""
    result = CaseResult(engine=f"{engine}+checkpoint")
    split = max(0, min(split, MAX_EVENTS_PER_RUN))
    try:
        if checked is None:
            checked = check_program(case.source)
        network = _build_network(case, engine, checked)
        for time_ns, switch_id, name, args in case.events:
            network.inject(switch_id, EventInstance(name=name, args=tuple(args)), at_ns=time_ns)
        handled = network.run(max_events=split)
        trace_prefix: List[TraceRow] = [
            (entry.time_ns, entry.switch_id, entry.event.name, tuple(entry.event.args))
            for entry in network.trace
        ]
        state = json.loads(json.dumps(network.snapshot()))
        network = _build_network(case, engine, checked)
        network.restore(state)
        network.run(max_events=MAX_EVENTS_PER_RUN - handled)
    except Exception as error:  # noqa: BLE001 - crash capture is the point
        result.error = f"{type(error).__name__}: {error}"
        return result
    result.digest = network_array_digest(network)
    result.trace = trace_prefix + [
        (entry.time_ns, entry.switch_id, entry.event.name, tuple(entry.event.args))
        for entry in network.trace
    ]
    for switch_id in sorted(network.switches):
        switch = network.switches[switch_id]
        result.stats[switch_id] = {
            key: getattr(switch.stats, key) for key in _STAT_KEYS
        }
        result.logs[switch_id] = list(switch.log)
    return result


def run_checkpoint_differential(
    case: FuzzCase,
    split: int,
    engines: Tuple[str, ...] = ENGINE_NAMES,
    straight: Optional[DiffOutcome] = None,
) -> DiffOutcome:
    """The checkpoint/restore mutation: for every engine, compare the
    straight-through execution against one interrupted after ``split``
    handled events, snapshotted through JSON, and resumed on a fresh
    network.  ``straight`` reuses an existing :func:`run_differential`
    outcome instead of re-running the baselines."""
    outcome = DiffOutcome(case=case)
    try:
        checked = check_program(case.source)
    except Exception as error:  # noqa: BLE001
        outcome.divergences.append(f"frontend rejects the case: {error}")
        return outcome
    for engine in engines:
        if straight is not None and engine in straight.results:
            base = straight.results[engine]
        else:
            base = run_case(case, engine, checked)
        resumed = run_case_checkpointed(case, engine, checked, split=split)
        outcome.results[resumed.engine] = resumed
        _compare(base, resumed, outcome.divergences)
    return outcome


def run_differential(
    case: FuzzCase, engines: Tuple[str, ...] = ENGINE_NAMES
) -> DiffOutcome:
    """Run ``case`` under every engine and compare against the first one
    (the reference interpreter, per ``ENGINE_NAMES`` ordering)."""
    outcome = DiffOutcome(case=case)
    try:
        checked = check_program(case.source)
    except Exception as error:  # noqa: BLE001
        # a case that no longer checks cannot diverge; report it distinctly
        outcome.divergences.append(f"frontend rejects the case: {error}")
        return outcome
    for engine in engines:
        outcome.results[engine] = run_case(case, engine, checked)
    base = outcome.results[engines[0]]
    if base.crashed:
        outcome.divergences.append(
            f"{base.engine}: checked program crashed the baseline engine: {base.error}"
        )
    for engine in engines[1:]:
        _compare(base, outcome.results[engine], outcome.divergences)
    return outcome
