"""The unit the fuzzer works on: one program plus one traffic schedule.

A :class:`FuzzCase` is deliberately plain data — program *source text* (not
an AST) and a list of timed event injections — so failing cases serialise to
JSON, check into ``tests/regressions/``, and replay byte-identically forever
after.  The AST lives only inside the generator and the shrinker; both ends
meet at :func:`repro.frontend.unparse.unparse`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

#: one injection: (time_ns, switch_id, event_name, args)
Injection = Tuple[int, int, str, Tuple[int, ...]]


@dataclass
class FuzzCase:
    """One differential test case."""

    source: str
    events: List[Injection] = field(default_factory=list)
    switches: int = 1
    #: bidirectional links, as (a, b) pairs; empty for a single switch
    links: List[Tuple[int, int]] = field(default_factory=list)
    name: str = "fuzz-case"
    description: str = ""
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "switches": self.switches,
            "links": [list(link) for link in self.links],
            "events": [
                [time_ns, switch_id, event, list(args)]
                for time_ns, switch_id, event, args in self.events
            ],
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            source=data["source"],
            events=[
                (int(t), int(sid), str(name), tuple(int(a) for a in args))
                for t, sid, name, args in data.get("events", [])
            ],
            switches=int(data.get("switches", 1)),
            links=[(int(a), int(b)) for a, b in data.get("links", [])],
            name=str(data.get("name", "fuzz-case")),
            description=str(data.get("description", "")),
            seed=int(data.get("seed", 0)),
        )


def save_case(case: FuzzCase, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(case.to_dict(), fh, indent=2)
        fh.write("\n")


def load_case(path: str) -> FuzzCase:
    with open(path, "r", encoding="utf-8") as fh:
        return FuzzCase.from_dict(json.load(fh))
