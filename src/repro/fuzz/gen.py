"""Seeded generation of small well-typed Lucid programs plus traffic.

The generator builds a random program *as an AST* (cheap to assemble and to
shrink), renders it through :mod:`repro.frontend.unparse`, and uses the real
type checker as the validity oracle: a draw that fails any frontend check
(typing, memop shape, global ordering, constant evaluation) is simply
re-drawn.  The construction is biased so most draws pass on the first try —
in particular it threads the type-and-effect system's *stage cursor* through
statement and expression generation, so globals are only ever accessed in
declaration order and at most once per handler pass (Section 5 of the
paper), and event chains always decrement a trailing ``hops`` parameter
under an ``if (hops > 0)`` guard, so every workload terminates.

What the programs deliberately exercise, because these are the places the
the engines have historically disagreed:

* memops in every valid shape (plain sALU arithmetic and the conditional
  form), reached through ``Array.get``/``getm``/``set``/``setm``/``update``;
* array reads nested inside larger expressions, including on the right of
  ``&&``/``||`` where short-circuiting is observable;
* ``/`` and ``%`` with arbitrary (possibly zero) divisors;
* ``hash`` at degenerate widths (0, 1, 33) as well as ordinary ones;
* early ``return`` inside ``if``/``match`` branches of handlers and
  functions with partial-path returns (the inliner's returnify transform);
* event combinators — ``Event.delay`` (delay-queue quantisation),
  ``Event.locate`` and multicast groups on multi-switch rings — plus
  ``Sys.time``/``Sys.self``/``Sys.random`` primitives.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import LucidError
from repro.frontend import ast
from repro.frontend.source import dummy_span
from repro.frontend.type_checker import check_program
from repro.frontend.unparse import unparse
from repro.fuzz.case import FuzzCase, Injection

_SPAN = dummy_span()

#: hash widths to draw from — the degenerate ones (0, 33) are deliberate
HASH_WIDTHS = (0, 1, 8, 16, 32, 32, 33)
#: Event.delay values; all interact with the 100 us delay-queue quantum
DELAYS = (1_000, 50_000, 250_000)
#: Sys.random bounds — non-powers-of-two and 0 (= unbounded) included
RANDOM_BOUNDS = (0, 3, 5, 7, 8, 16)

_ARITH_OPS = (
    ast.BinOp.ADD,
    ast.BinOp.SUB,
    ast.BinOp.MUL,
    ast.BinOp.DIV,
    ast.BinOp.MOD,
    ast.BinOp.BITAND,
    ast.BinOp.BITOR,
    ast.BinOp.BITXOR,
    ast.BinOp.SHL,
    ast.BinOp.SHR,
)
_CMP_OPS = (
    ast.BinOp.EQ,
    ast.BinOp.NEQ,
    ast.BinOp.LT,
    ast.BinOp.GT,
    ast.BinOp.LE,
    ast.BinOp.GE,
)
_SALU_OPS = tuple(ast.SALU_ARITH_OPS)

_INT_LITERALS = (0, 1, 2, 3, 5, 7, 10, 255, 4096, 0xFFFF, 0xDEADBEEF)


def _int(value: int) -> ast.EInt:
    return ast.EInt(span=_SPAN, value=value)


def _var(name: str) -> ast.EVar:
    return ast.EVar(span=_SPAN, name=name)


def _bin(op: ast.BinOp, left: ast.Expr, right: ast.Expr) -> ast.EBinary:
    return ast.EBinary(span=_SPAN, op=op, left=left, right=right)


def _call(func: str, args: Sequence[ast.Expr], width: Optional[int] = None) -> ast.ECall:
    return ast.ECall(
        span=_SPAN,
        func=func,
        args=list(args),
        size_args=[width] if width is not None else [],
    )


class _HandlerState:
    """Mutable context while generating one handler (or function) body."""

    def __init__(self, params: List[str], hops_var: Optional[str]):
        self.locals: List[str] = list(params)
        #: declaration index of the next global this pass may still access
        self.cursor = 0
        self.fresh = 0
        #: the trailing hop-count parameter (handlers only) — generate
        #: statements must stay behind an ``if (hops > 0)`` guard on it
        self.hops_var = hops_var

    def new_local(self) -> str:
        name = f"x{self.fresh}"
        self.fresh += 1
        return name


class _ProgramBuilder:
    """Assembles one random program; one instance per attempt."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.switch_count = 1
        self.consts: List[str] = []
        self.groups: List[str] = []
        self.globals: List[Tuple[str, int, int]] = []  # (name, width, size)
        self.memops: List[str] = []
        self.funs: List[Tuple[str, int]] = []  # (name, arity)
        self.events: List[Tuple[str, int]] = []  # (name, data-arity); + hops
        self.decls: List[ast.Decl] = []

    # -- program skeleton ---------------------------------------------------
    def build(self) -> ast.Program:
        rng = self.rng
        self.switch_count = rng.choice([1] * 7 + [2, 2, 3])
        for i in range(rng.randint(1, 2)):
            name = f"C{i}"
            self.decls.append(
                ast.DConst(
                    span=_SPAN,
                    ty=ast.TInt(span=_SPAN),
                    name=name,
                    value=_int(rng.randint(1, 7)),
                )
            )
            self.consts.append(name)
        if self.switch_count > 1 and rng.random() < 0.5:
            members = sorted(rng.sample(range(self.switch_count), 2))
            self.decls.append(
                ast.DConst(
                    span=_SPAN,
                    ty=ast.TGroup(span=_SPAN),
                    name="ALL",
                    value=ast.EGroup(span=_SPAN, members=[_int(m) for m in members]),
                )
            )
            self.groups.append("ALL")
        for i in range(rng.randint(1, 3)):
            name = f"a{i}"
            width = rng.choice((16, 32, 32))
            size = rng.choice((2, 3, 4, 8))
            self.decls.append(
                ast.DGlobal(
                    span=_SPAN,
                    name=name,
                    cell_width=width,
                    size_expr=_int(size),
                )
            )
            self.globals.append((name, width, size))
        for i in range(rng.randint(2, 4)):
            name = f"m{i}"
            self.decls.append(self._gen_memop(name))
            self.memops.append(name)
        for i in range(rng.randint(0, 2)):
            name = f"f{i}"
            arity = rng.randint(1, 2)
            self.decls.append(self._gen_fun(name, arity))
            self.funs.append((name, arity))
        for i in range(rng.randint(1, 3)):
            name = f"ev{i}"
            data_arity = rng.randint(0, 2)
            self.events.append((name, data_arity))
        for name, data_arity in self.events:
            params = [
                ast.Param(ty=ast.TInt(span=_SPAN), name=f"p{j}", span=_SPAN)
                for j in range(data_arity)
            ]
            params.append(ast.Param(ty=ast.TInt(span=_SPAN), name="hops", span=_SPAN))
            self.decls.append(ast.DEvent(span=_SPAN, name=name, params=params))
        for name, data_arity in self.events:
            params = [
                ast.Param(ty=ast.TInt(span=_SPAN), name=f"p{j}", span=_SPAN)
                for j in range(data_arity)
            ]
            params.append(ast.Param(ty=ast.TInt(span=_SPAN), name="hops", span=_SPAN))
            body = self._gen_handler_body([p.name for p in params])
            self.decls.append(ast.DHandler(span=_SPAN, name=name, params=params, body=body))
        return ast.Program(decls=self.decls, name="<fuzz>")

    # -- memops -------------------------------------------------------------
    def _memop_atom(self, vars_left: List[str]) -> ast.Expr:
        """An sALU operand; consumes a variable (each at most once per expr)."""
        rng = self.rng
        if vars_left and rng.random() < 0.75:
            return _var(vars_left.pop(rng.randrange(len(vars_left))))
        return _int(rng.choice((0, 1, 2, 3, 5, 0xFF)))

    def _memop_expr(self) -> ast.Expr:
        """``atom`` or ``atom op atom`` with sALU ops, each var used once."""
        rng = self.rng
        vars_left = ["stored", "x"]
        if rng.random() < 0.8:
            return _bin(
                rng.choice(_SALU_OPS),
                self._memop_atom(vars_left),
                self._memop_atom(vars_left),
            )
        return self._memop_atom(vars_left)

    def _gen_memop(self, name: str) -> ast.DMemop:
        rng = self.rng
        params = [
            ast.Param(ty=ast.TInt(span=_SPAN), name="stored", span=_SPAN),
            ast.Param(ty=ast.TInt(span=_SPAN), name="x", span=_SPAN),
        ]
        if rng.random() < 0.5:
            body: List[ast.Stmt] = [ast.SReturn(span=_SPAN, value=self._memop_expr())]
        else:
            cond_vars = ["stored", "x"]
            cond = _bin(
                rng.choice(_CMP_OPS),
                self._memop_atom(cond_vars),
                self._memop_atom(cond_vars),
            )
            body = [
                ast.SIf(
                    span=_SPAN,
                    cond=cond,
                    then_body=[ast.SReturn(span=_SPAN, value=self._memop_expr())],
                    else_body=[ast.SReturn(span=_SPAN, value=self._memop_expr())],
                )
            ]
        return ast.DMemop(span=_SPAN, name=name, params=params, body=body)

    # -- pure functions (returnify stress) -----------------------------------
    def _gen_fun(self, name: str, arity: int) -> ast.DFun:
        """A pure int function whose branches return on *some* paths only —
        exactly the shape the inliner's returnify transform must get right."""
        rng = self.rng
        params = [
            ast.Param(ty=ast.TInt(span=_SPAN), name=f"q{j}", span=_SPAN)
            for j in range(arity)
        ]
        names = [p.name for p in params]
        state = _HandlerState(names, hops_var=None)
        body: List[ast.Stmt] = []
        for _ in range(rng.randint(1, 2)):
            kind = rng.random()
            if kind < 0.5:
                # partial-path return: no else, or an else that falls through
                then_body: List[ast.Stmt] = [
                    ast.SReturn(span=_SPAN, value=self._pure_expr(state, 1))
                ]
                else_body: List[ast.Stmt] = []
                if rng.random() < 0.4:
                    local = state.new_local()
                    else_body = [
                        ast.SLocal(
                            span=_SPAN,
                            ty=ast.TInt(span=_SPAN),
                            name=local,
                            init=self._pure_expr(state, 1),
                        )
                    ]
                    state.locals.append(local)
                body.append(
                    ast.SIf(
                        span=_SPAN,
                        cond=self._pure_cond(state),
                        then_body=then_body,
                        else_body=else_body,
                    )
                )
            elif kind < 0.75 and names:
                # a match where only some arms return
                arms: List[Tuple[List[Optional[int]], List[ast.Stmt]]] = []
                for lit in rng.sample(range(4), rng.randint(1, 2)):
                    arm: List[ast.Stmt] = []
                    if rng.random() < 0.6:
                        arm.append(ast.SReturn(span=_SPAN, value=self._pure_expr(state, 1)))
                    arms.append(([lit], arm))
                arms.append(([None], []))
                body.append(
                    ast.SMatch(
                        span=_SPAN,
                        scrutinees=[_var(rng.choice(names))],
                        branches=arms,
                    )
                )
            else:
                local = state.new_local()
                body.append(
                    ast.SLocal(
                        span=_SPAN,
                        ty=ast.TInt(span=_SPAN),
                        name=local,
                        init=self._pure_expr(state, 1),
                    )
                )
                state.locals.append(local)
        body.append(ast.SReturn(span=_SPAN, value=self._pure_expr(state, 1)))
        return ast.DFun(
            span=_SPAN, ret=ast.TInt(span=_SPAN), name=name, params=params, body=body
        )

    def _pure_expr(self, state: _HandlerState, depth: int) -> ast.Expr:
        """An int expression with no global/array access (function bodies)."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.45:
            if state.locals and rng.random() < 0.6:
                return _var(rng.choice(state.locals))
            return _int(rng.choice(_INT_LITERALS))
        return _bin(
            rng.choice(_ARITH_OPS),
            self._pure_expr(state, depth - 1),
            self._pure_expr(state, depth - 1),
        )

    def _pure_cond(self, state: _HandlerState) -> ast.Expr:
        return _bin(
            self.rng.choice(_CMP_OPS),
            self._pure_expr(state, 1),
            self._pure_expr(state, 1),
        )

    # -- handler expressions (may touch globals, cursor-threaded) ------------
    def _array_read(self, state: _HandlerState) -> Optional[ast.Expr]:
        """An effectful read (Array.get/getm/update); advances the cursor."""
        rng = self.rng
        if state.cursor >= len(self.globals):
            return None
        index = rng.randrange(state.cursor, len(self.globals))
        name, _width, size = self.globals[index]
        state.cursor = index + 1
        idx = self._int_expr(state, 0, effects=False)
        shape = rng.random()
        if shape < 0.4 or not self.memops:
            return _call("Array.get", [_var(name), idx])
        memop = rng.choice(self.memops)
        arg = self._int_expr(state, 0, effects=False)
        if shape < 0.65:
            return _call("Array.get", [_var(name), idx, _var(memop), arg])
        if shape < 0.85:
            return _call("Array.getm", [_var(name), idx, _var(memop), arg])
        get_memop = rng.choice(self.memops)
        set_memop = rng.choice(self.memops)
        set_arg = self._int_expr(state, 0, effects=False)
        if rng.random() < 0.5:
            return _call(
                "Array.update", [_var(name), idx, _var(get_memop), arg, set_arg]
            )
        return _call(
            "Array.update",
            [_var(name), idx, _var(get_memop), arg, _var(set_memop), set_arg],
        )

    def _int_expr(self, state: _HandlerState, depth: int, effects: bool = True) -> ast.Expr:
        """An int expression; with ``effects`` it may read arrays (in cursor
        order) and call builtins that consume shared runtime state."""
        rng = self.rng
        draw = rng.random()
        if depth > 0 and draw < 0.4:
            return _bin(
                rng.choice(_ARITH_OPS),
                self._int_expr(state, depth - 1, effects),
                self._int_expr(state, depth - 1, effects),
            )
        if effects and draw < 0.5:
            read = self._array_read(state)
            if read is not None:
                return read
        roll = rng.random()
        if roll < 0.10:
            width = rng.choice(HASH_WIDTHS)
            args = [
                self._int_expr(state, 0, effects=False)
                for _ in range(rng.randint(1, 3))
            ]
            return _call("hash", args, width=width)
        if roll < 0.16:
            return _call("Sys.random", [_int(rng.choice(RANDOM_BOUNDS))])
        if roll < 0.20:
            return _call("Sys.self", [])
        if roll < 0.23:
            return _call("Sys.time", [])
        if roll < 0.33 and self.funs:
            fun, arity = rng.choice(self.funs)
            return _call(
                fun, [self._int_expr(state, 0, effects=False) for _ in range(arity)]
            )
        if roll < 0.45 and self.consts:
            return _var(rng.choice(self.consts))
        if state.locals and roll < 0.8:
            return _var(rng.choice(state.locals))
        return _int(rng.choice(_INT_LITERALS))

    def _bool_expr(self, state: _HandlerState, depth: int, effects: bool = True) -> ast.Expr:
        rng = self.rng
        draw = rng.random()
        if depth > 0 and draw < 0.35:
            # &&/|| — with effects on the right operand this is exactly where
            # short-circuit vs strict evaluation becomes observable
            op = rng.choice((ast.BinOp.AND, ast.BinOp.OR))
            return _bin(
                op,
                self._bool_expr(state, depth - 1, effects=False),
                self._bool_expr(state, depth - 1, effects),
            )
        if draw < 0.45:
            return ast.EUnary(
                span=_SPAN, op=ast.UnOp.NOT, operand=self._bool_expr(state, 0, effects)
            )
        return _bin(
            rng.choice(_CMP_OPS),
            self._int_expr(state, 1, effects),
            self._int_expr(state, 0, effects=False),
        )

    # -- handler statements --------------------------------------------------
    def _gen_handler_body(self, params: List[str]) -> List[ast.Stmt]:
        state = _HandlerState(params, hops_var="hops")
        body: List[ast.Stmt] = []
        for _ in range(self.rng.randint(2, 5)):
            body.append(self._gen_stmt(state, depth=0))
        return body

    def _gen_stmt(self, state: _HandlerState, depth: int) -> ast.Stmt:
        rng = self.rng
        roll = rng.random()
        if roll < 0.26:
            local = state.new_local()
            stmt = ast.SLocal(
                span=_SPAN,
                ty=ast.TInt(span=_SPAN),
                name=local,
                init=self._int_expr(state, 2),
            )
            state.locals.append(local)
            return stmt
        # never reassign the hop counter: generates are guarded on it, and an
        # overwritten counter turns the event chain into an unbounded loop
        assignable = [name for name in state.locals if name != state.hops_var]
        if roll < 0.34 and assignable:
            return ast.SAssign(
                span=_SPAN,
                name=rng.choice(assignable),
                value=self._int_expr(state, 2),
            )
        if roll < 0.50 and state.cursor < len(self.globals):
            return self._gen_array_stmt(state)
        if roll < 0.62 and depth < 2:
            return self._gen_if(state, depth)
        if roll < 0.70 and depth < 2:
            return self._gen_match(state, depth)
        if roll < 0.82 and self.events:
            return self._gen_guarded_generate(state)
        if roll < 0.88:
            args = [self._int_expr(state, 0, effects=False) for _ in range(rng.randint(1, 3))]
            return ast.SExpr(span=_SPAN, expr=_call("printf", args))
        if roll < 0.92 and depth > 0:
            return ast.SReturn(span=_SPAN, value=None)
        if roll < 0.95:
            return ast.SExpr(span=_SPAN, expr=_call("drop", []))
        local = state.new_local()
        stmt = ast.SLocal(
            span=_SPAN, ty=ast.TInt(span=_SPAN), name=local, init=self._int_expr(state, 1)
        )
        state.locals.append(local)
        return stmt

    def _gen_array_stmt(self, state: _HandlerState) -> ast.Stmt:
        """A statement-level array access — write forms, or a read into a local."""
        rng = self.rng
        shape = rng.random()
        if shape < 0.45 or not self.memops:
            index = rng.randrange(state.cursor, len(self.globals))
            name, _width, _size = self.globals[index]
            state.cursor = index + 1
            idx = self._int_expr(state, 0, effects=False)
            value = self._int_expr(state, 1, effects=False)
            if shape < 0.30 or not self.memops:
                call = _call("Array.set", [_var(name), idx, value])
            else:
                memop = rng.choice(self.memops)
                if rng.random() < 0.5:
                    call = _call("Array.set", [_var(name), idx, _var(memop), value])
                else:
                    call = _call("Array.setm", [_var(name), idx, _var(memop), value])
            return ast.SExpr(span=_SPAN, expr=call)
        read = self._array_read(state)
        assert read is not None  # guarded by the caller's cursor check
        local = state.new_local()
        stmt = ast.SLocal(span=_SPAN, ty=ast.TInt(span=_SPAN), name=local, init=read)
        state.locals.append(local)
        return stmt

    def _gen_if(self, state: _HandlerState, depth: int) -> ast.SIf:
        rng = self.rng
        cond = self._bool_expr(state, 2)
        then_state_cursor = state.cursor
        then_body = [self._gen_stmt(state, depth + 1) for _ in range(rng.randint(1, 3))]
        then_cursor = state.cursor
        state.cursor = then_state_cursor
        else_body = (
            [self._gen_stmt(state, depth + 1) for _ in range(rng.randint(1, 2))]
            if rng.random() < 0.5
            else []
        )
        # branches replay from the same stage; the join is the furthest stage
        state.cursor = max(state.cursor, then_cursor)
        return ast.SIf(span=_SPAN, cond=cond, then_body=then_body, else_body=else_body)

    def _gen_match(self, state: _HandlerState, depth: int) -> ast.SMatch:
        rng = self.rng
        n_scrutinees = rng.randint(1, 2)
        scrutinees = [self._int_expr(state, 0) for _ in range(n_scrutinees)]
        start_cursor = state.cursor
        join_cursor = start_cursor
        branches: List[Tuple[List[Optional[int]], List[ast.Stmt]]] = []
        for _ in range(rng.randint(1, 2)):
            pattern: List[Optional[int]] = [
                rng.choice([0, 1, 2, 3, None]) for _ in range(n_scrutinees)
            ]
            state.cursor = start_cursor
            arm = [self._gen_stmt(state, depth + 1) for _ in range(rng.randint(0, 2))]
            join_cursor = max(join_cursor, state.cursor)
            branches.append((pattern, arm))
        state.cursor = start_cursor
        wildcard = (
            [self._gen_stmt(state, depth + 1)] if rng.random() < 0.6 else []
        )
        join_cursor = max(join_cursor, state.cursor)
        branches.append(([None] * n_scrutinees, wildcard))
        state.cursor = join_cursor
        return ast.SMatch(span=_SPAN, scrutinees=scrutinees, branches=branches)

    def _gen_guarded_generate(self, state: _HandlerState) -> ast.Stmt:
        """``if (hops > 0) { generate ...(args, hops - 1); }`` — the hop-count
        decrement under a positive guard is what bounds every event chain."""
        rng = self.rng
        event, data_arity = rng.choice(self.events)
        args: List[ast.Expr] = [
            self._int_expr(state, 1, effects=False) for _ in range(data_arity)
        ]
        args.append(_bin(ast.BinOp.SUB, _var(state.hops_var), _int(1)))
        ctor: ast.Expr = _call(event, args)
        multicast = False
        combinator = rng.random()
        if combinator < 0.25:
            ctor = _call("Event.delay", [ctor, _int(rng.choice(DELAYS))])
        elif combinator < 0.45 and self.switch_count > 1:
            if self.groups and rng.random() < 0.4:
                ctor = _call("Event.locate", [ctor, _var(rng.choice(self.groups))])
                multicast = True
            else:
                target = rng.randrange(self.switch_count)
                ctor = _call("Event.locate", [ctor, _int(target)])
            if rng.random() < 0.3:
                ctor = _call("Event.delay", [ctor, _int(rng.choice(DELAYS))])
        gen = ast.SGenerate(span=_SPAN, event=ctor, multicast=multicast)
        guard = _bin(ast.BinOp.GT, _var(state.hops_var), _int(0))
        return ast.SIf(span=_SPAN, cond=guard, then_body=[gen], else_body=[])


class CaseGenerator:
    """Deterministic stream of checked (program, traffic) cases.

    ``CaseGenerator(seed).generate(i)`` is a pure function of ``(seed, i)``:
    re-running with the same pair reproduces the same case byte for byte.
    """

    #: attempts at drawing a program that passes the frontend, per case
    MAX_ATTEMPTS = 50

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(self, index: int) -> FuzzCase:
        last_error: Optional[LucidError] = None
        for attempt in range(self.MAX_ATTEMPTS):
            rng = random.Random(f"lucid-fuzz:{self.seed}:{index}:{attempt}")
            builder = _ProgramBuilder(rng)
            program = builder.build()
            source = unparse(program)
            try:
                check_program(source)
            except LucidError as error:
                last_error = error
                continue
            return FuzzCase(
                source=source,
                events=self._gen_traffic(rng, builder),
                switches=builder.switch_count,
                links=self._ring_links(builder.switch_count),
                name=f"seed{self.seed}-case{index}",
                description=f"generated by CaseGenerator(seed={self.seed}).generate({index})",
                seed=self.seed,
            )
        raise RuntimeError(
            f"could not draw a checkable program for case {index} after "
            f"{self.MAX_ATTEMPTS} attempts; last frontend error: {last_error}"
        )

    @staticmethod
    def _ring_links(switch_count: int) -> List[Tuple[int, int]]:
        if switch_count <= 1:
            return []
        if switch_count == 2:
            return [(0, 1)]
        return [(i, (i + 1) % switch_count) for i in range(switch_count)]

    @staticmethod
    def _gen_traffic(rng: random.Random, builder: _ProgramBuilder) -> List[Injection]:
        events: List[Injection] = []
        time_ns = 0
        for _ in range(rng.randint(2, 6)):
            time_ns += rng.choice((0, 100, 1_000, 10_000, 120_000))
            name, data_arity = rng.choice(builder.events)
            args = tuple(rng.randint(0, 300) for _ in range(data_arity)) + (
                rng.randint(0, 2),
            )
            events.append((time_ns, rng.randrange(builder.switch_count), name, args))
        return events
