"""``python -m repro.fuzz`` — differential fuzzing CLI.

Modes:

* generate-and-check (default): draw ``--count`` cases from
  ``CaseGenerator(--seed)``, run each under all three engines, shrink any
  failure to a minimal reproducer (``--no-shrink`` disables), and write
  reproducers as JSON into ``--out`` (default ``tests/regressions``).
  Exits non-zero if any case diverged.
* ``--replay PATH...``: re-run saved reproducers (files or directories of
  ``*.json``) instead of generating; exits non-zero if any diverges.  This
  is what the regression loader test and the CI smoke job call.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.fuzz.case import FuzzCase, load_case, save_case
from repro.fuzz.diff import run_differential
from repro.fuzz.gen import CaseGenerator
from repro.fuzz.shrink import shrink_case


def _still_fails(case: FuzzCase) -> bool:
    return not run_differential(case).ok


def _collect_cases(paths: List[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".json")
            )
        else:
            files.append(path)
    return files


def _replay(paths: List[str]) -> int:
    files = _collect_cases(paths)
    if not files:
        print("no reproducer files found", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        case = load_case(path)
        outcome = run_differential(case)
        status = "ok" if outcome.ok else "DIVERGED"
        print(f"[{status}] {case.name} ({path})")
        if not outcome.ok:
            failures += 1
            print(outcome.summary())
    print(f"replayed {len(files)} case(s), {failures} divergent")
    return 1 if failures else 0


def _fuzz(args: argparse.Namespace) -> int:
    generator = CaseGenerator(args.seed)
    failures = 0
    for index in range(args.count):
        case = generator.generate(index)
        outcome = run_differential(case)
        if outcome.ok:
            if (index + 1) % 25 == 0 or index + 1 == args.count:
                print(f"{index + 1}/{args.count} cases: all engines agree so far")
            continue
        failures += 1
        print(outcome.summary())
        if args.shrink:
            print(f"shrinking {case.name} ...")
            case = shrink_case(case, _still_fails, max_evaluations=args.max_shrink_evals)
            outcome = run_differential(case)
            print("minimal reproducer:")
            print(case.source)
            print(outcome.summary())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            case.description = (
                f"{case.description}; divergence: "
                + "; ".join(outcome.divergences)
            ).strip("; ")
            path = os.path.join(args.out, f"{case.name}.json")
            save_case(case, path)
            print(f"wrote reproducer: {path}")
    if failures:
        print(f"{failures}/{args.count} case(s) diverged")
        return 1
    print(f"{args.count} case(s), zero divergences")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the reference/compiled/pisa engines",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed (default 0)")
    parser.add_argument("--count", type=int, default=100, help="cases to generate")
    parser.add_argument(
        "--shrink",
        action="store_true",
        default=True,
        help="shrink failing cases to minimal reproducers (default: on)",
    )
    parser.add_argument(
        "--no-shrink", dest="shrink", action="store_false", help="disable shrinking"
    )
    parser.add_argument(
        "--max-shrink-evals",
        type=int,
        default=600,
        help="cap on differential re-runs during shrinking (default 600)",
    )
    parser.add_argument(
        "--out",
        default="tests/regressions",
        help="directory for shrunk reproducers ('' disables writing)",
    )
    parser.add_argument(
        "--replay",
        nargs="+",
        metavar="PATH",
        help="replay saved reproducer files/directories instead of generating",
    )
    args = parser.parse_args(argv)
    if args.replay:
        return _replay(args.replay)
    return _fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
