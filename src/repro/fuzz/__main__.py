"""``python -m repro.fuzz`` — differential fuzzing CLI.

Modes:

* generate-and-check (default): draw ``--count`` cases from
  ``CaseGenerator(--seed)``, run each under every registered engine, shrink any
  failure to a minimal reproducer (``--no-shrink`` disables), and write
  reproducers as JSON into ``--out`` (default ``tests/regressions``).
  Exits non-zero if any case diverged.  Each agreeing case is additionally
  run through the checkpoint/restore mutation: snapshot after a
  seed-determined number of handled events, JSON round-trip, restore into a
  fresh network, resume — and every observable (trace, digest, stats, logs)
  must still match the straight-through run (``--no-checkpoint`` disables).
* ``--replay PATH...``: re-run saved reproducers (files or directories of
  ``*.json``) instead of generating; exits non-zero if any diverges.  This
  is what the regression loader test and the CI smoke job call.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

from repro.fuzz.case import FuzzCase, load_case, save_case
from repro.fuzz.diff import run_checkpoint_differential, run_differential
from repro.fuzz.gen import CaseGenerator
from repro.fuzz.shrink import shrink_case


def _still_fails(case: FuzzCase) -> bool:
    return not run_differential(case).ok


def _split_for(seed: int, index: int, handled: int) -> int:
    """Deterministic pseudo-random checkpoint position within the case's
    handled-event count (xorshift over seed/index, no global RNG state)."""
    x = (seed * 0x9E3779B1 + index * 0x85EBCA77 + 0x165667B1) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 13
    return 1 + x % max(1, handled)


def _collect_cases(paths: List[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".json")
            )
        else:
            files.append(path)
    return files


def _replay(paths: List[str]) -> int:
    files = _collect_cases(paths)
    if not files:
        print("no reproducer files found", file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        case = load_case(path)
        outcome = run_differential(case)
        status = "ok" if outcome.ok else "DIVERGED"
        print(f"[{status}] {case.name} ({path})")
        if not outcome.ok:
            failures += 1
            print(outcome.summary())
    print(f"replayed {len(files)} case(s), {failures} divergent")
    return 1 if failures else 0


def _fuzz(args: argparse.Namespace) -> int:
    generator = CaseGenerator(args.seed)
    failures = 0
    for index in range(args.count):
        case = generator.generate(index)
        outcome = run_differential(case)
        checkpoint_split = None
        if outcome.ok and args.checkpoint:
            # the checkpoint/restore mutation: interrupt at a seed-determined
            # point and require identical observables on resume
            baseline = next(iter(outcome.results.values()))
            split = _split_for(args.seed, index, len(baseline.trace))
            ck = run_checkpoint_differential(case, split, straight=outcome)
            if not ck.ok:
                checkpoint_split = split
                outcome = ck
        if outcome.ok:
            if (index + 1) % 25 == 0 or index + 1 == args.count:
                print(f"{index + 1}/{args.count} cases: all engines agree so far")
            continue
        failures += 1
        if checkpoint_split is not None:
            print(f"{case.name}: checkpoint/restore at event {checkpoint_split} diverges")
        print(outcome.summary())
        if args.shrink:
            print(f"shrinking {case.name} ...")
            if checkpoint_split is None:
                predicate = _still_fails
            else:
                def predicate(c, _split=checkpoint_split):
                    return not run_checkpoint_differential(c, _split).ok
            case = shrink_case(case, predicate, max_evaluations=args.max_shrink_evals)
            if checkpoint_split is None:
                outcome = run_differential(case)
            else:
                outcome = run_checkpoint_differential(case, checkpoint_split)
            print("minimal reproducer:")
            print(case.source)
            print(outcome.summary())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            case.description = (
                f"{case.description}; divergence: "
                + "; ".join(outcome.divergences)
            ).strip("; ")
            path = os.path.join(args.out, f"{case.name}.json")
            save_case(case, path)
            print(f"wrote reproducer: {path}")
    if failures:
        print(f"{failures}/{args.count} case(s) diverged")
        return 1
    print(f"{args.count} case(s), zero divergences")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the reference/compiled/pisa engines",
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed (default 0)")
    parser.add_argument("--count", type=int, default=100, help="cases to generate")
    parser.add_argument(
        "--shrink",
        action="store_true",
        default=True,
        help="shrink failing cases to minimal reproducers (default: on)",
    )
    parser.add_argument(
        "--no-shrink", dest="shrink", action="store_false", help="disable shrinking"
    )
    parser.add_argument(
        "--max-shrink-evals",
        type=int,
        default=600,
        help="cap on differential re-runs during shrinking (default 600)",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        default=True,
        help="also run each agreeing case through the checkpoint/restore "
        "mutation (default: on)",
    )
    parser.add_argument(
        "--no-checkpoint",
        dest="checkpoint",
        action="store_false",
        help="disable the checkpoint/restore mutation",
    )
    parser.add_argument(
        "--out",
        default="tests/regressions",
        help="directory for shrunk reproducers ('' disables writing)",
    )
    parser.add_argument(
        "--replay",
        nargs="+",
        metavar="PATH",
        help="replay saved reproducer files/directories instead of generating",
    )
    args = parser.parse_args(argv)
    if args.replay:
        return _replay(args.replay)
    return _fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
