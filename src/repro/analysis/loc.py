"""Lines-of-code accounting for Figures 9 and 10.

The paper compares the length of Lucid programs against their P4 equivalents
and breaks the P4 down by component (actions, register actions, tables,
headers, parsers).  Here, Lucid LoC is counted from the application sources in
:mod:`repro.apps`, and P4 LoC from the baseline-style P4 emitted by
:mod:`repro.backend.p4gen` (see DESIGN.md for the substitution note: we do not
have the authors' hand-written P4, so the baseline generator stands in for
it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.backend.compiler import CompiledProgram, count_lucid_loc
from repro.backend.p4gen import P4Program


@dataclass
class LocBreakdown:
    """Per-component line counts for one application (one bar of Figure 10)."""

    application: str
    lucid: int = 0
    p4_actions: int = 0
    p4_register_actions: int = 0
    p4_tables: int = 0
    p4_headers: int = 0
    p4_parsers: int = 0
    p4_other: int = 0

    @property
    def p4_total(self) -> int:
        return (
            self.p4_actions
            + self.p4_register_actions
            + self.p4_tables
            + self.p4_headers
            + self.p4_parsers
            + self.p4_other
        )

    @property
    def ratio(self) -> float:
        return self.p4_total / self.lucid if self.lucid else 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "application": self.application,
            "lucid_loc": self.lucid,
            "p4_actions": self.p4_actions,
            "p4_register_actions": self.p4_register_actions,
            "p4_tables": self.p4_tables,
            "p4_headers": self.p4_headers,
            "p4_parsers": self.p4_parsers,
            "p4_other": self.p4_other,
            "p4_total": self.p4_total,
            "ratio": round(self.ratio, 1),
        }


def lucid_loc(source: str) -> int:
    """Lines of Lucid code (non-blank, non-comment)."""
    return count_lucid_loc(source)


def p4_breakdown(name: str, lucid_source: str, p4: P4Program) -> LocBreakdown:
    """Break a generated P4 program's line count down by component."""
    counts = p4.line_counts()
    registers = counts.get("registers", 0)
    return LocBreakdown(
        application=name,
        lucid=lucid_loc(lucid_source),
        p4_actions=counts.get("actions", 0),
        p4_register_actions=registers,
        p4_tables=counts.get("tables", 0),
        p4_headers=counts.get("headers", 0),
        p4_parsers=counts.get("parsers", 0),
        p4_other=counts.get("preamble", 0) + counts.get("control", 0) + counts.get("deparser", 0),
    )


def breakdown_for_compiled(compiled: CompiledProgram) -> LocBreakdown:
    """Breakdown for a compiled program, preferring the naive (hand-written
    style) P4 when it was generated."""
    p4 = compiled.naive_p4 or compiled.p4
    assert p4 is not None, "compile with emit_p4=True"
    return p4_breakdown(compiled.name, compiled.lucid_source or "", p4)
