"""The stateful firewall's recirculation-overhead model (Section 7.3, Figure 16).

The paper derives a simple explanatory model of the stateful firewall's
worst-case recirculation rate on an idealised PISA processor (1 B packets/s,
ten 100 Gb/s front-panel ports, one 100 Gb/s recirculation port):

    r = N / i + f * log2(N)

where ``N`` is the firewall table size, ``i`` the per-flow timeout-check
interval, and ``f`` the flow-arrival rate.  The first term is the timeout
scan; the second is the worst case for cuckoo flow installation (an install
may require ``log2(N)`` cuckoo moves, each one recirculation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.pisa.recirculation import PipelineBudget


@dataclass
class RecircPoint:
    """One column of Figure 16."""

    flow_rate_per_s: float
    recirc_rate_pps: float
    pipeline_utilisation: float
    min_packet_size_bytes: float

    def as_row(self) -> Dict[str, float]:
        return {
            "flow_rate": self.flow_rate_per_s,
            "recirc_rate_pps": self.recirc_rate_pps,
            "pipeline_utilization_pct": self.pipeline_utilisation * 100.0,
            "min_pkt_size_bytes": self.min_packet_size_bytes,
        }


@dataclass
class FirewallRecircModel:
    """The worst-case recirculation model of Section 7.3."""

    table_size: int = 2 ** 16
    timeout_check_interval_s: float = 0.1
    budget: PipelineBudget = field(default_factory=PipelineBudget)

    def scan_rate_pps(self) -> float:
        """Recirculations per second spent scanning for timed-out flows."""
        return self.table_size / self.timeout_check_interval_s

    def install_rate_pps(self, flow_rate_per_s: float) -> float:
        """Worst-case recirculations per second spent installing new flows."""
        return flow_rate_per_s * math.log2(self.table_size)

    def recirc_rate_pps(self, flow_rate_per_s: float) -> float:
        """The paper's r = N/i + f*log2(N)."""
        return self.scan_rate_pps() + self.install_rate_pps(flow_rate_per_s)

    def evaluate(self, flow_rate_per_s: float) -> RecircPoint:
        rate = self.recirc_rate_pps(flow_rate_per_s)
        return RecircPoint(
            flow_rate_per_s=flow_rate_per_s,
            recirc_rate_pps=rate,
            pipeline_utilisation=self.budget.pipeline_utilisation(rate),
            min_packet_size_bytes=self.budget.min_line_rate_packet_bytes(rate),
        )


def firewall_overhead_table(
    flow_rates=(10_000, 100_000, 1_000_000),
    table_size: int = 2 ** 16,
    timeout_check_interval_s: float = 0.1,
) -> List[RecircPoint]:
    """Reproduce Figure 16 (one :class:`RecircPoint` per flow rate)."""
    model = FirewallRecircModel(
        table_size=table_size, timeout_check_interval_s=timeout_check_interval_s
    )
    return [model.evaluate(rate) for rate in flow_rates]
