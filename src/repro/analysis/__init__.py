"""Analytic models and accounting used by the evaluation (Section 7)."""

from repro.analysis.loc import LocBreakdown, lucid_loc, p4_breakdown
from repro.analysis.recirc_model import (
    FirewallRecircModel,
    RecircPoint,
    firewall_overhead_table,
)
from repro.analysis.recirc_uses import RECIRC_USES, RecircUse, recirc_uses_table

__all__ = [
    "lucid_loc",
    "p4_breakdown",
    "LocBreakdown",
    "FirewallRecircModel",
    "RecircPoint",
    "firewall_overhead_table",
    "RecircUse",
    "RECIRC_USES",
    "recirc_uses_table",
]
