"""Classification of how applications use recirculation (Figure 15).

The paper groups recirculation uses into three categories with characteristic
rates:

* data-structure maintenance — a timed loop scans a table, so the rate is
  O(num_entries / scan_interval);
* flow setup — new flows trigger install events, so the expected rate is
  O(flow arrival rate);
* state synchronisation — every state update recirculates through one or more
  switches, so the rate is O(update rate).

:func:`classify_application` derives the categories automatically from a
compiled program: a handler that re-generates its own event with a delay is a
maintenance loop; a handler triggered by a packet event that generates a
different local event is flow setup; a handler that generates events located
at other switches is state synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.backend.compiler import CompiledProgram
from repro.midend.normalize import Const


@dataclass(frozen=True)
class RecircUse:
    """One recirculation use category."""

    category: str
    rate: str
    description: str


RECIRC_USES: Dict[str, RecircUse] = {
    "maintenance": RecircUse(
        category="Data struct. maintenance",
        rate="O(num. entries / scan interval)",
        description="a timed loop periodically scans or ages a table",
    ),
    "flow_setup": RecircUse(
        category="Flow setup",
        rate="E[O(flow rate)]",
        description="new flows trigger install events",
    ),
    "sync": RecircUse(
        category="State synchronization",
        rate="O(update rate)",
        description="state updates recirculate through one or more switches",
    ),
}


def classify_application(compiled: CompiledProgram) -> Set[str]:
    """Return the recirculation-use categories exercised by a program."""
    categories: Set[str] = set()
    for name, handler in compiled.normalized.items():
        for gen in handler.generates():
            delayed = not (isinstance(gen.delay, Const) and gen.delay.value == 0)
            remote = gen.group is not None or not (
                isinstance(gen.location, Const) and gen.location.value == -1
            )
            if remote:
                categories.add("sync")
            if gen.event == name and delayed:
                categories.add("maintenance")
            elif gen.event == name:
                # self-recursion without delay: serial scan / cuckoo chain
                categories.add("flow_setup")
            elif not remote and gen.event != name:
                categories.add("flow_setup")
            if delayed and gen.event != name:
                categories.add("maintenance")
    return categories


def recirc_uses_table(compiled_apps: Dict[str, CompiledProgram]) -> List[Dict[str, str]]:
    """Reproduce Figure 15: one row per category listing the applications."""
    rows: List[Dict[str, str]] = []
    for key, use in RECIRC_USES.items():
        apps = sorted(
            name for name, compiled in compiled_apps.items() if key in classify_application(compiled)
        )
        rows.append(
            {
                "use": use.category,
                "recirc_rate": use.rate,
                "applications": ", ".join(apps),
            }
        )
    return rows
