"""The Lucid compiler backend: atomic tables, layout optimisation, and P4
generation for the Intel Tofino."""

from repro.backend.compiler import (
    CompiledProgram,
    CompilerOptions,
    compile_checked,
    compile_program,
    count_lucid_loc,
)
from repro.backend.layout import MergedTable, PipelineLayout, StageLayout
from repro.backend.merge import MergeOptions, build_layout
from repro.backend.p4gen import P4Program, generate_p4
from repro.backend.resources import DEFAULT_TOFINO, TofinoModel
from repro.backend.tables import AtomicTable, TableGraph, TableKind, build_table_graph

__all__ = [
    "compile_program",
    "compile_checked",
    "CompilerOptions",
    "CompiledProgram",
    "count_lucid_loc",
    "PipelineLayout",
    "StageLayout",
    "MergedTable",
    "MergeOptions",
    "build_layout",
    "P4Program",
    "generate_p4",
    "TofinoModel",
    "DEFAULT_TOFINO",
    "AtomicTable",
    "TableGraph",
    "TableKind",
    "build_table_graph",
]
