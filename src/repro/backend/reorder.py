"""Data-flow analysis and table rearrangement (Section 6.2, Figure 6(3)).

After branch inlining, the remaining tables are ordered only by program
order.  Many of those orderings are artificial: a table with no data-flow
dependency on its predecessors can execute in an earlier stage, in parallel
with other tables.  This pass computes the data-flow DAG that the greedy
merging pass lays out:

* read-after-write (RAW): a table that reads a variable must be placed in a
  *later* stage than the table that writes it;
* write-after-write (WAW): two writers of the same variable keep their
  program order (later stage);
* write-after-read (WAR): a writer may share a stage with an earlier reader
  (PISA stages operate on a copy of the packet header vector), so the
  dependency is "same stage or later";
* stateful tables that access the same register array are recorded as a
  *same-stage group* — a register array lives in exactly one stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.backend.tables import AtomicTable, TableKind
from repro.frontend.ast import BinOp
from repro.midend.normalize import Const


@dataclass
class Dependency:
    """An edge of the data-flow DAG."""

    src: int  # uid of the earlier table
    dst: int  # uid of the later table
    kind: str  # "raw" | "waw" | "war"
    strict: bool  # True when dst must be in a strictly later stage


@dataclass
class DataflowGraph:
    """The data-flow DAG over the non-branch tables of one handler."""

    tables: List[AtomicTable] = field(default_factory=list)
    deps: List[Dependency] = field(default_factory=list)
    #: array name -> uids of tables accessing it (same-stage constraint)
    array_groups: Dict[str, List[int]] = field(default_factory=dict)

    def predecessors(self, uid: int) -> List[Dependency]:
        return [d for d in self.deps if d.dst == uid]

    def successors(self, uid: int) -> List[Dependency]:
        return [d for d in self.deps if d.src == uid]

    def topological_order(self) -> List[AtomicTable]:
        """Tables in dependency order, breaking ties by program order."""
        indegree: Dict[int, int] = {t.uid: 0 for t in self.tables}
        for dep in self.deps:
            indegree[dep.dst] += 1
        order: List[AtomicTable] = []
        ready = [t for t in self.tables if indegree[t.uid] == 0]
        position = {t.uid: i for i, t in enumerate(self.tables)}
        while ready:
            ready.sort(key=lambda t: position[t.uid])
            table = ready.pop(0)
            order.append(table)
            for dep in self.successors(table.uid):
                indegree[dep.dst] -= 1
                if indegree[dep.dst] == 0:
                    ready.append(self.by_uid(dep.dst))
        return order

    def by_uid(self, uid: int) -> AtomicTable:
        for table in self.tables:
            if table.uid == uid:
                return table
        raise KeyError(uid)

    def critical_path_length(self) -> int:
        """Length of the longest chain of strict dependencies + 1 per table."""
        order = self.topological_order()
        depth: Dict[int, int] = {}
        for table in order:
            preds = self.predecessors(table.uid)
            best = 0
            for dep in preds:
                d = depth[dep.src] + (1 if dep.strict else 0)
                best = max(best, d)
            depth[table.uid] = best
        return (max(depth.values()) + 1) if depth else 0


def _conditions_disjoint(first: AtomicTable, second: AtomicTable) -> bool:
    """True when the two tables' path conditions can never hold together, i.e.
    the tables come from mutually exclusive branches and may share a stage."""
    for c1 in first.path_conditions:
        for c2 in second.path_conditions:
            if c1.lhs != c2.lhs:
                continue
            # x == a  vs  x == b  with a != b
            if (
                c1.op is BinOp.EQ
                and c2.op is BinOp.EQ
                and isinstance(c1.rhs, Const)
                and isinstance(c2.rhs, Const)
                and c1.rhs != c2.rhs
            ):
                return True
            # x == a  vs  x != a (and symmetrically)
            if c1.rhs == c2.rhs and {c1.op, c2.op} == {BinOp.EQ, BinOp.NEQ}:
                return True
            # x < a vs x >= a, x > a vs x <= a
            if c1.rhs == c2.rhs and {c1.op, c2.op} in ({BinOp.LT, BinOp.GE}, {BinOp.GT, BinOp.LE}):
                return True
    return False


def build_dataflow_graph(tables: List[AtomicTable]) -> DataflowGraph:
    """Build the data-flow DAG over ``tables`` (given in program order)."""
    graph = DataflowGraph(tables=list(tables))
    for i, later in enumerate(tables):
        later_reads = later.all_reads()
        later_writes = later.writes
        for earlier in tables[:i]:
            if _conditions_disjoint(earlier, later):
                # the two tables lie on mutually exclusive control paths; no
                # packet ever executes both, so no ordering is required
                continue
            kinds: List[Tuple[str, bool]] = []
            if earlier.writes & later_reads:
                kinds.append(("raw", True))
            if earlier.writes & later_writes:
                kinds.append(("waw", True))
            if earlier.all_reads() & later_writes:
                kinds.append(("war", False))
            for kind, strict in kinds:
                graph.deps.append(
                    Dependency(src=earlier.uid, dst=later.uid, kind=kind, strict=strict)
                )
    for table in tables:
        if table.kind is TableKind.MEMORY and table.array:
            graph.array_groups.setdefault(table.array, []).append(table.uid)
    return graph
