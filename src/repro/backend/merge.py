"""Greedy table merging and stage assignment (Section 6.2, Figure 8).

The compiler "uses a simple greedy algorithm that produces a pipeline with M
stages and N merged tables per stage by walking the atomic table graph
topologically.  For each table t, it finds the earliest merged table that t
can be merged into", based on data-flow constraints, a model of free
resources per stage, and Tofino-specific constraints (register arrays are
pinned to a single stage; stateful ALUs, hash units and logical tables per
stage are limited).

The pass operates over *all* handlers of a program at once: handlers are
mutually exclusive at runtime (the event dispatcher selects one), but their
tables coexist physically and any register array they share must live in one
stage.  Array stages are pre-computed as the fixpoint of an ASAP pass over all
handlers, so shared arrays end up at the latest stage any handler needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.backend.branch_elim import inline_branch_conditions
from repro.backend.layout import MergedTable, PipelineLayout, StageLayout
from repro.backend.reorder import DataflowGraph, Dependency, build_dataflow_graph
from repro.backend.resources import StageResources, TofinoModel
from repro.backend.tables import AtomicTable, TableGraph, TableKind, build_table_graph
from repro.errors import LayoutError
from repro.frontend.symbols import ProgramInfo
from repro.midend.normalize import NormalizedHandler


class _PinConflict(Exception):
    """Internal signal: an array's pinned stage is infeasible in the actual
    (resource-aware) placement and must move to ``required`` or later."""

    def __init__(self, array: str, required: int, span=None):
        super().__init__(array)
        self.array = array
        self.required = required
        self.span = span


@dataclass
class MergeOptions:
    """Knobs for the layout pass — used by the optimisation ablations."""

    #: apply branch inlining + data-flow reordering + merging; when False the
    #: layout is the unoptimised baseline (one atomic table per stage along
    #: program order), as in Figure 12's denominator.
    optimize: bool = True
    #: merge independent tables into shared stages.
    merge_tables: bool = True
    #: reorder tables by data flow; when False, program order is kept as a
    #: chain of strict dependencies (ablation: merging without reordering).
    reorder: bool = True
    #: fail when the program needs more stages than the target provides.
    enforce_stage_limit: bool = False


def _table_resources(table: AtomicTable) -> Dict[str, int]:
    """Per-stage resources consumed by one atomic table."""
    if table.kind is TableKind.MEMORY:
        return {"salus": 1, "alus": 0, "hash_units": 0}
    if table.kind is TableKind.HASH:
        return {"salus": 0, "alus": 0, "hash_units": 1}
    if table.kind is TableKind.GENERATE:
        return {"salus": 0, "alus": 2, "hash_units": 0}
    return {"salus": 0, "alus": 1, "hash_units": 0}


class _Layouter:
    def __init__(
        self,
        info: ProgramInfo,
        model: TofinoModel,
        options: MergeOptions,
        array_pins: Dict[str, int],
    ):
        self.info = info
        self.model = model
        self.options = options
        self.array_pins = array_pins
        self.stage_resources: List[StageResources] = []
        self.stage_layouts: List[StageLayout] = []
        self.stage_arrays: List[Set[str]] = []
        self.table_stage: Dict[int, int] = {}

    # -- stage bookkeeping -------------------------------------------------
    def _ensure_stage(self, index: int) -> None:
        while len(self.stage_layouts) <= index:
            self.stage_layouts.append(StageLayout(index=len(self.stage_layouts)))
            self.stage_resources.append(StageResources(self.model))
            self.stage_arrays.append(set())

    def _needs(self, stage: int, table: AtomicTable) -> Dict[str, int]:
        needs = dict(_table_resources(table))
        if table.kind is TableKind.MEMORY and table.array in self.stage_arrays[stage]:
            # the register array (and its stateful ALU) is already present in
            # this stage; another RegisterAction on it does not claim a new one
            needs["salus"] = 0
        return needs

    def _sram_words(self, stage: int, table: AtomicTable) -> int:
        if table.kind is not TableKind.MEMORY or table.array is None:
            return 0
        if table.array in self.stage_arrays[stage]:
            return 0
        g = self.info.globals.get(table.array)
        return g.size if g is not None else 0

    def _find_merged_table(self, layout: StageLayout, table: AtomicTable) -> Optional[MergedTable]:
        if not self.options.merge_tables:
            return None
        for merged in layout.merged_tables:
            if len(merged.members) >= self.model.max_merge_width:
                continue
            # two tables writing the same variable cannot merge (their actions
            # would conflict within one VLIW action word)
            if any(m.writes & table.writes for m in merged.members if table.writes):
                continue
            return merged
        return None

    def _stage_has_room(self, stage: int, table: AtomicTable) -> bool:
        self._ensure_stage(stage)
        resources = self.stage_resources[stage]
        needs = self._needs(stage, table)
        sram = self._sram_words(stage, table)
        merged = self._find_merged_table(self.stage_layouts[stage], table)
        new_table = 0 if merged is not None else 1
        return resources.can_fit(tables=new_table, sram_words=sram, **needs)

    def _place(self, table: AtomicTable, stage: int) -> None:
        self._ensure_stage(stage)
        layout = self.stage_layouts[stage]
        resources = self.stage_resources[stage]
        needs = self._needs(stage, table)
        sram = self._sram_words(stage, table)
        merged = self._find_merged_table(layout, table)
        new_table = 0 if merged is not None else 1
        resources.claim(tables=new_table, sram_words=sram, **needs)
        if merged is None:
            merged = MergedTable(name=f"stage{stage}_t{len(layout.merged_tables)}", stage=stage)
            layout.merged_tables.append(merged)
        merged.members.append(table)
        self.table_stage[table.uid] = stage
        if table.kind is TableKind.MEMORY and table.array:
            self.stage_arrays[stage].add(table.array)

    # -- placement ----------------------------------------------------------
    def _earliest_stage(self, graph: DataflowGraph, table: AtomicTable) -> int:
        earliest = 0
        for dep in graph.predecessors(table.uid):
            pred_stage = self.table_stage.get(dep.src, 0)
            earliest = max(earliest, pred_stage + (1 if dep.strict else 0))
        return earliest

    def layout_handler(self, graph: DataflowGraph) -> None:
        for table in graph.topological_order():
            earliest = self._earliest_stage(graph, table)
            if table.kind is TableKind.MEMORY and table.array in self.array_pins:
                pinned = self.array_pins[table.array]
                if pinned < earliest:
                    # the ASAP pin underestimated this handler's resource-aware
                    # depth; ask build_layout to move the array and re-run
                    raise _PinConflict(
                        table.array, earliest, getattr(table.stmt, "span", None)
                    )
                if not self._stage_has_room(pinned, table):
                    raise _PinConflict(
                        table.array, pinned + 1, getattr(table.stmt, "span", None)
                    )
                self._place(table, pinned)
                continue
            stage = earliest
            while not self._stage_has_room(stage, table):
                stage += 1
                if stage > 64:  # defensive bound
                    raise LayoutError(
                        f"could not place table '{table.name}' within 64 stages",
                        getattr(table.stmt, "span", None),
                    )
            self._place(table, stage)

    def layout_handler_unoptimized(self, tables: List[AtomicTable], branch_count: int) -> None:
        """One atomic table per stage, program order (the unoptimised baseline)."""
        stage = 0
        for table in tables:
            if table.kind is TableKind.MEMORY and table.array in self.array_pins:
                stage = max(stage, self.array_pins[table.array])
            self._ensure_stage(stage)
            self._place(table, stage)
            stage += 1


# ---------------------------------------------------------------------------
# array pinning: fixpoint of per-handler ASAP depths
# ---------------------------------------------------------------------------
def _compute_array_pins(
    info: ProgramInfo, dataflows: Dict[str, DataflowGraph]
) -> Dict[str, int]:
    pins: Dict[str, int] = {}
    for _ in range(1 + len(info.global_order)):
        changed = False
        for graph in dataflows.values():
            depth: Dict[int, int] = {}
            for table in graph.topological_order():
                earliest = 0
                for dep in graph.predecessors(table.uid):
                    earliest = max(earliest, depth[dep.src] + (1 if dep.strict else 0))
                if table.kind is TableKind.MEMORY and table.array:
                    earliest = max(earliest, pins.get(table.array, 0))
                    if pins.get(table.array, -1) < earliest:
                        pins[table.array] = earliest
                        changed = True
                depth[table.uid] = earliest
        if not changed:
            break
    return pins


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def build_layout(
    info: ProgramInfo,
    normalized: Dict[str, NormalizedHandler],
    model: Optional[TofinoModel] = None,
    options: Optional[MergeOptions] = None,
) -> PipelineLayout:
    """Lay out every handler of a program onto the pipeline."""
    model = model or TofinoModel()
    options = options or MergeOptions()
    layout = PipelineLayout(program_name=info.program.name, model=model)

    graphs: Dict[str, TableGraph] = {}
    ordered_tables: Dict[str, List[AtomicTable]] = {}
    dataflows: Dict[str, DataflowGraph] = {}
    for name, handler in normalized.items():
        graph = build_table_graph(handler)
        graphs[name] = graph
        layout.unoptimized_stages_per_handler[name] = graph.longest_path_length()
        ordered = inline_branch_conditions(graph)
        ordered_tables[name] = ordered
        if options.optimize and options.reorder:
            dataflows[name] = build_dataflow_graph(ordered)
        else:
            dataflows[name] = _program_order_dataflow(ordered)

    array_pins = _compute_array_pins(info, dataflows) if options.optimize else {}

    if options.optimize:
        # The ASAP fixpoint is a *lower bound*: actual placement can push a
        # table past its ASAP depth when a stage runs out of ALUs/tables, so a
        # pinned stage may prove infeasible only once real placement runs.
        # Pins can only move later, and each is bounded by the defensive
        # 64-stage cap, so bump-and-retry terminates.
        max_retries = 64 * (len(info.global_order) + 1)
        for _ in range(max_retries):
            layouter = _Layouter(info, model, options, dict(array_pins))
            try:
                for name in normalized:
                    layouter.layout_handler(dataflows[name])
            except _PinConflict as conflict:
                if conflict.required > 64:
                    raise LayoutError(
                        f"register array '{conflict.array}' cannot be placed within "
                        "64 stages; the handlers access shared state in "
                        "incompatible orders",
                        conflict.span,
                    ) from None
                array_pins[conflict.array] = conflict.required
                continue
            break
        else:  # pragma: no cover - the per-array stage cap fires first
            raise LayoutError("table placement did not converge")
    else:
        layouter = _Layouter(info, model, options, {})
        for name in normalized:
            branch_count = len(graphs[name].branch_tables())
            layouter.layout_handler_unoptimized(ordered_tables[name], branch_count)

    layout.stages = layouter.stage_layouts
    layout.array_stages = {
        array: stage
        for stage, arrays in enumerate(layouter.stage_arrays)
        for array in arrays
    }

    if options.enforce_stage_limit and layout.num_stages() > model.num_stages:
        raise LayoutError(
            f"program '{info.program.name}' requires {layout.num_stages()} stages but the "
            f"target provides {model.num_stages}"
        )
    return layout


def _program_order_dataflow(tables: List[AtomicTable]) -> DataflowGraph:
    """A degenerate data-flow graph that chains tables in program order
    (used by the merging-without-reordering ablation)."""
    graph = DataflowGraph(tables=list(tables))
    for earlier, later in zip(tables, tables[1:]):
        graph.deps.append(Dependency(src=earlier.uid, dst=later.uid, kind="raw", strict=True))
    for table in tables:
        if table.kind is TableKind.MEMORY and table.array:
            graph.array_groups.setdefault(table.array, []).append(table.uid)
    return graph
