"""The Lucid compiler driver: frontend -> mid-end -> layout -> P4.

:func:`compile_program` is the main entry point used by the public API, the
applications, the examples, and the evaluation benchmarks.  It returns a
:class:`CompiledProgram` bundling the checked program, the pipeline layout,
the generated P4, and the statistics the paper's evaluation reports (stage
counts, optimisation ratios, parallelism, lines of code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.backend.layout import PipelineLayout
from repro.backend.merge import MergeOptions, build_layout
from repro.backend.p4gen import P4Program, generate_p4
from repro.backend.resources import TofinoModel
from repro.frontend.type_checker import CheckedProgram, check_program
from repro.midend.normalize import NormalizedHandler, normalize_program


@dataclass
class CompilerOptions:
    """All compiler knobs in one place."""

    optimize: bool = True
    merge_tables: bool = True
    reorder: bool = True
    enforce_stage_limit: bool = False
    emit_p4: bool = True
    emit_naive_p4: bool = False
    symbolic_bindings: Optional[Dict[str, int]] = None
    target: TofinoModel = field(default_factory=TofinoModel)

    def merge_options(self) -> MergeOptions:
        return MergeOptions(
            optimize=self.optimize,
            merge_tables=self.merge_tables,
            reorder=self.reorder,
            enforce_stage_limit=self.enforce_stage_limit,
        )


@dataclass
class CompiledProgram:
    """Everything the compiler produces for one Lucid program."""

    checked: CheckedProgram
    normalized: Dict[str, NormalizedHandler]
    layout: PipelineLayout
    p4: Optional[P4Program] = None
    naive_p4: Optional[P4Program] = None
    lucid_source: Optional[str] = None

    # -- statistics used throughout the evaluation -------------------------
    @property
    def name(self) -> str:
        return self.checked.program.name

    def stages(self) -> int:
        return self.layout.num_stages()

    def unoptimized_stages(self) -> int:
        return self.layout.unoptimized_stages()

    def stage_ratio(self) -> float:
        return self.layout.stage_ratio()

    def alu_instructions_per_stage(self) -> list:
        return self.layout.alu_instructions_per_stage()

    def lucid_loc(self) -> int:
        if self.lucid_source is None:
            return 0
        return count_lucid_loc(self.lucid_source)

    def p4_loc(self) -> int:
        return self.p4.line_counts()["total"] if self.p4 else 0

    def naive_p4_loc(self) -> int:
        return self.naive_p4.line_counts()["total"] if self.naive_p4 else 0

    def summary(self) -> Dict[str, object]:
        data = self.layout.summary()
        data.update(
            {
                "lucid_loc": self.lucid_loc(),
                "p4_loc": self.p4_loc(),
                "naive_p4_loc": self.naive_p4_loc(),
                "handlers": len(self.checked.handler_results),
                "events": len(self.checked.info.events),
                "globals": len(self.checked.info.globals),
            }
        )
        return data


def count_lucid_loc(source: str) -> int:
    """Lines of code of a Lucid program: non-blank, non-comment lines."""
    count = 0
    in_block_comment = False
    for line in source.splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if not stripped:
            continue
        if stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        count += 1
    return count


def compile_checked(
    checked: CheckedProgram,
    options: Optional[CompilerOptions] = None,
    source: Optional[str] = None,
) -> CompiledProgram:
    """Compile an already-checked program to a pipeline layout (and P4).

    This is the backend half of :func:`compile_program`, split out so
    execution engines (notably :class:`~repro.interp.engine.PisaEngine`) can
    lower a :class:`CheckedProgram` that was checked with per-switch group
    bindings or symbolic bindings — re-checking from source would lose them.
    """
    options = options or CompilerOptions()
    normalized = normalize_program(checked.info)
    layout = build_layout(
        checked.info, normalized, model=options.target, options=options.merge_options()
    )
    compiled = CompiledProgram(
        checked=checked,
        normalized=normalized,
        layout=layout,
        lucid_source=source,
    )
    if options.emit_p4:
        compiled.p4 = generate_p4(checked.info, layout, style="lucid")
    if options.emit_naive_p4:
        naive_layout = build_layout(
            checked.info,
            normalized,
            model=options.target,
            options=MergeOptions(optimize=False, merge_tables=False, reorder=False),
        )
        compiled.naive_p4 = generate_p4(checked.info, naive_layout, style="naive")
    return compiled


def compile_program(
    source: str,
    name: str = "<program>",
    options: Optional[CompilerOptions] = None,
) -> CompiledProgram:
    """Compile a Lucid program from source text to a pipeline layout and P4."""
    options = options or CompilerOptions()
    checked = check_program(source, name=name, symbolic_bindings=options.symbolic_bindings)
    return compile_checked(checked, options=options, source=source)
