"""Branch-table elimination by condition inlining (Section 6.2, Figure 6(2)).

Branch tables are wasteful in the atomic-table representation because their
successors must be placed in a later stage.  The compiler eliminates them by
making each non-branch table check the conditions necessary for its own
execution using static match-action rules, then deleting the branch tables.

For a table reachable along several control paths (for example a table after
an ``if``/``else`` join), only the conditions common to *all* paths are kept —
a table after a join executes unconditionally, as in the paper's example where
``pcts_fset`` runs on every path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.backend.tables import AtomicTable, TableGraph, TableKind
from repro.midend.normalize import NCond


def _cond_key(cond: NCond) -> Tuple:
    return (cond.lhs, cond.op, cond.rhs)


def compute_path_conditions(graph: TableGraph) -> Dict[int, List[NCond]]:
    """For every non-branch table, compute the conditions common to all control
    paths that reach it."""
    # collected[uid] = list of path-condition lists (one per distinct path)
    collected: Dict[int, List[List[NCond]]] = {}

    def visit(uid: int, conditions: List[NCond], depth: int) -> None:
        table = graph.by_uid(uid)
        if table.kind is TableKind.BRANCH:
            for succ, label in graph.edges.get(uid, []):
                cond = table.condition
                assert cond is not None
                branch_cond = cond if label == "true" else cond.negate()
                visit(succ, conditions + [branch_cond], depth + 1)
            return
        collected.setdefault(uid, []).append(list(conditions))
        for succ, _ in graph.edges.get(uid, []):
            visit(succ, conditions, depth + 1)

    for root in graph.roots:
        visit(root, [], 0)

    result: Dict[int, List[NCond]] = {}
    for uid, paths in collected.items():
        if not paths:
            result[uid] = []
            continue
        # keep only conditions present on every path (order of first path)
        common_keys = set(_cond_key(c) for c in paths[0])
        for path in paths[1:]:
            common_keys &= {_cond_key(c) for c in path}
        result[uid] = [c for c in paths[0] if _cond_key(c) in common_keys]
    return result


def inline_branch_conditions(graph: TableGraph) -> List[AtomicTable]:
    """Annotate non-branch tables with their path conditions and return them in
    program order with branch tables removed (Figure 6(2))."""
    conditions = compute_path_conditions(graph)
    ordered: List[AtomicTable] = []
    for table in graph.tables:
        if table.kind is TableKind.BRANCH:
            continue
        table.path_conditions = conditions.get(table.uid, [])
        ordered.append(table)
    return ordered
