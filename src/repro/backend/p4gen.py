"""P4_16 code generation for the Intel Tofino (Section 6).

The generator consumes a :class:`~repro.backend.layout.PipelineLayout` and
emits a Tofino-style P4_16 program with the same structural components the
paper's Figure 10 breaks down:

* ``headers``   — Ethernet, the Lucid event header (event id, delay, location)
  and one header per declared event carrying its payload;
* ``parsers``   — a parser that recognises Lucid event packets and extracts
  the payload of the event they carry;
* ``registers`` — one ``Register`` per global array plus one ``RegisterAction``
  per memory-operation table (the stateful-ALU programs);
* ``actions``   — one action per atomic table;
* ``tables``    — one match-action table per *merged* table, with static
  entries implementing the members' path conditions (Figure 8), plus the
  event dispatcher and serializer of the event scheduler (Section 3.2);
* ``control``   — the ingress/egress apply blocks.

Two generation styles are supported:

* ``style="lucid"`` (default): the output of the optimising compiler;
* ``style="naive"``: the hand-written-style baseline used for the LoC
  comparison — one table and one action per atomic operation, no merging,
  and register actions duplicated at every use site, which is how the paper
  describes hand-written P4 (register actions "are not reusable ... the
  programmer must manually copy the code every time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend.layout import MergedTable, PipelineLayout
from repro.backend.tables import AtomicTable, TableKind
from repro.frontend import ast
from repro.frontend.symbols import ProgramInfo
from repro.midend.normalize import (
    Const,
    NArrayOp,
    NCopy,
    NGenerate,
    NHash,
    NOp,
    NPrim,
    Operand,
    Var,
)

_P4_BINOPS = {
    ast.BinOp.ADD: "+",
    ast.BinOp.SUB: "-",
    ast.BinOp.MUL: "*",
    ast.BinOp.DIV: "/",
    ast.BinOp.MOD: "%",
    ast.BinOp.BITAND: "&",
    ast.BinOp.BITOR: "|",
    ast.BinOp.BITXOR: "^",
    ast.BinOp.SHL: "<<",
    ast.BinOp.SHR: ">>",
    ast.BinOp.EQ: "==",
    ast.BinOp.NEQ: "!=",
    ast.BinOp.LT: "<",
    ast.BinOp.GT: ">",
    ast.BinOp.LE: "<=",
    ast.BinOp.GE: ">=",
    # boolean connectives over 0/1-valued metadata flags compile to bitwise ops
    ast.BinOp.AND: "&",
    ast.BinOp.OR: "|",
}


@dataclass
class P4Program:
    """Generated P4 split into the sections counted by Figure 10."""

    name: str
    sections: Dict[str, str] = field(default_factory=dict)

    SECTION_ORDER = [
        "preamble",
        "headers",
        "parsers",
        "registers",
        "actions",
        "tables",
        "control",
        "deparser",
    ]

    def full_text(self) -> str:
        parts = []
        for section in self.SECTION_ORDER:
            text = self.sections.get(section, "")
            if text:
                parts.append(f"// ---- {section} ----")
                parts.append(text)
        return "\n".join(parts) + "\n"

    def line_counts(self) -> Dict[str, int]:
        """Non-blank line count per section (plus a total)."""
        counts: Dict[str, int] = {}
        for section, text in self.sections.items():
            counts[section] = sum(1 for line in text.splitlines() if line.strip())
        counts["total"] = sum(counts.values())
        return counts


def _operand(op: Operand, local_prefix: str = "md.") -> str:
    if isinstance(op, Const):
        return str(op.value)
    return f"{local_prefix}{_sanitize(op.name)}"


def _sanitize(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


# ---------------------------------------------------------------------------
# section generators
# ---------------------------------------------------------------------------
def _gen_headers(info: ProgramInfo) -> str:
    lines: List[str] = []
    lines.append("header ethernet_t {")
    lines.append("    bit<48> dst_addr;")
    lines.append("    bit<48> src_addr;")
    lines.append("    bit<16> ether_type;")
    lines.append("}")
    lines.append("header lucid_event_t {")
    lines.append("    bit<16> event_id;")
    lines.append("    bit<32> event_delay;")
    lines.append("    bit<32> event_loc;")
    lines.append("    bit<16> mcast_group;")
    lines.append("    bit<8>  next_header;")
    lines.append("}")
    for event_id, event in enumerate(info.events.values(), start=1):
        lines.append(f"// event {event.name} (id {event_id})")
        lines.append(f"header ev_{event.name}_t {{")
        if not event.params:
            lines.append("    bit<8> pad;")
        for param in event.params:
            width = param.ty.width if isinstance(param.ty, ast.TInt) else 32
            lines.append(f"    bit<{width}> {param.name};")
        lines.append("}")
    lines.append("struct headers_t {")
    lines.append("    ethernet_t ethernet;")
    lines.append("    lucid_event_t lucid;")
    for event in info.events.values():
        lines.append(f"    ev_{event.name}_t ev_{event.name};")
    lines.append("}")
    lines.append("struct metadata_t {")
    lines.append("    bit<32> self_loc;")
    lines.append("    bit<32> timestamp;")
    lines.append("    bit<16> out_event_id;")
    lines.append("    bit<9>  egress_port;")
    lines.append("    bit<1>  do_recirculate;")
    lines.append("}")
    return "\n".join(lines)


def _gen_parser(info: ProgramInfo) -> str:
    lines: List[str] = []
    lines.append("parser LucidParser(packet_in pkt, out headers_t hdr,")
    lines.append("                   out metadata_t md, out ingress_intrinsic_metadata_t ig) {")
    lines.append("    state start {")
    lines.append("        pkt.extract(ig);")
    lines.append("        pkt.advance(PORT_METADATA_SIZE);")
    lines.append("        transition parse_ethernet;")
    lines.append("    }")
    lines.append("    state parse_ethernet {")
    lines.append("        pkt.extract(hdr.ethernet);")
    lines.append("        transition select(hdr.ethernet.ether_type) {")
    lines.append("            LUCID_ETHERTYPE : parse_lucid;")
    lines.append("            default         : accept;")
    lines.append("        }")
    lines.append("    }")
    lines.append("    state parse_lucid {")
    lines.append("        pkt.extract(hdr.lucid);")
    lines.append("        transition select(hdr.lucid.event_id) {")
    for event_id, event in enumerate(info.events.values(), start=1):
        lines.append(f"            {event_id} : parse_ev_{event.name};")
    lines.append("            default : accept;")
    lines.append("        }")
    lines.append("    }")
    for event in info.events.values():
        lines.append(f"    state parse_ev_{event.name} {{")
        lines.append(f"        pkt.extract(hdr.ev_{event.name});")
        lines.append("        transition accept;")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _memop_body(info: ProgramInfo, memop_name: str, value_expr: str) -> List[str]:
    """Render a memop's body as RegisterAction statements."""
    memop = info.memops.get(memop_name)
    lines: List[str] = []
    if memop is None:
        lines.append(f"            mem = {value_expr};")
        return lines
    stored, local = (p.name for p in memop.params)

    def render_expr(expr: ast.Expr) -> str:
        if isinstance(expr, ast.EInt):
            return str(expr.value)
        if isinstance(expr, ast.EBool):
            return "1" if expr.value else "0"
        if isinstance(expr, ast.EVar):
            if expr.name == stored:
                return "mem"
            if expr.name == local:
                return value_expr
            const = info.consts.lookup(expr.name)
            return str(const) if const is not None else expr.name
        if isinstance(expr, ast.EBinary):
            return f"{render_expr(expr.left)} {_P4_BINOPS[expr.op]} {render_expr(expr.right)}"
        return "0"

    body = [s for s in memop.body if not isinstance(s, ast.SNoop)]
    if len(body) == 1 and isinstance(body[0], ast.SReturn):
        lines.append(f"            mem = {render_expr(body[0].value)};")
        return lines
    if len(body) == 1 and isinstance(body[0], ast.SIf):
        if_stmt = body[0]
        then_ret = if_stmt.then_body[0]
        else_ret = if_stmt.else_body[0]
        lines.append(f"            if ({render_expr(if_stmt.cond)}) {{")
        lines.append(f"                mem = {render_expr(then_ret.value)};")
        lines.append("            } else {")
        lines.append(f"                mem = {render_expr(else_ret.value)};")
        lines.append("            }")
        return lines
    lines.append(f"            mem = {value_expr};")
    return lines


def _gen_registers(
    info: ProgramInfo, memory_tables: List[AtomicTable], naive: bool
) -> str:
    lines: List[str] = []
    for g in info.globals.values():
        lines.append(
            f"Register<bit<{g.cell_width}>, bit<32>>({g.size}) reg_{g.name};"
        )
    # RegisterActions: one per memory table (the compiler reuses memops, the
    # naive style re-declares an action at every use site anyway, which is
    # what both styles structurally require in P4).
    for table in memory_tables:
        stmt = table.stmt
        assert isinstance(stmt, NArrayOp)
        g = info.globals[stmt.array]
        action_name = f"ra_{_sanitize(table.name)}"
        value_expr = _operand(stmt.args[0]) if stmt.args else "1"
        lines.append(
            f"RegisterAction<bit<{g.cell_width}>, bit<32>, bit<{g.cell_width}>>(reg_{g.name})"
        )
        lines.append(f"    {action_name} = {{")
        lines.append(f"        void apply(inout bit<{g.cell_width}> mem, out bit<{g.cell_width}> rv) {{")
        if stmt.method in ("Array.get", "Array.getm", "Array.update"):
            lines.append("            rv = mem;")
        if stmt.method in ("Array.set", "Array.setm", "Array.update") or stmt.memops:
            memop_name = stmt.memops[-1] if stmt.memops else ""
            lines.extend(_memop_body(info, memop_name, value_expr))
        lines.append("        }")
        lines.append("    };")
    return "\n".join(lines)


def _action_body(table: AtomicTable) -> List[str]:
    stmt = table.stmt
    lines: List[str] = []
    if isinstance(stmt, NOp):
        lines.append(
            f"        md.{_sanitize(stmt.dst)} = {_operand(stmt.lhs)} "
            f"{_P4_BINOPS[stmt.op]} {_operand(stmt.rhs)};"
        )
    elif isinstance(stmt, NCopy):
        lines.append(f"        md.{_sanitize(stmt.dst)} = {_operand(stmt.src)};")
    elif isinstance(stmt, NHash):
        args = ", ".join(_operand(a) for a in stmt.args)
        lines.append(f"        md.{_sanitize(stmt.dst)} = hash_{stmt.width}.get({{ {args} }});")
    elif isinstance(stmt, NArrayOp):
        call = f"ra_{_sanitize(table.name)}.execute((bit<32>){_operand(stmt.index)})"
        if stmt.dst:
            lines.append(f"        md.{_sanitize(stmt.dst)} = {call};")
        else:
            lines.append(f"        {call};")
    elif isinstance(stmt, NGenerate):
        lines.append(f"        md.out_event_id = EV_{stmt.event.upper()};")
        lines.append(f"        hdr.ev_{stmt.event}.setValid();")
        for i, arg in enumerate(stmt.args):
            lines.append(f"        hdr.ev_{stmt.event}.arg{i} = {_operand(arg)};")
        lines.append(f"        hdr.lucid.event_delay = {_operand(stmt.delay)};")
        lines.append(f"        hdr.lucid.event_loc = {_operand(stmt.location)};")
        lines.append("        md.do_recirculate = 1;")
    elif isinstance(stmt, NPrim):
        if stmt.prim == "drop":
            lines.append("        ig_dprsr_md.drop_ctl = 1;")
        elif stmt.prim == "forward":
            lines.append(f"        ig_tm_md.ucast_egress_port = (bit<9>){_operand(stmt.args[0])};")
        elif stmt.prim == "flood":
            lines.append("        ig_tm_md.mcast_grp_a = FLOOD_GROUP;")
        else:
            lines.append(f"        // primitive {stmt.prim}")
    else:
        lines.append("        // no-op")
    return lines


def _gen_actions(tables: List[AtomicTable]) -> str:
    lines: List[str] = []
    for table in tables:
        lines.append(f"action do_{_sanitize(table.name)}() {{")
        lines.extend(_action_body(table))
        lines.append("}")
        lines.append("action noop_{0}() {{ }}".format(_sanitize(table.name)))
    return "\n".join(lines)


def _gen_dispatcher(info: ProgramInfo) -> List[str]:
    lines: List[str] = []
    lines.append("// Lucid event scheduler: dispatcher (Section 3.2)")
    lines.append("action dispatch_handle() { }")
    lines.append("action dispatch_forward(bit<9> port) { ig_tm_md.ucast_egress_port = port; }")
    lines.append("action dispatch_multicast(bit<16> grp) { ig_tm_md.mcast_grp_a = grp; }")
    lines.append("action dispatch_delay() { ig_tm_md.qid = DELAY_QID; md.do_recirculate = 1; }")
    lines.append("table event_dispatcher {")
    lines.append("    key = {")
    lines.append("        hdr.lucid.event_id    : exact;")
    lines.append("        hdr.lucid.event_loc   : ternary;")
    lines.append("        hdr.lucid.event_delay : ternary;")
    lines.append("    }")
    lines.append("    actions = { dispatch_handle; dispatch_forward; dispatch_multicast; dispatch_delay; }")
    lines.append("    const default_action = dispatch_handle;")
    lines.append(f"    size = {max(16, 4 * max(1, len(info.events)))};")
    lines.append("}")
    lines.append("// Lucid event scheduler: egress serializer")
    lines.append("table event_serializer {")
    lines.append("    key = { eg_intr_md.egress_rid : exact; }")
    lines.append("    actions = { strip_other_events; }")
    lines.append("    const default_action = strip_other_events;")
    lines.append("}")
    lines.append("action strip_other_events() { }")
    return lines


def _gen_tables_merged(layout: PipelineLayout, info: ProgramInfo) -> str:
    lines: List[str] = []
    lines.extend(_gen_dispatcher(info))
    event_ids = {name: i for i, name in enumerate(info.events, start=1)}
    for stage in layout.stages:
        for merged in stage.merged_tables:
            lines.append(f"// stage {stage.index}")
            lines.append(f"table {merged.name} {{")
            lines.append("    key = {")
            lines.append("        hdr.lucid.event_id : ternary;")
            for key in merged.match_keys():
                if key == "event_id":
                    continue
                lines.append(f"        md.{_sanitize(key)} : ternary;")
            lines.append("    }")
            lines.append("    actions = {")
            for member in merged.members:
                lines.append(f"        do_{_sanitize(member.name)};")
                lines.append(f"        noop_{_sanitize(member.name)};")
            lines.append("    }")
            lines.append("    const entries = {")
            for member in merged.members:
                event_id = event_ids.get(member.handler, 0)
                conds = " && ".join(c.show() for c in member.path_conditions) or "always"
                lines.append(
                    f"        // {member.handler}: {conds}"
                )
                lines.append(
                    f"        ({event_id}, _) : do_{_sanitize(member.name)}();"
                )
            lines.append("    }")
            lines.append(f"    size = {max(2, merged.rule_count())};")
            lines.append("}")
    return "\n".join(lines)


def _gen_tables_naive(tables: List[AtomicTable], info: ProgramInfo) -> str:
    lines: List[str] = []
    lines.extend(_gen_dispatcher(info))
    event_ids = {name: i for i, name in enumerate(info.events, start=1)}
    for table in tables:
        lines.append(f"table tbl_{_sanitize(table.name)} {{")
        lines.append("    key = {")
        lines.append("        hdr.lucid.event_id : ternary;")
        for cond in table.path_conditions:
            for op in (cond.lhs, cond.rhs):
                if isinstance(op, Var):
                    lines.append(f"        md.{_sanitize(op.name)} : ternary;")
        lines.append("    }")
        lines.append("    actions = {")
        lines.append(f"        do_{_sanitize(table.name)};")
        lines.append(f"        noop_{_sanitize(table.name)};")
        lines.append("    }")
        event_id = event_ids.get(table.handler, 0)
        lines.append("    const entries = {")
        conds = " && ".join(c.show() for c in table.path_conditions) or "always"
        lines.append(f"        // {table.handler}: {conds}")
        lines.append(f"        ({event_id}, _) : do_{_sanitize(table.name)}();")
        lines.append("    }")
        lines.append("    size = 2;")
        lines.append("}")
    return "\n".join(lines)


def _gen_control(layout: PipelineLayout, naive: bool, tables: List[AtomicTable]) -> str:
    lines: List[str] = []
    lines.append("control LucidIngress(inout headers_t hdr, inout metadata_t md,")
    lines.append("                     in ingress_intrinsic_metadata_t ig_intr_md,")
    lines.append("                     inout ingress_intrinsic_metadata_for_tm_t ig_tm_md,")
    lines.append("                     inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {")
    lines.append("    apply {")
    lines.append("        event_dispatcher.apply();")
    if naive:
        for table in tables:
            lines.append(f"        tbl_{_sanitize(table.name)}.apply();")
    else:
        for stage in layout.stages:
            if not stage.merged_tables:
                continue
            lines.append(f"        // ---- pipeline stage {stage.index} ----")
            for merged in stage.merged_tables:
                lines.append(f"        {merged.name}.apply();")
    lines.append("        if (md.do_recirculate == 1) {")
    lines.append("            ig_tm_md.ucast_egress_port = RECIRC_PORT;")
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    lines.append("control LucidEgress(inout headers_t hdr, inout metadata_t md,")
    lines.append("                    in egress_intrinsic_metadata_t eg_intr_md) {")
    lines.append("    apply {")
    lines.append("        // event serialization: keep only the event selected by the clone id")
    lines.append("        event_serializer.apply();")
    lines.append("        // delay queue: update remaining delay from queue residence time")
    lines.append("        if (hdr.lucid.isValid() && hdr.lucid.event_delay > 0) {")
    lines.append("            hdr.lucid.event_delay = hdr.lucid.event_delay |-| eg_intr_md.deq_timedelta;")
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _gen_deparser(info: ProgramInfo) -> str:
    lines: List[str] = []
    lines.append("control LucidDeparser(packet_out pkt, inout headers_t hdr) {")
    lines.append("    apply {")
    lines.append("        pkt.emit(hdr.ethernet);")
    lines.append("        pkt.emit(hdr.lucid);")
    for event in info.events.values():
        lines.append(f"        pkt.emit(hdr.ev_{event.name});")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def _gen_preamble(info: ProgramInfo, layout: PipelineLayout) -> str:
    lines: List[str] = []
    lines.append("#include <core.p4>")
    lines.append("#include <tna.p4>")
    lines.append(f"// generated by the Lucid reproduction compiler from '{info.program.name}'")
    lines.append("#define LUCID_ETHERTYPE 0x88B5")
    lines.append("#define RECIRC_PORT 196")
    lines.append("#define DELAY_QID 7")
    lines.append("#define FLOOD_GROUP 1")
    for i, event in enumerate(info.events, start=1):
        lines.append(f"#define EV_{event.upper()} {i}")
    for name, value in info.consts.values.items():
        lines.append(f"#define {name.upper()} {value}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def generate_p4(
    info: ProgramInfo, layout: PipelineLayout, style: str = "lucid"
) -> P4Program:
    """Emit a P4 program for ``layout``.

    ``style`` is ``"lucid"`` for the optimising compiler's output or
    ``"naive"`` for the hand-written-style baseline.
    """
    naive = style == "naive"
    all_tables = [t for stage in layout.stages for m in stage.merged_tables for t in m.members]
    memory_tables = [t for t in all_tables if t.kind is TableKind.MEMORY]
    program = P4Program(name=f"{info.program.name}.{style}")
    program.sections["preamble"] = _gen_preamble(info, layout)
    program.sections["headers"] = _gen_headers(info)
    program.sections["parsers"] = _gen_parser(info)
    program.sections["registers"] = _gen_registers(info, memory_tables, naive)
    program.sections["actions"] = _gen_actions(all_tables)
    if naive:
        program.sections["tables"] = _gen_tables_naive(all_tables, info)
    else:
        program.sections["tables"] = _gen_tables_merged(layout, info)
    program.sections["control"] = _gen_control(layout, naive, all_tables)
    program.sections["deparser"] = _gen_deparser(info)
    return program
