"""A resource model of the Intel Tofino's match-action pipeline.

The Lucid compiler's merging pass (Section 6.2) places atomic tables into
pipeline stages "based on data flow constraints, a simple model of the free
resources in each stage, and a small number of Tofino-specific constraints".
This module is that simple model.  The constants follow the publicly known
Tofino-1 architecture (and the figures in the paper: applications use 5-12
stages, with 2-13 ALU instructions mapped per stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TofinoModel:
    """Per-pipeline resource limits used by the layout algorithm."""

    #: number of match-action stages in one pipeline
    num_stages: int = 12
    #: logical match-action tables per stage
    tables_per_stage: int = 16
    #: stateful ALUs (register blocks) per stage
    salus_per_stage: int = 4
    #: stateless ALU (VLIW action) slots per stage
    alus_per_stage: int = 20
    #: hash distribution units per stage
    hash_units_per_stage: int = 6
    #: SRAM available to register arrays per stage, in 32-bit words
    sram_words_per_stage: int = 128 * 1024
    #: TCAM entries per stage (not heavily used by Lucid programs)
    tcam_entries_per_stage: int = 2048
    #: maximum atomic tables the greedy pass merges into one physical table
    max_merge_width: int = 16
    #: recirculation port bandwidth, bits per second
    recirc_bandwidth_bps: float = 100e9
    #: pipeline throughput, packets per second (1 packet per clock at 1 GHz)
    packets_per_second: float = 1e9
    #: shared packet buffer, bytes
    packet_buffer_bytes: int = 22 * 1024 * 1024
    #: number of front panel ports modelled for overhead analyses
    front_panel_ports: int = 10
    #: per-port bandwidth in bits per second
    port_bandwidth_bps: float = 100e9


@dataclass
class StageResources:
    """Mutable resource usage of one pipeline stage during layout."""

    model: TofinoModel
    tables: int = 0
    salus: int = 0
    alus: int = 0
    hash_units: int = 0
    sram_words: int = 0

    def can_fit(self, tables: int = 0, salus: int = 0, alus: int = 0, hash_units: int = 0,
                sram_words: int = 0) -> bool:
        return (
            self.tables + tables <= self.model.tables_per_stage
            and self.salus + salus <= self.model.salus_per_stage
            and self.alus + alus <= self.model.alus_per_stage
            and self.hash_units + hash_units <= self.model.hash_units_per_stage
            and self.sram_words + sram_words <= self.model.sram_words_per_stage
        )

    def claim(self, tables: int = 0, salus: int = 0, alus: int = 0, hash_units: int = 0,
              sram_words: int = 0) -> None:
        self.tables += tables
        self.salus += salus
        self.alus += alus
        self.hash_units += hash_units
        self.sram_words += sram_words


DEFAULT_TOFINO = TofinoModel()
