"""Pipeline layout data structures: merged tables, stages, and statistics.

These are the *results* of the greedy merging pass (:mod:`repro.backend.merge`)
and the inputs of P4 emission (:mod:`repro.backend.p4gen`) and of the
evaluation benchmarks (Figures 9, 12, and 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend.resources import TofinoModel
from repro.backend.tables import AtomicTable, TableKind


@dataclass
class MergedTable:
    """A physical match-action table holding one or more atomic tables.

    Atomic tables merged together share one set of match keys (the union of
    their path-condition variables plus the event id) and their rules are the
    cross product of the members' rules, as in Figure 8.
    """

    name: str
    stage: int
    members: List[AtomicTable] = field(default_factory=list)

    def match_keys(self) -> List[str]:
        keys: List[str] = ["event_id"]
        for member in self.members:
            for cond in member.path_conditions:
                for operand in (cond.lhs, cond.rhs):
                    name = getattr(operand, "name", None)
                    if name is not None and name not in keys:
                        keys.append(name)
        return keys

    def rule_count(self) -> int:
        """Number of static rules after the cross-product merge."""
        count = 1
        for member in self.members:
            count *= max(1, len(member.path_conditions) + 1)
        return count


@dataclass
class StageLayout:
    """All tables placed in one physical pipeline stage."""

    index: int
    merged_tables: List[MergedTable] = field(default_factory=list)

    def atomic_tables(self) -> List[AtomicTable]:
        return [t for merged in self.merged_tables for t in merged.members]

    def alu_instructions(self) -> int:
        """Number of Lucid statements (ALU instructions) mapped to this stage —
        the quantity plotted in Figure 13."""
        return len(self.atomic_tables())

    def salu_instructions(self) -> int:
        return sum(1 for t in self.atomic_tables() if t.kind is TableKind.MEMORY)


@dataclass
class PipelineLayout:
    """The complete placement of a program onto the pipeline."""

    program_name: str
    model: TofinoModel
    stages: List[StageLayout] = field(default_factory=list)
    #: global array name -> stage index
    array_stages: Dict[str, int] = field(default_factory=dict)
    #: per-handler unoptimised stage requirement (longest atomic-table path)
    unoptimized_stages_per_handler: Dict[str, int] = field(default_factory=dict)

    # -- statistics used by the evaluation ---------------------------------
    def num_stages(self) -> int:
        """Stages used by the optimised layout (Figure 9's "Tofino Stages")."""
        return len([s for s in self.stages if s.merged_tables])

    def unoptimized_stages(self) -> int:
        """The paper's unoptimised baseline: atomic tables on the longest
        code path, taken over the whole program."""
        return max(self.unoptimized_stages_per_handler.values(), default=0)

    def stage_ratio(self) -> float:
        """Unoptimised / optimised stage ratio (Figure 12)."""
        optimized = self.num_stages()
        if optimized == 0:
            return 1.0
        return self.unoptimized_stages() / optimized

    def alu_instructions_per_stage(self) -> List[int]:
        """ALU instructions mapped per (non-empty) stage (Figure 13)."""
        return [s.alu_instructions() for s in self.stages if s.merged_tables]

    def max_parallelism(self) -> int:
        counts = self.alu_instructions_per_stage()
        return max(counts) if counts else 0

    def total_atomic_tables(self) -> int:
        return sum(s.alu_instructions() for s in self.stages)

    def total_merged_tables(self) -> int:
        return sum(len(s.merged_tables) for s in self.stages)

    def fits(self) -> bool:
        return self.num_stages() <= self.model.num_stages

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "stages": self.num_stages(),
            "unoptimized_stages": self.unoptimized_stages(),
            "stage_ratio": round(self.stage_ratio(), 2),
            "atomic_tables": self.total_atomic_tables(),
            "merged_tables": self.total_merged_tables(),
            "max_alus_per_stage": self.max_parallelism(),
            "fits_tofino": self.fits(),
        }
