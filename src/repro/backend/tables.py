"""Atomic P4 tables and the table control graph (Section 6.1, Figure 6).

The backend's unit of work is the *atomic table*: a match-action table simple
enough to execute with at most one Tofino ALU.  There are three kinds in the
paper — operation tables, memory-operation tables, and branch tables — plus,
in this implementation, explicit kinds for hash computations, event
generation, and primitive actions, which the paper folds into operation
tables.

:func:`build_table_graph` turns a normalised handler into the table *control*
graph of Figure 6(1): one node per atomic statement, edges following program
order, with branch tables fanning out to their arms.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.midend.normalize import (
    Const,
    NArrayOp,
    NCond,
    NCopy,
    NGenerate,
    NHash,
    NIf,
    NOp,
    NPrim,
    NStmt,
    NormalizedHandler,
    Operand,
    Var,
    operand_vars,
)


class TableKind(enum.Enum):
    """The kind of an atomic table (Figure 7)."""

    OPERATION = "operation"
    MEMORY = "memory"
    BRANCH = "branch"
    HASH = "hash"
    GENERATE = "generate"
    PRIMITIVE = "primitive"


@dataclass
class AtomicTable:
    """One atomic table: a single match-action table wrapping one operation."""

    uid: int
    name: str
    kind: TableKind
    handler: str
    stmt: Optional[NStmt] = None
    #: local variables read / written by the table's action
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: for MEMORY tables: the global array accessed and the memops used
    array: Optional[str] = None
    memops: List[str] = field(default_factory=list)
    #: for BRANCH tables: the condition tested
    condition: Optional[NCond] = None
    #: path condition accumulated by branch inlining (Section 6.2)
    path_conditions: List[NCond] = field(default_factory=list)

    def is_stateful(self) -> bool:
        return self.kind is TableKind.MEMORY

    def condition_reads(self) -> Set[str]:
        names: Set[str] = set()
        for cond in self.path_conditions:
            names.update(operand_vars(cond.lhs, cond.rhs))
        if self.condition is not None:
            names.update(operand_vars(self.condition.lhs, self.condition.rhs))
        return names

    def all_reads(self) -> Set[str]:
        return self.reads | self.condition_reads()

    def describe(self) -> str:
        return f"{self.name} [{self.kind.value}]"


@dataclass
class TableGraph:
    """A control graph over atomic tables (one per handler)."""

    handler: str
    tables: List[AtomicTable] = field(default_factory=list)
    #: uid -> list of (successor uid, edge label); labels: None, "true", "false"
    edges: Dict[int, List[Tuple[int, Optional[str]]]] = field(default_factory=dict)
    roots: List[int] = field(default_factory=list)

    def by_uid(self, uid: int) -> AtomicTable:
        return self._index[uid]

    def __post_init__(self) -> None:
        self._index: Dict[int, AtomicTable] = {t.uid: t for t in self.tables}

    def add_table(self, table: AtomicTable) -> None:
        self.tables.append(table)
        self._index[table.uid] = table
        self.edges.setdefault(table.uid, [])

    def add_edge(self, src: int, dst: int, label: Optional[str] = None) -> None:
        self.edges.setdefault(src, []).append((dst, label))

    def successors(self, uid: int) -> List[int]:
        return [dst for dst, _ in self.edges.get(uid, [])]

    def non_branch_tables(self) -> List[AtomicTable]:
        return [t for t in self.tables if t.kind is not TableKind.BRANCH]

    def branch_tables(self) -> List[AtomicTable]:
        return [t for t in self.tables if t.kind is TableKind.BRANCH]

    def longest_path_length(self) -> int:
        """Length (in tables) of the longest control path — the paper's
        "number of atomic P4 tables in the longest code path" used as the
        unoptimised stage count in Figure 12."""
        memo: Dict[int, int] = {}

        def depth(uid: int) -> int:
            if uid in memo:
                return memo[uid]
            memo[uid] = 0  # guard against accidental cycles
            succ = self.successors(uid)
            best = 1 + max((depth(s) for s in succ), default=0)
            memo[uid] = best
            return best

        return max((depth(root) for root in self.roots), default=0)


# ---------------------------------------------------------------------------
# construction from a normalised handler
# ---------------------------------------------------------------------------
class _GraphBuilder:
    def __init__(self, handler: NormalizedHandler):
        self.handler = handler
        self.graph = TableGraph(handler=handler.name)
        self.counter = itertools.count()

    def fresh_uid(self) -> int:
        return next(self.counter)

    def build(self) -> TableGraph:
        exits = self._build_block(self.handler.body, preds=[])
        return self.graph

    # preds: list of (uid, label) that should point at the next table created
    def _build_block(
        self, stmts: Sequence[NStmt], preds: List[Tuple[int, Optional[str]]]
    ) -> List[Tuple[int, Optional[str]]]:
        current = list(preds)
        for stmt in stmts:
            current = self._build_stmt(stmt, current)
        return current

    def _link(self, preds: List[Tuple[int, Optional[str]]], uid: int) -> None:
        if not preds and uid not in self.graph.roots:
            self.graph.roots.append(uid)
        for src, label in preds:
            self.graph.add_edge(src, uid, label)

    def _build_stmt(
        self, stmt: NStmt, preds: List[Tuple[int, Optional[str]]]
    ) -> List[Tuple[int, Optional[str]]]:
        if isinstance(stmt, NIf):
            branch = self._make_branch(stmt)
            self._link(preds, branch.uid)
            then_exits = self._build_block(stmt.then_body, [(branch.uid, "true")])
            else_exits = self._build_block(stmt.else_body, [(branch.uid, "false")])
            return then_exits + else_exits
        table = self._make_table(stmt)
        if table is None:
            return preds
        self._link(preds, table.uid)
        return [(table.uid, None)]

    def _make_branch(self, stmt: NIf) -> AtomicTable:
        uid = self.fresh_uid()
        table = AtomicTable(
            uid=uid,
            name=f"{self.handler.name}_if_{uid}",
            kind=TableKind.BRANCH,
            handler=self.handler.name,
            stmt=stmt,
            condition=stmt.cond,
            reads=set(operand_vars(stmt.cond.lhs, stmt.cond.rhs)),
        )
        self.graph.add_table(table)
        return table

    def _make_table(self, stmt: NStmt) -> Optional[AtomicTable]:
        uid = self.fresh_uid()
        name = f"{self.handler.name}"
        if isinstance(stmt, NOp):
            table = AtomicTable(
                uid=uid,
                name=f"{name}_op_{stmt.dst}",
                kind=TableKind.OPERATION,
                handler=self.handler.name,
                stmt=stmt,
                reads=set(operand_vars(stmt.lhs, stmt.rhs)),
                writes={stmt.dst},
            )
        elif isinstance(stmt, NCopy):
            table = AtomicTable(
                uid=uid,
                name=f"{name}_copy_{stmt.dst}",
                kind=TableKind.OPERATION,
                handler=self.handler.name,
                stmt=stmt,
                reads=set(operand_vars(stmt.src)),
                writes={stmt.dst},
            )
        elif isinstance(stmt, NHash):
            table = AtomicTable(
                uid=uid,
                name=f"{name}_hash_{stmt.dst}",
                kind=TableKind.HASH,
                handler=self.handler.name,
                stmt=stmt,
                reads=set(operand_vars(*stmt.args)),
                writes={stmt.dst},
            )
        elif isinstance(stmt, NArrayOp):
            reads = set(operand_vars(stmt.index, *stmt.args))
            writes = {stmt.dst} if stmt.dst else set()
            table = AtomicTable(
                uid=uid,
                name=f"{name}_{stmt.array}_{stmt.method.split('.')[-1]}_{uid}",
                kind=TableKind.MEMORY,
                handler=self.handler.name,
                stmt=stmt,
                reads=reads,
                writes=writes,
                array=stmt.array,
                memops=list(stmt.memops),
            )
        elif isinstance(stmt, NGenerate):
            reads = set(operand_vars(stmt.delay, stmt.location, *stmt.args))
            table = AtomicTable(
                uid=uid,
                name=f"{name}_gen_{stmt.event}_{uid}",
                kind=TableKind.GENERATE,
                handler=self.handler.name,
                stmt=stmt,
                reads=reads,
                writes={f"__ev_{stmt.event}"},
            )
        elif isinstance(stmt, NPrim):
            # Sys.* primitives publish their result through a well-known
            # metadata field; recording the write gives the copy that reads
            # it a RAW dependency, so dataflow reordering cannot hoist the
            # consumer ahead of the producer (or swap two Sys.random draws)
            writes = (
                {f"__{stmt.prim.replace('.', '_')}"}
                if stmt.prim in ("Sys.time", "Sys.self", "Sys.random")
                else set()
            )
            table = AtomicTable(
                uid=uid,
                name=f"{name}_{stmt.prim.replace(':', '_').replace('.', '_')}_{uid}",
                kind=TableKind.PRIMITIVE,
                handler=self.handler.name,
                stmt=stmt,
                reads=set(operand_vars(*stmt.args)),
                writes=writes,
            )
        else:  # pragma: no cover - defensive
            return None
        self.graph.add_table(table)
        return table


def build_table_graph(handler: NormalizedHandler) -> TableGraph:
    """Build the atomic table control graph (Figure 6(1)) for one handler."""
    return _GraphBuilder(handler).build()
