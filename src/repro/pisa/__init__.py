"""The PISA hardware substrate: timing constants, recirculation accounting,
the pausable delay queue, and a pipeline executor for compiled layouts."""

from repro.pisa.pipeline import PipelinePassResult, PisaPipeline
from repro.pisa.queues import (
    DelayedEvent,
    DelayMechanismResult,
    PausableDelayQueue,
    RecirculatingDelayBaseline,
    simulate_concurrent_delays,
)
from repro.pisa.recirculation import PipelineBudget, RecirculationPort
from repro.pisa.tofino import DEFAULT_TIMING, MIN_FRAME_BYTES, TofinoTiming

__all__ = [
    "PisaPipeline",
    "PipelinePassResult",
    "PausableDelayQueue",
    "RecirculatingDelayBaseline",
    "DelayedEvent",
    "DelayMechanismResult",
    "simulate_concurrent_delays",
    "RecirculationPort",
    "PipelineBudget",
    "TofinoTiming",
    "DEFAULT_TIMING",
    "MIN_FRAME_BYTES",
]
