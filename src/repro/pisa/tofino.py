"""Tofino-specific timing and sizing constants used by the PISA simulator.

The values follow the numbers the paper reports or assumes: a 1 GHz pipeline
processing one packet per clock, 100 Gb/s ports (front-panel and
recirculation), a 22 MB shared packet buffer, ~600 ns per recirculation pass,
and a pausable delay queue released every 100 µs by PFC frames from the packet
generator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TofinoTiming:
    """Timing constants of the simulated switch."""

    clock_hz: float = 1e9
    pipeline_latency_ns: int = 400
    recirculation_latency_ns: int = 600
    port_bandwidth_bps: float = 100e9
    recirc_bandwidth_bps: float = 100e9
    pcie_oneway_latency_ns: int = 900
    cpu_install_latency_ns: int = 12_000  # Mantis-style driver-level install, lower bound
    cpu_install_latency_avg_ns: int = 17_500
    linux_socket_latency_ns: int = 100_000
    delay_queue_release_interval_ns: int = 100_000
    packet_buffer_bytes: int = 22 * 1024 * 1024
    min_line_rate_packet_bytes: int = 125
    front_panel_ports: int = 10


DEFAULT_TIMING = TofinoTiming()

#: minimum Ethernet frame size used for event packets (Section 7.2)
MIN_FRAME_BYTES = 64
