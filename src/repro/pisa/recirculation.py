"""Recirculation-port bandwidth accounting (Sections 2.5 and 7.3).

A PISA recirculation port has the bandwidth of one front-panel port and shares
the pipeline's packet-processing budget.  This module tracks how much of that
budget a control workload consumes, and computes the figures the paper derives
in its overhead analysis (pipeline utilisation, minimum line-rate packet
size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from repro.pisa.tofino import MIN_FRAME_BYTES, DEFAULT_TIMING, TofinoTiming

# only touched behind an ``if _OBS.enabled:`` guard (see repro.obs.metrics)
_M_PORT_PASSES = _REGISTRY.counter(
    "repro_pisa_recirc_port_passes_total",
    "Packet passes through recirculation ports.")
_M_PORT_BYTES = _REGISTRY.counter(
    "repro_pisa_recirc_port_bytes_total",
    "Bytes carried through recirculation ports (64 B minimum frame).")


@dataclass
class RecirculationPort:
    """Accounts packets sent through the recirculation port over time."""

    timing: TofinoTiming = field(default_factory=lambda: DEFAULT_TIMING)
    packets: int = 0
    bytes: int = 0

    def recirculate(self, packet_bytes: int = MIN_FRAME_BYTES, passes: int = 1) -> None:
        self.packets += passes
        wire_bytes = passes * max(MIN_FRAME_BYTES, packet_bytes)
        self.bytes += wire_bytes
        if _OBS.enabled:
            _M_PORT_PASSES.inc(passes)
            _M_PORT_BYTES.inc(wire_bytes)

    def bandwidth_bps(self, duration_ns: float) -> float:
        """Average recirculation bandwidth over ``duration_ns``."""
        if duration_ns <= 0:
            return 0.0
        return self.bytes * 8 / (duration_ns * 1e-9)

    def utilisation(self, duration_ns: float) -> float:
        """Fraction of the recirculation port's bandwidth consumed."""
        return min(1.0, self.bandwidth_bps(duration_ns) / self.timing.recirc_bandwidth_bps)

    def reset(self) -> None:
        self.packets = 0
        self.bytes = 0


@dataclass
class PipelineBudget:
    """The packets-per-second budget of an idealised PISA pipeline
    (Section 7.3's "1B packets per second servicing 10 100 Gb/s ports")."""

    packets_per_second: float = 1e9
    front_panel_ports: int = 10
    port_bandwidth_bps: float = 100e9

    def pipeline_utilisation(self, recirc_pkts_per_second: float) -> float:
        """Fraction of the pipeline's packet budget consumed by recirculation."""
        return recirc_pkts_per_second / self.packets_per_second

    def min_line_rate_packet_bytes(self, recirc_pkts_per_second: float) -> float:
        """The smallest average front-panel packet size (bytes) at which the
        pipeline still sustains line rate on all ports, given the
        recirculation load.

        With no recirculation the pipeline supports line rate for packets of
        at least ``total_port_bandwidth / packets_per_second`` bytes (125 B for
        the idealised processor).  Recirculated packets consume pipeline slots,
        leaving fewer slots per second for front-panel traffic, so the minimum
        packet size grows accordingly.
        """
        available_pps = self.packets_per_second - recirc_pkts_per_second
        if available_pps <= 0:
            return float("inf")
        total_bps = self.front_panel_ports * self.port_bandwidth_bps
        return total_bps / 8 / available_pps
