"""The pausable delay queue and its recirculation baseline (Section 3.2,
Figure 14).

Lucid delays events by parking their packets in a special egress queue of the
recirculation port.  The queue is paused most of the time and released at a
fixed interval by pairs of PFC frames from the packet generator; each release
lets the queued event packets out, their remaining delay is decremented by
their queue residence time, and packets whose delay has not yet expired
recirculate back into the queue.

The alternative (the Figure 14 "baseline") is to recirculate delayed packets
continuously until their delay expires, which costs one full recirculation-port
pass every ~600 ns per delayed event.

Both mechanisms are modelled here so the bandwidth/accuracy trade-off of
Figure 14 can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.metrics import OBS as _OBS, REGISTRY as _REGISTRY
from repro.pisa.tofino import MIN_FRAME_BYTES, DEFAULT_TIMING, TofinoTiming

# only touched behind an ``if _OBS.enabled:`` guard (see repro.obs.metrics)
_M_DELAYQ_PARKS = _REGISTRY.counter(
    "repro_pisa_delayq_parks_total",
    "Event packets parked in a pausable delay queue.")
_M_DELAYQ_RELEASES = _REGISTRY.counter(
    "repro_pisa_delayq_releases_total",
    "Delay-queue release windows (PFC unpause cycles).")
_M_DELAYQ_PASSES = _REGISTRY.counter(
    "repro_pisa_delayq_passes_total",
    "Recirculation passes made by parked packets during releases.")


@dataclass
class DelayedEvent:
    """One event packet parked for delayed execution."""

    event_id: int
    requested_delay_ns: int
    enqueued_at_ns: int
    size_bytes: int = MIN_FRAME_BYTES
    released_at_ns: Optional[int] = None

    @property
    def actual_delay_ns(self) -> Optional[int]:
        if self.released_at_ns is None:
            return None
        return self.released_at_ns - self.enqueued_at_ns

    @property
    def delay_error_ns(self) -> Optional[int]:
        if self.released_at_ns is None:
            return None
        return self.actual_delay_ns - self.requested_delay_ns

    @property
    def relative_error(self) -> Optional[float]:
        if self.released_at_ns is None or self.requested_delay_ns <= 0:
            return None
        return abs(self.delay_error_ns) / self.requested_delay_ns


@dataclass
class DelayMechanismResult:
    """Outcome of delaying a batch of events with one mechanism."""

    mechanism: str
    events: List[DelayedEvent] = field(default_factory=list)
    recirculation_passes: int = 0
    recirculated_bytes: int = 0
    buffer_bytes_peak: int = 0
    duration_ns: int = 0

    def recirc_bandwidth_gbps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.recirculated_bytes * 8 / (self.duration_ns * 1e-9) / 1e9

    def mean_abs_error_ns(self) -> float:
        errors = [abs(e.delay_error_ns) for e in self.events if e.delay_error_ns is not None]
        return sum(errors) / len(errors) if errors else 0.0

    def max_abs_error_ns(self) -> int:
        errors = [abs(e.delay_error_ns) for e in self.events if e.delay_error_ns is not None]
        return max(errors) if errors else 0

    def mean_relative_error(self) -> float:
        errors = [e.relative_error for e in self.events if e.relative_error is not None]
        return sum(errors) / len(errors) if errors else 0.0


class PausableDelayQueue:
    """The PFC-paused egress queue used by Lucid's event scheduler.

    Events enter the queue and are only released when the queue is unpaused,
    which happens every ``release_interval_ns``.  On release, an event whose
    remaining delay has expired is delivered; otherwise it recirculates once
    (consuming one recirculation pass) and re-enters the queue.
    """

    def __init__(
        self,
        release_interval_ns: Optional[int] = None,
        timing: TofinoTiming = DEFAULT_TIMING,
    ):
        self.timing = timing
        self.release_interval_ns = (
            release_interval_ns
            if release_interval_ns is not None
            else timing.delay_queue_release_interval_ns
        )
        self.queue: List[Tuple[DelayedEvent, int]] = []  # (event, deliver_not_before)
        self.now_ns = 0
        self.recirculation_passes = 0
        self.recirculated_bytes = 0
        self.delivered: List[DelayedEvent] = []
        self.buffer_bytes_peak = 0

    def enqueue(self, event: DelayedEvent) -> None:
        if event.requested_delay_ns < 0:
            raise SimulationError("cannot delay an event by a negative time")
        deadline = event.enqueued_at_ns + event.requested_delay_ns
        self.queue.append((event, deadline))
        if _OBS.enabled:
            _M_DELAYQ_PARKS.inc()
        self._update_peak()

    def _update_peak(self) -> None:
        occupancy = sum(e.size_bytes for e, _ in self.queue)
        self.buffer_bytes_peak = max(self.buffer_bytes_peak, occupancy)

    def run_until_empty(self, start_ns: int = 0) -> None:
        """Advance time in release intervals until every event is delivered."""
        self.now_ns = max(self.now_ns, start_ns)
        guard = 0
        while self.queue:
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - defensive
                raise SimulationError("delay queue did not drain")
            self.now_ns += self.release_interval_ns
            self._release()

    def _release(self) -> None:
        if _OBS.enabled:
            _M_DELAYQ_RELEASES.inc()
            _M_DELAYQ_PASSES.inc(len(self.queue))
        still_queued: List[Tuple[DelayedEvent, int]] = []
        for event, deadline in self.queue:
            if self.now_ns >= deadline:
                event.released_at_ns = self.now_ns
                self.delivered.append(event)
                # the released packet makes one final recirculation pass to
                # reach its handler
                self.recirculation_passes += 1
                self.recirculated_bytes += event.size_bytes
            else:
                # not ready: the packet recirculates once and re-enters the queue
                self.recirculation_passes += 1
                self.recirculated_bytes += event.size_bytes
                still_queued.append((event, deadline))
        self.queue = still_queued
        self._update_peak()


class RecirculatingDelayBaseline:
    """Delaying events by continuous recirculation (no pausable queue)."""

    def __init__(self, timing: TofinoTiming = DEFAULT_TIMING):
        self.timing = timing
        self.delivered: List[DelayedEvent] = []
        self.recirculation_passes = 0
        self.recirculated_bytes = 0

    def delay(self, event: DelayedEvent) -> None:
        passes = max(1, -(-event.requested_delay_ns // self.timing.recirculation_latency_ns))
        self.recirculation_passes += passes
        self.recirculated_bytes += passes * event.size_bytes
        event.released_at_ns = (
            event.enqueued_at_ns + passes * self.timing.recirculation_latency_ns
        )
        self.delivered.append(event)


def simulate_concurrent_delays(
    concurrent_events: int,
    requested_delay_ns: int = 1_000_000,
    duration_ns: int = 1_000_000_000,
    event_size_bytes: int = MIN_FRAME_BYTES,
    release_interval_ns: int = 100_000,
    release_window_ns: int = 7_000,
    baseline_loop_ns: int = 480,
    use_delay_queue: bool = True,
    timing: TofinoTiming = DEFAULT_TIMING,
) -> DelayMechanismResult:
    """Reproduce one point of Figure 14.

    ``concurrent_events`` events are kept perpetually delayed for
    ``duration_ns`` (each event, when its delay expires, is immediately
    re-delayed - this models the steady state of "delaying N concurrent events
    indefinitely").  Returns the bandwidth consumed on the recirculation port
    and the delay error statistics.

    Mechanism details:

    * With the pausable queue, the queue is unpaused once per
      ``release_interval_ns`` by the first PFC frame of a pair and re-paused
      ``release_window_ns`` later by the second.  While the queue is open,
      parked event packets drain, recirculate (one loop takes roughly the
      recirculation latency) and re-enter the queue, so each parked event makes
      ``ceil(release_window / recirculation_latency)`` passes per release.
    * Without the queue (the baseline), every delayed packet loops through the
      recirculation port back-to-back; one loop takes ``baseline_loop_ns``
      (the recirculation wire + queueing time, without a full pipeline pass),
      so N concurrent events offer ``N * size / baseline_loop_ns`` of load,
      capped at the port bandwidth.
    """
    result = DelayMechanismResult(
        mechanism="delay_queue" if use_delay_queue else "baseline", duration_ns=duration_ns
    )
    if concurrent_events <= 0:
        return result

    if use_delay_queue:
        releases = duration_ns // release_interval_ns
        passes_per_release = max(
            1, -(-release_window_ns // timing.recirculation_latency_ns)
        )
        passes = releases * concurrent_events * passes_per_release
        result.recirculation_passes = passes
        result.recirculated_bytes = passes * event_size_bytes
        result.buffer_bytes_peak = concurrent_events * event_size_bytes
        # Delay error: a parked event becomes ready somewhere between two
        # releases and waits for the next one.  Because the events that request
        # new delays are themselves triggered by released events, their phase
        # is biased towards "just after a release", so the residual error is
        # spread over half the release interval (the paper measures errors of
        # up to ~50 us for a 100 us release interval).
        for i in range(concurrent_events):
            event = DelayedEvent(
                event_id=i,
                requested_delay_ns=requested_delay_ns,
                enqueued_at_ns=0,
                size_bytes=event_size_bytes,
            )
            error = ((i + 1) * (release_interval_ns // 2)) // max(1, concurrent_events)
            event.released_at_ns = event.enqueued_at_ns + requested_delay_ns + error
            result.events.append(event)
        return result

    # baseline: each delayed event recirculates continuously, back to back
    passes_per_event = duration_ns // baseline_loop_ns
    total_passes = passes_per_event * concurrent_events
    port_pps = timing.recirc_bandwidth_bps / (event_size_bytes * 8)
    max_passes = int(port_pps * duration_ns * 1e-9)
    result.recirculation_passes = min(total_passes, max_passes)
    result.recirculated_bytes = result.recirculation_passes * event_size_bytes
    result.buffer_bytes_peak = concurrent_events * event_size_bytes
    saturated = total_passes > max_passes
    for i in range(concurrent_events):
        event = DelayedEvent(
            event_id=i,
            requested_delay_ns=requested_delay_ns,
            enqueued_at_ns=0,
            size_bytes=event_size_bytes,
        )
        # accuracy: quantised to one recirculation pass, unless the port is
        # saturated, in which case queueing inflates delays proportionally
        error = timing.recirculation_latency_ns
        if saturated:
            inflation = total_passes / max_passes
            error = int(requested_delay_ns * (inflation - 1)) + error
        event.released_at_ns = event.enqueued_at_ns + requested_delay_ns + error
        result.events.append(event)
    return result
