"""Execution of a compiled pipeline layout on a simulated PISA pipeline.

This is the substrate that stands in for the Tofino: it takes the
:class:`~repro.backend.layout.PipelineLayout` produced by the compiler and
executes event packets through it, stage by stage, atomic table by atomic
table — evaluating each table's path conditions against the packet's metadata
(as the generated match-action rules would) and applying its single operation
(stateless ALU op, stateful ALU register access, hash, event generation, or a
primitive action such as ``drop``/``forward``/``printf``).

Running the same program through this pipeline executor and through the
AST-level interpreter (:mod:`repro.interp`) and comparing the resulting
register state is the repository's main end-to-end check that compilation
preserves semantics.  Since the engine refactor the executor is also
*load-bearing*: :class:`~repro.interp.engine.PisaEngine` drives whole
scenario workloads through it, one pipeline pass per handled event, over a
:class:`~repro.interp.interpreter.SwitchRuntime` shared with the network
simulation (pass ``runtime=`` to share arrays, externs, the clock, and the
PRNG with a live :class:`~repro.interp.network.Switch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from repro.backend.compiler import CompiledProgram
from repro.backend.layout import PipelineLayout
from repro.backend.tables import AtomicTable, TableKind
from repro.errors import SimulationError
from repro.interp.arrays import RuntimeArray
from repro.interp.events import LOCAL, EventInstance
from repro.interp.interpreter import SwitchRuntime
from repro.midend.normalize import (
    Const,
    NArrayOp,
    NCopy,
    NGenerate,
    NHash,
    NOp,
    NPrim,
    Operand,
)
from repro.ops import MASK32, apply_binop, lucid_hash


@dataclass
class PipelinePassResult:
    """What one packet's pass through the pipeline produced."""

    generated: List[EventInstance] = field(default_factory=list)
    prints: List[str] = field(default_factory=list)
    dropped: bool = False
    flooded: bool = False
    forwarded_port: Optional[int] = None
    stages_traversed: int = 0
    tables_executed: int = 0


class PisaPipeline:
    """Executes a compiled program's layout over shared register state."""

    def __init__(
        self,
        compiled: CompiledProgram,
        switch_id: int = 0,
        runtime: Optional[SwitchRuntime] = None,
    ):
        self.compiled = compiled
        self.info = compiled.checked.info
        self.layout: PipelineLayout = compiled.layout
        # reuse the interpreter's runtime for arrays and compiled memops; an
        # externally supplied runtime shares its state (and its switch id)
        # with whoever else holds it — this is how the PISA engine keeps its
        # register file visible to Network.reset() and the array digests
        self.runtime = runtime or SwitchRuntime(compiled.checked, switch_id=switch_id)
        self.switch_id = self.runtime.switch_id
        #: optional :class:`repro.obs.profile.StageProfiler` — per-physical-
        #: stage wall-time and table accounting, fed by :meth:`process`
        self.stage_prof = None

    # -- state access ---------------------------------------------------------
    def array(self, name: str) -> RuntimeArray:
        return self.runtime.array(name)

    # -- execution --------------------------------------------------------------
    def process(self, event: EventInstance, time_ns: Optional[int] = None) -> PipelinePassResult:
        """Run one event packet through the pipeline (one ingress pass).

        ``time_ns`` stamps the runtime clock before execution; ``None`` keeps
        the clock wherever the caller (e.g. the network scheduler) set it.
        """
        if time_ns is not None:
            self.runtime.time_ns = time_ns
        handler = self.info.handlers.get(event.name)
        result = PipelinePassResult()
        if handler is None:
            return result
        # metadata vector: handler parameters become metadata fields
        metadata: Dict[str, int] = {
            param.name: int(arg) for param, arg in zip(handler.params, event.args)
        }
        # table uids are assigned in program order during table construction;
        # data-flow reordering may run two generate (or printf) tables in
        # either stage order, but packet generation and the print stream are
        # observable in program order, so both are re-sorted by originating
        # table at the end of the pass
        generate_order: List[int] = []
        print_order: List[int] = []
        stage_prof = self.stage_prof
        for stage_index, stage in enumerate(self.layout.stages):
            stage_executed = 0
            stage_start = perf_counter() if stage_prof is not None else 0.0
            for merged in stage.merged_tables:
                for table in merged.members:
                    if table.handler != event.name:
                        continue
                    if not self._conditions_hold(table, metadata):
                        continue
                    self._execute_table(table, metadata, result, generate_order, print_order)
                    stage_executed += 1
            if stage_executed:
                result.stages_traversed += 1
                result.tables_executed += stage_executed
                if stage_prof is not None:
                    stage_prof.record(
                        stage_index, stage_executed, perf_counter() - stage_start
                    )
        if len(result.generated) > 1:
            result.generated = [
                event
                for _, event in sorted(
                    zip(generate_order, result.generated), key=lambda pair: pair[0]
                )
            ]
        if len(result.prints) > 1:
            result.prints = [
                line
                for _, line in sorted(
                    zip(print_order, result.prints), key=lambda pair: pair[0]
                )
            ]
        return result

    # -- helpers ------------------------------------------------------------------
    def _operand_value(self, operand: Operand, metadata: Dict[str, int]) -> int:
        if isinstance(operand, Const):
            return operand.value
        name = operand.name
        if name in metadata:
            return metadata[name]
        if name == "SELF" or name == "__Sys_self":
            return self.switch_id
        if name == "__Sys_time":
            # the ingress timestamp metadata field, truncated like Sys.time()
            return self.runtime.time_ns & MASK32
        const = self.info.consts.lookup(name)
        if const is not None:
            return const
        # reading a metadata field that no table has written yet yields zero,
        # exactly as uninitialised metadata does in hardware
        return 0

    def _conditions_hold(self, table: AtomicTable, metadata: Dict[str, int]) -> bool:
        for cond in table.path_conditions:
            lhs = self._operand_value(cond.lhs, metadata)
            rhs = self._operand_value(cond.rhs, metadata)
            if not apply_binop(cond.op, lhs, rhs):
                return False
        return True

    def _execute_table(
        self,
        table: AtomicTable,
        metadata: Dict[str, int],
        result: PipelinePassResult,
        generate_order: Optional[List[int]] = None,
        print_order: Optional[List[int]] = None,
    ) -> None:
        stmt = table.stmt
        if isinstance(stmt, NOp):
            lhs = self._operand_value(stmt.lhs, metadata)
            rhs = self._operand_value(stmt.rhs, metadata)
            metadata[stmt.dst] = apply_binop(stmt.op, lhs, rhs)
        elif isinstance(stmt, NCopy):
            metadata[stmt.dst] = self._operand_value(stmt.src, metadata)
        elif isinstance(stmt, NHash):
            args = [self._operand_value(a, metadata) for a in stmt.args]
            metadata[stmt.dst] = lucid_hash(stmt.width, args)
        elif isinstance(stmt, NArrayOp):
            self._execute_array_op(stmt, metadata)
        elif isinstance(stmt, NGenerate):
            if generate_order is not None:
                generate_order.append(table.uid)
            self._execute_generate(stmt, metadata, result)
        elif isinstance(stmt, NPrim):
            before = len(result.prints)
            self._execute_prim(stmt, metadata, result)
            if print_order is not None:
                print_order.extend([table.uid] * (len(result.prints) - before))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"cannot execute table {table.name}")

    def _execute_prim(self, stmt, metadata: Dict[str, int], result: PipelinePassResult) -> None:
        prim = stmt.prim
        if prim == "drop":
            result.dropped = True
        elif prim == "forward":
            if stmt.args:
                result.forwarded_port = self._operand_value(stmt.args[0], metadata)
        elif prim == "flood":
            result.flooded = True
        elif prim == "printf":
            result.prints.append(
                " ".join(str(self._operand_value(a, metadata)) for a in stmt.args)
            )
        elif prim == "Sys.time":
            metadata["__Sys_time"] = self.runtime.time_ns & MASK32
        elif prim == "Sys.self":
            metadata["__Sys_self"] = self.switch_id
        elif prim == "Sys.random":
            # advances the shared xorshift state exactly once, like the
            # interpreter does at the corresponding call site; the optional
            # bound operand reduces the draw exactly as Sys.random(bound) does
            bound = self._operand_value(stmt.args[0], metadata) if stmt.args else None
            metadata["__Sys_random"] = self.runtime.random(bound)
        elif prim.startswith("extern:"):
            fn = self.runtime.externs.get(prim.split(":", 1)[1])
            if fn is not None:
                fn(*[self._operand_value(a, metadata) for a in stmt.args])
        # unknown primitives are inert metadata, as unprogrammed actions are

    def _execute_array_op(self, stmt, metadata: Dict[str, int]) -> None:
        array = self.runtime.array(stmt.array)
        index = self._operand_value(stmt.index, metadata)
        args = [self._operand_value(a, metadata) for a in stmt.args]
        memops = [self.runtime.memop_fn(m) for m in stmt.memops]
        if stmt.method in ("Array.get", "Array.getm"):
            memop = memops[0] if memops else None
            value = array.get(index, memop, args[0] if args else 0)
            if stmt.dst:
                metadata[stmt.dst] = value
        elif stmt.method in ("Array.set", "Array.setm"):
            if memops:
                array.set(index, memop=memops[0], arg=args[0] if args else 0)
            else:
                array.set(index, value=args[0] if args else 0)
        elif stmt.method == "Array.update":
            get_memop = memops[0] if memops else None
            set_memop = memops[1] if len(memops) > 1 else None
            get_arg = args[0] if args else 0
            set_arg = args[1] if len(args) > 1 else (args[0] if args else 0)
            value = array.update(index, get_memop, get_arg, set_memop, set_arg)
            if stmt.dst:
                metadata[stmt.dst] = value
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown array method {stmt.method}")

    def _execute_generate(
        self, stmt, metadata: Dict[str, int], result: PipelinePassResult
    ) -> None:
        args = tuple(self._operand_value(a, metadata) for a in stmt.args)
        delay = self._operand_value(stmt.delay, metadata)
        event = EventInstance(name=stmt.event, args=args, source=self.switch_id)
        if delay:
            event = event.delay(delay)
        if stmt.group is not None:
            members = self.info.consts.groups.get(stmt.group, [])
            event = event.locate(tuple(members))
        else:
            location = self._operand_value(stmt.location, metadata)
            if location != LOCAL and location != self.switch_id:
                event = event.locate(location)
        result.generated.append(event)
