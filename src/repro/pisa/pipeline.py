"""Execution of a compiled pipeline layout on a simulated PISA pipeline.

This is the substrate that stands in for the Tofino: it takes the
:class:`~repro.backend.layout.PipelineLayout` produced by the compiler and
executes event packets through it, stage by stage, atomic table by atomic
table — evaluating each table's path conditions against the packet's metadata
(as the generated match-action rules would) and applying its single operation
(stateless ALU op, stateful ALU register access, hash, or event generation).

Running the same program through this pipeline executor and through the
AST-level interpreter (:mod:`repro.interp`) and comparing the resulting
register state is the repository's main end-to-end check that compilation
preserves semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend.compiler import CompiledProgram
from repro.backend.layout import PipelineLayout
from repro.backend.tables import AtomicTable, TableKind
from repro.errors import SimulationError
from repro.frontend import ast
from repro.interp.arrays import RuntimeArray
from repro.interp.events import LOCAL, EventInstance
from repro.interp.interpreter import SwitchRuntime, lucid_hash, _apply_binop
from repro.midend.normalize import (
    Const,
    NArrayOp,
    NCond,
    NCopy,
    NGenerate,
    NHash,
    NOp,
    NPrim,
    Operand,
    Var,
)


@dataclass
class PipelinePassResult:
    """What one packet's pass through the pipeline produced."""

    generated: List[EventInstance] = field(default_factory=list)
    dropped: bool = False
    forwarded_port: Optional[int] = None
    stages_traversed: int = 0
    tables_executed: int = 0


class PisaPipeline:
    """Executes a compiled program's layout over shared register state."""

    def __init__(self, compiled: CompiledProgram, switch_id: int = 0):
        self.compiled = compiled
        self.info = compiled.checked.info
        self.layout: PipelineLayout = compiled.layout
        self.switch_id = switch_id
        # reuse the interpreter's runtime for arrays and compiled memops
        self.runtime = SwitchRuntime(compiled.checked, switch_id=switch_id)

    # -- state access ---------------------------------------------------------
    def array(self, name: str) -> RuntimeArray:
        return self.runtime.array(name)

    # -- execution --------------------------------------------------------------
    def process(self, event: EventInstance, time_ns: int = 0) -> PipelinePassResult:
        """Run one event packet through the pipeline (one ingress pass)."""
        self.runtime.time_ns = time_ns
        handler = self.info.handlers.get(event.name)
        result = PipelinePassResult()
        if handler is None:
            return result
        # metadata vector: handler parameters become metadata fields
        metadata: Dict[str, int] = {
            param.name: int(arg) for param, arg in zip(handler.params, event.args)
        }
        pending_events: Dict[int, EventInstance] = {}
        for stage in self.layout.stages:
            stage_executed = 0
            for merged in stage.merged_tables:
                for table in merged.members:
                    if table.handler != event.name:
                        continue
                    if not self._conditions_hold(table, metadata):
                        continue
                    self._execute_table(table, metadata, result)
                    stage_executed += 1
            if stage_executed:
                result.stages_traversed += 1
                result.tables_executed += stage_executed
        return result

    # -- helpers ------------------------------------------------------------------
    def _operand_value(self, operand: Operand, metadata: Dict[str, int]) -> int:
        if isinstance(operand, Const):
            return operand.value
        if operand.name == "SELF":
            return self.switch_id
        if operand.name in metadata:
            return metadata[operand.name]
        const = self.info.consts.lookup(operand.name)
        if const is not None:
            return const
        # reading a metadata field that no table has written yet yields zero,
        # exactly as uninitialised metadata does in hardware
        return 0

    def _conditions_hold(self, table: AtomicTable, metadata: Dict[str, int]) -> bool:
        for cond in table.path_conditions:
            lhs = self._operand_value(cond.lhs, metadata)
            rhs = self._operand_value(cond.rhs, metadata)
            if not _apply_binop(cond.op, lhs, rhs):
                return False
        return True

    def _execute_table(
        self, table: AtomicTable, metadata: Dict[str, int], result: PipelinePassResult
    ) -> None:
        stmt = table.stmt
        if isinstance(stmt, NOp):
            lhs = self._operand_value(stmt.lhs, metadata)
            rhs = self._operand_value(stmt.rhs, metadata)
            metadata[stmt.dst] = _apply_binop(stmt.op, lhs, rhs)
        elif isinstance(stmt, NCopy):
            metadata[stmt.dst] = self._operand_value(stmt.src, metadata)
        elif isinstance(stmt, NHash):
            args = [self._operand_value(a, metadata) for a in stmt.args]
            metadata[stmt.dst] = lucid_hash(stmt.width, args)
        elif isinstance(stmt, NArrayOp):
            self._execute_array_op(stmt, metadata)
        elif isinstance(stmt, NGenerate):
            self._execute_generate(stmt, metadata, result)
        elif isinstance(stmt, NPrim):
            if stmt.prim == "drop":
                result.dropped = True
            elif stmt.prim == "forward" and stmt.args:
                result.forwarded_port = self._operand_value(stmt.args[0], metadata)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"cannot execute table {table.name}")

    def _execute_array_op(self, stmt: NArrayOp, metadata: Dict[str, int]) -> None:
        array = self.runtime.array(stmt.array)
        index = self._operand_value(stmt.index, metadata)
        args = [self._operand_value(a, metadata) for a in stmt.args]
        memops = [self.runtime.memop_fn(m) for m in stmt.memops]
        if stmt.method in ("Array.get", "Array.getm"):
            memop = memops[0] if memops else None
            value = array.get(index, memop, args[0] if args else 0)
            if stmt.dst:
                metadata[stmt.dst] = value
        elif stmt.method in ("Array.set", "Array.setm"):
            if memops:
                array.set(index, memop=memops[0], arg=args[0] if args else 0)
            else:
                array.set(index, value=args[0] if args else 0)
        elif stmt.method == "Array.update":
            get_memop = memops[0] if memops else None
            set_memop = memops[1] if len(memops) > 1 else None
            get_arg = args[0] if args else 0
            set_arg = args[1] if len(args) > 1 else (args[0] if args else 0)
            value = array.update(index, get_memop, get_arg, set_memop, set_arg)
            if stmt.dst:
                metadata[stmt.dst] = value
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown array method {stmt.method}")

    def _execute_generate(
        self, stmt: NGenerate, metadata: Dict[str, int], result: PipelinePassResult
    ) -> None:
        args = tuple(self._operand_value(a, metadata) for a in stmt.args)
        delay = self._operand_value(stmt.delay, metadata)
        event = EventInstance(name=stmt.event, args=args, source=self.switch_id)
        if delay:
            event = event.delay(delay)
        if stmt.group is not None:
            members = self.info.consts.groups.get(stmt.group, [])
            event = event.locate(tuple(members))
        else:
            location = self._operand_value(stmt.location, metadata)
            if location != LOCAL and location != self.switch_id:
                event = event.locate(location)
        result.generated.append(event)
