"""The toy language and ordered type-and-effect system of Appendix A/B.

The appendix defines a minimal ML-like calculus with:

* base types ``Unit`` and ``Int``;
* a predefined, *ordered* set of global variables ``g_0 .. g_{n-1}``, each of
  base type, behaving like OCaml ``ref`` cells;
* expressions: values, variables, addition, ``let``, dereference ``!e``,
  update ``e := e``, and function application;
* a typing judgement ``Γ, ε₁ ⊢ e : τ, ε₂`` in which effects are *stages*:
  global ``g_i`` may only be accessed when the current stage is at most ``i``,
  and the access moves the stage to ``i + 1``;
* a small-step operational semantics over states ``(G, n, e)`` where ``G`` is
  the store and ``n`` the index of the next accessible global.

The soundness theorem ("well-typed programs do not get stuck") is exercised by
property-based tests in ``tests/test_formal_calculus.py``: for every randomly
generated well-typed program, evaluation reaches a value without raising
:class:`StuckError`, and every intermediate state remains well-typed
(progress + preservation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TInt:
    def __str__(self) -> str:
        return "Int"


@dataclass(frozen=True)
class TUnit:
    def __str__(self) -> str:
        return "Unit"


@dataclass(frozen=True)
class TRef:
    """``ref(T, i)`` — the type of global variable ``g_i``."""

    base: Union[TInt, TUnit]
    stage: int

    def __str__(self) -> str:
        return f"ref({self.base}, {self.stage})"


@dataclass(frozen=True)
class TFun:
    """``(τ_in, ε_in) -> (τ_out, ε_out)``."""

    t_in: "Type"
    e_in: int
    t_out: "Type"
    e_out: int

    def __str__(self) -> str:
        return f"({self.t_in}, {self.e_in}) -> ({self.t_out}, {self.e_out})"


Type = Union[TInt, TUnit, TRef, TFun]


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class UnitLit:
    pass


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class GlobalVar:
    """``g_i`` — a reference to the i-th ordered global."""

    index: int


@dataclass(frozen=True)
class Plus:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Let:
    name: str
    bound: "Expr"
    body: "Expr"


@dataclass(frozen=True)
class Deref:
    """``!e`` — read a global."""

    ref: "Expr"


@dataclass(frozen=True)
class Update:
    """``ref := value`` — write a global."""

    ref: "Expr"
    value: "Expr"


@dataclass(frozen=True)
class Fun:
    """``fun (x : τ, ε_in) -> e``."""

    param: str
    param_type: Type
    e_in: int
    body: "Expr"


@dataclass(frozen=True)
class App:
    func: "Expr"
    arg: "Expr"


Expr = Union[IntLit, UnitLit, Var, GlobalVar, Plus, Let, Deref, Update, Fun, App]


def is_value(expr: Expr) -> bool:
    return isinstance(expr, (IntLit, UnitLit, GlobalVar, Fun))


# ---------------------------------------------------------------------------
# typing
# ---------------------------------------------------------------------------
class TypeCheckError(Exception):
    """Raised when an expression does not typecheck."""


def _global_types(global_types: Sequence[Union[TInt, TUnit]]) -> List[Union[TInt, TUnit]]:
    return list(global_types)


def typecheck(
    expr: Expr,
    stage: int = 0,
    env: Optional[Dict[str, Type]] = None,
    global_types: Sequence[Union[TInt, TUnit]] = (),
) -> Tuple[Type, int]:
    """Implementation of the typing judgement ``Γ, ε₁ ⊢ e : τ, ε₂``.

    Returns ``(τ, ε₂)`` or raises :class:`TypeCheckError`.
    """
    env = env or {}
    globals_ = _global_types(global_types)

    if isinstance(expr, IntLit):
        return TInt(), stage
    if isinstance(expr, UnitLit):
        return TUnit(), stage
    if isinstance(expr, GlobalVar):
        if expr.index < 0 or expr.index >= len(globals_):
            raise TypeCheckError(f"global g{expr.index} does not exist")
        return TRef(globals_[expr.index], expr.index), stage
    if isinstance(expr, Var):
        if expr.name not in env:
            raise TypeCheckError(f"unbound variable {expr.name}")
        return env[expr.name], stage
    if isinstance(expr, Plus):
        t1, e1 = typecheck(expr.left, stage, env, globals_)
        if not isinstance(t1, TInt):
            raise TypeCheckError("left operand of + must be Int")
        t2, e2 = typecheck(expr.right, e1, env, globals_)
        if not isinstance(t2, TInt):
            raise TypeCheckError("right operand of + must be Int")
        return TInt(), e2
    if isinstance(expr, Let):
        t1, e1 = typecheck(expr.bound, stage, env, globals_)
        new_env = dict(env)
        new_env[expr.name] = t1
        return typecheck(expr.body, e1, new_env, globals_)
    if isinstance(expr, Deref):
        t, e = typecheck(expr.ref, stage, env, globals_)
        if not isinstance(t, TRef):
            raise TypeCheckError("dereference of a non-reference")
        if e > t.stage:
            raise TypeCheckError(
                f"global g{t.stage} accessed at stage {e}: accesses must follow "
                "declaration order"
            )
        return t.base, t.stage + 1
    if isinstance(expr, Update):
        t_val, e1 = typecheck(expr.value, stage, env, globals_)
        t_ref, e2 = typecheck(expr.ref, e1, env, globals_)
        if not isinstance(t_ref, TRef):
            raise TypeCheckError("update of a non-reference")
        if type(t_val) is not type(t_ref.base):
            raise TypeCheckError("updated value has the wrong type")
        if e2 > t_ref.stage:
            raise TypeCheckError(
                f"global g{t_ref.stage} updated at stage {e2}: accesses must follow "
                "declaration order"
            )
        return TUnit(), t_ref.stage + 1
    if isinstance(expr, Fun):
        new_env = dict(env)
        new_env[expr.param] = expr.param_type
        t_out, e_out = typecheck(expr.body, expr.e_in, new_env, globals_)
        return TFun(expr.param_type, expr.e_in, t_out, e_out), stage
    if isinstance(expr, App):
        t_fun, e1 = typecheck(expr.func, stage, env, globals_)
        if not isinstance(t_fun, TFun):
            raise TypeCheckError("application of a non-function")
        t_arg, e2 = typecheck(expr.arg, e1, env, globals_)
        if not _types_equal(t_arg, t_fun.t_in):
            raise TypeCheckError("argument type mismatch")
        if e2 > t_fun.e_in:
            raise TypeCheckError(
                f"function requires starting stage <= {t_fun.e_in} but the current stage is {e2}"
            )
        return t_fun.t_out, t_fun.e_out
    raise TypeCheckError(f"unknown expression {expr!r}")


def _types_equal(a: Type, b: Type) -> bool:
    return a == b


# ---------------------------------------------------------------------------
# operational semantics
# ---------------------------------------------------------------------------
class StuckError(Exception):
    """Raised when no evaluation rule applies to a non-value expression."""


@dataclass
class State:
    """An evaluation state ``(G, n, e)``."""

    store: List[int]
    next_stage: int
    expr: Expr


def _subst(expr: Expr, name: str, value: Expr) -> Expr:
    """Capture-avoiding substitution ``expr[value/name]`` (values are closed)."""
    if isinstance(expr, Var):
        return value if expr.name == name else expr
    if isinstance(expr, (IntLit, UnitLit, GlobalVar)):
        return expr
    if isinstance(expr, Plus):
        return Plus(_subst(expr.left, name, value), _subst(expr.right, name, value))
    if isinstance(expr, Let):
        bound = _subst(expr.bound, name, value)
        if expr.name == name:
            return Let(expr.name, bound, expr.body)
        return Let(expr.name, bound, _subst(expr.body, name, value))
    if isinstance(expr, Deref):
        return Deref(_subst(expr.ref, name, value))
    if isinstance(expr, Update):
        return Update(_subst(expr.ref, name, value), _subst(expr.value, name, value))
    if isinstance(expr, Fun):
        if expr.param == name:
            return expr
        return Fun(expr.param, expr.param_type, expr.e_in, _subst(expr.body, name, value))
    if isinstance(expr, App):
        return App(_subst(expr.func, name, value), _subst(expr.arg, name, value))
    raise AssertionError(f"unknown expression {expr!r}")


def step(state: State) -> State:
    """One small step of the operational semantics (Figure 20)."""
    store, n, expr = state.store, state.next_stage, state.expr
    if is_value(expr):
        raise StuckError("values do not step")

    if isinstance(expr, Plus):
        if not is_value(expr.left):
            s = step(State(store, n, expr.left))
            return State(s.store, s.next_stage, Plus(s.expr, expr.right))
        if not is_value(expr.right):
            s = step(State(store, n, expr.right))
            return State(s.store, s.next_stage, Plus(expr.left, s.expr))
        if isinstance(expr.left, IntLit) and isinstance(expr.right, IntLit):
            return State(store, n, IntLit(expr.left.value + expr.right.value))
        raise StuckError("+ applied to non-integers")

    if isinstance(expr, Let):
        if not is_value(expr.bound):
            s = step(State(store, n, expr.bound))
            return State(s.store, s.next_stage, Let(expr.name, s.expr, expr.body))
        return State(store, n, _subst(expr.body, expr.name, expr.bound))

    if isinstance(expr, Deref):
        if not is_value(expr.ref):
            s = step(State(store, n, expr.ref))
            return State(s.store, s.next_stage, Deref(s.expr))
        if isinstance(expr.ref, GlobalVar):
            i = expr.ref.index
            if n > i:
                raise StuckError(f"global g{i} is no longer accessible (stage {n})")
            return State(store, i + 1, IntLit(store[i]))
        raise StuckError("dereference of a non-global")

    if isinstance(expr, Update):
        if not is_value(expr.value):
            s = step(State(store, n, expr.value))
            return State(s.store, s.next_stage, Update(expr.ref, s.expr))
        if not is_value(expr.ref):
            s = step(State(store, n, expr.ref))
            return State(s.store, s.next_stage, Update(s.expr, expr.value))
        if isinstance(expr.ref, GlobalVar) and isinstance(expr.value, IntLit):
            i = expr.ref.index
            if n > i:
                raise StuckError(f"global g{i} is no longer accessible (stage {n})")
            new_store = list(store)
            new_store[i] = expr.value.value
            return State(new_store, i + 1, UnitLit())
        raise StuckError("update of a non-global or with a non-integer")

    if isinstance(expr, App):
        if not is_value(expr.func):
            s = step(State(store, n, expr.func))
            return State(s.store, s.next_stage, App(s.expr, expr.arg))
        if not is_value(expr.arg):
            s = step(State(store, n, expr.arg))
            return State(s.store, s.next_stage, App(expr.func, s.expr))
        if isinstance(expr.func, Fun):
            return State(store, n, _subst(expr.func.body, expr.func.param, expr.arg))
        raise StuckError("application of a non-function")

    raise StuckError(f"no rule applies to {expr!r}")


def run(
    expr: Expr,
    store: Optional[List[int]] = None,
    start_stage: int = 0,
    max_steps: int = 10_000,
) -> State:
    """Run ``expr`` to a value (or raise :class:`StuckError`)."""
    state = State(list(store or []), start_stage, expr)
    for _ in range(max_steps):
        if is_value(state.expr):
            return state
        state = step(state)
    raise StuckError("evaluation did not terminate within the step budget")
