"""The formal core calculus of Appendix A/B: a toy ML-like language with the
ordered type-and-effect system, its small-step operational semantics, and the
machinery used by the soundness property tests."""

from repro.formal.calculus import (
    App,
    Deref,
    Fun,
    GlobalVar,
    IntLit,
    Let,
    Plus,
    State,
    TFun,
    TInt,
    TRef,
    TUnit,
    TypeCheckError,
    UnitLit,
    Update,
    Var,
    step,
    run,
    typecheck,
)

__all__ = [
    "IntLit",
    "UnitLit",
    "Var",
    "GlobalVar",
    "Plus",
    "Let",
    "Deref",
    "Update",
    "Fun",
    "App",
    "TInt",
    "TUnit",
    "TRef",
    "TFun",
    "State",
    "typecheck",
    "step",
    "run",
    "TypeCheckError",
]
