"""Diagnostics for the Lucid reproduction.

The paper stresses *source-level* programmer feedback: memop violations and
ordering errors must point at the exact line and column where the mistake was
made (Sections 4 and 5).  Every compiler error in this repository therefore
carries a :class:`~repro.frontend.source.Span` and renders a caret-annotated
snippet of the offending source.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.frontend.source import Span


class LucidError(Exception):
    """Base class for every user-facing error raised by this library."""

    #: short category name used in rendered messages, e.g. ``"type error"``.
    category = "error"

    def __init__(self, message: str, span: Optional["Span"] = None):
        super().__init__(message)
        self.message = message
        self.span = span

    def render(self) -> str:
        """Return a human-readable, source-annotated error message."""
        header = f"{self.category}: {self.message}"
        if self.span is None:
            return header
        return f"{header}\n{self.span.render()}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class LexError(LucidError):
    """Raised when the lexer encounters an invalid character or literal."""

    category = "lex error"


class ParseError(LucidError):
    """Raised when the parser encounters an unexpected token."""

    category = "parse error"


class MemopError(LucidError):
    """Raised when a memop violates the single-sALU syntactic restrictions.

    Section 4.2: a memop body must be a single ``return`` or an ``if`` with one
    ``return`` per branch, each variable may be used at most once per
    expression, and only ALU-supported operators are allowed.
    """

    category = "memop error"


class TypeError_(LucidError):
    """Raised on ordinary typing violations (arity, base-type mismatch...)."""

    category = "type error"


class OrderError(LucidError):
    """Raised when a handler accesses global state out of declaration order.

    Section 5: the order of ``global`` declarations is a specification of the
    pipeline layout; handlers must access globals in non-decreasing stage
    order.  The error message names both conflicting accesses.
    """

    category = "ordering error"


class ConstError(LucidError):
    """Raised when compile-time constant evaluation fails."""

    category = "constant error"


class LayoutError(LucidError):
    """Raised when the backend cannot place a program in the target pipeline.

    Unlike the Tofino backend's opaque "table placement cannot make any more
    progress", this error names the table and resource that did not fit.
    """

    category = "layout error"


class InterpError(LucidError):
    """Raised on a runtime fault inside the Lucid interpreter."""

    category = "runtime error"


class SimulationError(LucidError):
    """Raised on an invalid configuration of the PISA/network simulator."""

    category = "simulation error"
