"""Function inlining (the first step of handler compilation, Section 6.1).

Lucid ``fun`` declarations are always inlined into the handlers that call
them: a PISA pipeline has no notion of a call, so every handler must become a
self-contained slice of tables.  Inlining proceeds per call site:

1. every formal parameter becomes a fresh local bound to the actual argument
   (array-typed formals are substituted *syntactically*, because arrays are
   compile-time objects, not runtime values);
2. the callee body is copied with locals renamed to fresh names;
3. ``return`` statements are rewritten to assign a fresh result variable
   (after a *returnify* pass that pushes trailing statements into the
   non-returning branches, so every return is in tail position); and
4. the call expression is replaced by the result variable.

The pass is applied to innermost calls first and repeats until no user
function calls remain, so functions that call functions are handled.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TypeError_
from repro.frontend import ast
from repro.frontend.symbols import ProgramInfo


class FreshNames:
    """Generates fresh variable names that cannot collide with user names."""

    def __init__(self, prefix: str = "_t"):
        self.prefix = prefix
        self.counter = itertools.count()

    def fresh(self, hint: str = "") -> str:
        suffix = f"_{hint}" if hint else ""
        return f"{self.prefix}{next(self.counter)}{suffix}"


# ---------------------------------------------------------------------------
# returnify: push trailing statements into branches so returns are tail-only
# ---------------------------------------------------------------------------
def _flatten_seqs(stmts: List[ast.Stmt]) -> List[ast.Stmt]:
    """Splice transparent ``SSeq`` blocks into their parent statement list
    (the language has no block scoping, so this is semantics-preserving)."""
    out: List[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.SSeq):
            out.extend(_flatten_seqs(stmt.body))
        else:
            out.append(stmt)
    return out


def _match_has_wildcard(stmt: ast.SMatch) -> bool:
    return any(all(v is None for v in pat) for pat, _ in stmt.branches)


def _contains_return(stmts: List[ast.Stmt]) -> bool:
    """True when any path through ``stmts`` contains a return."""
    for stmt in stmts:
        if isinstance(stmt, ast.SReturn):
            return True
        if isinstance(stmt, ast.SIf):
            if _contains_return(stmt.then_body) or _contains_return(stmt.else_body):
                return True
        if isinstance(stmt, ast.SMatch):
            if any(_contains_return(body) for _, body in stmt.branches):
                return True
        if isinstance(stmt, ast.SSeq):
            if _contains_return(stmt.body):
                return True
    return False


def _block_returns(stmts: List[ast.Stmt]) -> bool:
    """True when every path through ``stmts`` ends in a return."""
    for stmt in stmts:
        if isinstance(stmt, ast.SReturn):
            return True
        if isinstance(stmt, ast.SIf):
            if _block_returns(stmt.then_body) and _block_returns(stmt.else_body):
                return True
        if isinstance(stmt, ast.SMatch):
            # exhaustive only with a wildcard arm: integer scrutinees can
            # always miss every literal pattern
            if _match_has_wildcard(stmt) and all(
                _block_returns(body) for _, body in stmt.branches
            ):
                return True
        if isinstance(stmt, ast.SSeq):
            if _block_returns(stmt.body):
                return True
    return False


def returnify(stmts: List[ast.Stmt]) -> List[ast.Stmt]:
    """Rewrite ``stmts`` so that every ``return`` is in tail position.

    ``if (c) { return a; } rest`` becomes ``if (c) { return a; } else { rest }``
    — and, crucially, a branch that only returns on *some* of its paths (for
    example ``if (c) { if (d) { return a; } } rest``) receives ``rest`` and is
    then returnified again, so the c∧d path does not fall through into a
    second copy of ``rest``.  ``match`` statements are treated like ``if``:
    every non-returning arm receives ``rest``, and a wildcard arm is
    synthesised when the patterns are not exhaustive so the fall-through path
    still runs ``rest`` exactly once.
    """
    stmts = _flatten_seqs(stmts)
    result: List[ast.Stmt] = []
    for i, stmt in enumerate(stmts):
        if isinstance(stmt, (ast.SIf, ast.SMatch)) and _contains_return([stmt]):
            rest = stmts[i + 1 :]
            if isinstance(stmt, ast.SIf):
                then_body = stmt.then_body
                else_body = stmt.else_body
                if rest and not _block_returns(then_body):
                    then_body = then_body + copy.deepcopy(rest)
                if rest and not _block_returns(else_body):
                    else_body = else_body + copy.deepcopy(rest)
                result.append(
                    ast.SIf(
                        span=stmt.span,
                        cond=stmt.cond,
                        then_body=returnify(then_body),
                        else_body=returnify(else_body),
                    )
                )
            else:
                branches = [(list(pat), body) for pat, body in stmt.branches]
                if rest and not _match_has_wildcard(stmt):
                    branches.append(([None] * len(stmt.scrutinees), []))
                new_branches = []
                for pat, body in branches:
                    if rest and not _block_returns(body):
                        body = body + copy.deepcopy(rest)
                    new_branches.append((pat, returnify(body)))
                result.append(
                    ast.SMatch(span=stmt.span, scrutinees=stmt.scrutinees, branches=new_branches)
                )
            return result
        if isinstance(stmt, ast.SIf):
            result.append(
                ast.SIf(
                    span=stmt.span,
                    cond=stmt.cond,
                    then_body=returnify(stmt.then_body),
                    else_body=returnify(stmt.else_body),
                )
            )
            continue
        if isinstance(stmt, ast.SMatch):
            result.append(
                ast.SMatch(
                    span=stmt.span,
                    scrutinees=stmt.scrutinees,
                    branches=[(list(pat), returnify(body)) for pat, body in stmt.branches],
                )
            )
            continue
        if isinstance(stmt, ast.SReturn):
            result.append(stmt)
            return result  # statements after an unconditional return are dead
        result.append(stmt)
    return result


def eliminate_returns(stmts: List[ast.Stmt]) -> List[ast.Stmt]:
    """Rewrite a handler body so no ``return`` statements remain while
    preserving which statements execute: returnify (every return becomes
    tail-position) and then drop the bare returns.  Handlers may only use
    bare ``return;`` (the type checker rejects value returns), so this loses
    nothing — but without it, normalisation would silently *drop* an early
    return and let the trailing statements run on the PISA pipeline."""
    return _replace_returns(returnify(copy.deepcopy(stmts)), None)


# ---------------------------------------------------------------------------
# renaming / substitution helpers
# ---------------------------------------------------------------------------
def _rename_expr(expr: ast.Expr, renames: Dict[str, ast.Expr]) -> ast.Expr:
    expr = copy.copy(expr)
    if isinstance(expr, ast.EVar):
        if expr.name in renames:
            return copy.deepcopy(renames[expr.name])
        return expr
    if isinstance(expr, ast.EUnary):
        expr.operand = _rename_expr(expr.operand, renames)
        return expr
    if isinstance(expr, ast.EBinary):
        expr.left = _rename_expr(expr.left, renames)
        expr.right = _rename_expr(expr.right, renames)
        return expr
    if isinstance(expr, (ast.ECall, ast.EEvent)):
        expr.args = [_rename_expr(a, renames) for a in expr.args]
        return expr
    if isinstance(expr, ast.EGroup):
        expr.members = [_rename_expr(m, renames) for m in expr.members]
        return expr
    return expr


def _rename_stmts(
    stmts: List[ast.Stmt], renames: Dict[str, ast.Expr], fresh: FreshNames
) -> List[ast.Stmt]:
    """Copy ``stmts`` substituting ``renames`` and freshening local declarations."""
    renames = dict(renames)
    out: List[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.SLocal):
            new_name = fresh.fresh(stmt.name)
            init = _rename_expr(stmt.init, renames)
            renames[stmt.name] = ast.EVar(span=stmt.span, name=new_name)
            out.append(ast.SLocal(span=stmt.span, ty=stmt.ty, name=new_name, init=init))
        elif isinstance(stmt, ast.SAssign):
            target = renames.get(stmt.name)
            name = target.name if isinstance(target, ast.EVar) else stmt.name
            out.append(ast.SAssign(span=stmt.span, name=name, value=_rename_expr(stmt.value, renames)))
        elif isinstance(stmt, ast.SIf):
            out.append(
                ast.SIf(
                    span=stmt.span,
                    cond=_rename_expr(stmt.cond, renames),
                    then_body=_rename_stmts(stmt.then_body, renames, fresh),
                    else_body=_rename_stmts(stmt.else_body, renames, fresh),
                )
            )
        elif isinstance(stmt, ast.SMatch):
            out.append(
                ast.SMatch(
                    span=stmt.span,
                    scrutinees=[_rename_expr(e, renames) for e in stmt.scrutinees],
                    branches=[
                        (list(pat), _rename_stmts(body, renames, fresh))
                        for pat, body in stmt.branches
                    ],
                )
            )
        elif isinstance(stmt, ast.SReturn):
            value = _rename_expr(stmt.value, renames) if stmt.value is not None else None
            out.append(ast.SReturn(span=stmt.span, value=value))
        elif isinstance(stmt, ast.SGenerate):
            out.append(
                ast.SGenerate(
                    span=stmt.span, event=_rename_expr(stmt.event, renames), multicast=stmt.multicast
                )
            )
        elif isinstance(stmt, ast.SExpr):
            out.append(ast.SExpr(span=stmt.span, expr=_rename_expr(stmt.expr, renames)))
        elif isinstance(stmt, ast.SSeq):
            out.append(ast.SSeq(span=stmt.span, body=_rename_stmts(stmt.body, renames, fresh)))
        else:
            out.append(copy.deepcopy(stmt))
    return out


def _replace_returns(stmts: List[ast.Stmt], result_var: Optional[str]) -> List[ast.Stmt]:
    out: List[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.SReturn):
            if stmt.value is not None and result_var is not None:
                out.append(ast.SAssign(span=stmt.span, name=result_var, value=stmt.value))
        elif isinstance(stmt, ast.SIf):
            out.append(
                ast.SIf(
                    span=stmt.span,
                    cond=stmt.cond,
                    then_body=_replace_returns(stmt.then_body, result_var),
                    else_body=_replace_returns(stmt.else_body, result_var),
                )
            )
        elif isinstance(stmt, ast.SMatch):
            out.append(
                ast.SMatch(
                    span=stmt.span,
                    scrutinees=stmt.scrutinees,
                    branches=[(pat, _replace_returns(body, result_var)) for pat, body in stmt.branches],
                )
            )
        else:
            out.append(stmt)
    return out


# ---------------------------------------------------------------------------
# the inliner
# ---------------------------------------------------------------------------
@dataclass
class Inliner:
    """Inlines user function calls inside one handler body."""

    info: ProgramInfo
    fresh: FreshNames = field(default_factory=lambda: FreshNames(prefix="_inl"))
    max_depth: int = 64

    def inline_handler(self, handler: ast.DHandler) -> ast.DHandler:
        body = copy.deepcopy(handler.body)
        body = self._inline_block(body, depth=0)
        return ast.DHandler(span=handler.span, name=handler.name, params=handler.params, body=body)

    # -- statements -------------------------------------------------------
    def _inline_block(self, stmts: List[ast.Stmt], depth: int) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for stmt in stmts:
            out.extend(self._inline_stmt(stmt, depth))
        return out

    def _inline_stmt(self, stmt: ast.Stmt, depth: int) -> List[ast.Stmt]:
        prefix: List[ast.Stmt] = []
        if isinstance(stmt, ast.SLocal):
            stmt.init = self._inline_expr(stmt.init, prefix, depth)
        elif isinstance(stmt, ast.SAssign):
            stmt.value = self._inline_expr(stmt.value, prefix, depth)
        elif isinstance(stmt, ast.SIf):
            stmt.cond = self._inline_expr(stmt.cond, prefix, depth)
            stmt.then_body = self._inline_block(stmt.then_body, depth)
            stmt.else_body = self._inline_block(stmt.else_body, depth)
        elif isinstance(stmt, ast.SMatch):
            stmt.scrutinees = [self._inline_expr(e, prefix, depth) for e in stmt.scrutinees]
            stmt.branches = [(pat, self._inline_block(body, depth)) for pat, body in stmt.branches]
        elif isinstance(stmt, ast.SReturn) and stmt.value is not None:
            stmt.value = self._inline_expr(stmt.value, prefix, depth)
        elif isinstance(stmt, ast.SGenerate):
            stmt.event = self._inline_expr(stmt.event, prefix, depth)
        elif isinstance(stmt, ast.SExpr):
            stmt.expr = self._inline_expr(stmt.expr, prefix, depth)
        elif isinstance(stmt, ast.SSeq):
            stmt.body = self._inline_block(stmt.body, depth)
        return prefix + [stmt]

    # -- expressions ------------------------------------------------------
    def _inline_expr(self, expr: ast.Expr, prefix: List[ast.Stmt], depth: int) -> ast.Expr:
        if depth > self.max_depth:
            raise TypeError_("function inlining exceeded the maximum depth", expr.span)
        if isinstance(expr, ast.EUnary):
            expr.operand = self._inline_expr(expr.operand, prefix, depth)
            return expr
        if isinstance(expr, ast.EBinary):
            expr.left = self._inline_expr(expr.left, prefix, depth)
            expr.right = self._inline_expr(expr.right, prefix, depth)
            return expr
        if isinstance(expr, ast.EGroup):
            expr.members = [self._inline_expr(m, prefix, depth) for m in expr.members]
            return expr
        if isinstance(expr, ast.EEvent):
            expr.args = [self._inline_expr(a, prefix, depth) for a in expr.args]
            return expr
        if isinstance(expr, ast.ECall):
            expr.args = [self._inline_expr(a, prefix, depth) for a in expr.args]
            if self.info.is_function(expr.func):
                return self._inline_call(expr, prefix, depth)
            return expr
        return expr

    def _inline_call(self, call: ast.ECall, prefix: List[ast.Stmt], depth: int) -> ast.Expr:
        fun = self.info.functions[call.func]
        renames: Dict[str, ast.Expr] = {}
        for param, arg in zip(fun.params, call.args):
            if isinstance(param.ty, ast.TArray) or (
                isinstance(arg, ast.EVar) and self.info.is_global(arg.name)
            ):
                # arrays (and direct global references) substitute syntactically
                renames[param.name] = arg
            elif isinstance(arg, (ast.EInt, ast.EBool, ast.EVar)):
                renames[param.name] = arg
            else:
                tmp = self.fresh.fresh(param.name)
                prefix.append(ast.SLocal(span=call.span, ty=param.ty, name=tmp, init=arg))
                renames[param.name] = ast.EVar(span=call.span, name=tmp)

        body = _rename_stmts(copy.deepcopy(fun.body), renames, self.fresh)
        body = returnify(body)
        body = self._inline_block(body, depth + 1)

        if isinstance(fun.ret, ast.TVoid):
            prefix.extend(_replace_returns(body, None))
            return ast.EInt(span=call.span, value=0)
        result_var = self.fresh.fresh(f"{fun.name}_ret")
        prefix.append(
            ast.SLocal(
                span=call.span, ty=fun.ret, name=result_var, init=ast.EInt(span=call.span, value=0)
            )
        )
        prefix.extend(_replace_returns(body, result_var))
        return ast.EVar(span=call.span, name=result_var)


def inline_program_functions(info: ProgramInfo) -> Dict[str, ast.DHandler]:
    """Return a mapping of handler name -> handler with all functions inlined."""
    inliner = Inliner(info)
    return {name: inliner.inline_handler(handler) for name, handler in info.handlers.items()}
