"""Mid-end of the Lucid compiler: function inlining and normalisation of
handler bodies into atomic (single-ALU) statements."""

from repro.midend.inline import inline_program_functions
from repro.midend.normalize import NormalizedHandler, normalize_handler, normalize_program

__all__ = [
    "inline_program_functions",
    "normalize_handler",
    "normalize_program",
    "NormalizedHandler",
]
